//! Old-vs-new `Cache` equivalence, in the seeded-loop style of
//! `tests/properties.rs`.
//!
//! `reference` below is the pre-refactor cache verbatim: `Vec<Vec<Way>>`
//! sets, a global monotonic LRU tick, a `HashMap` reverse index and modulo
//! set selection. The production `o2_sim::Cache` (flat slab, per-set LRU
//! ages, mask indexing) is driven through the same ~10⁵ random
//! probe/insert/invalidate/mark-dirty/flush operations and must return the
//! identical `Probe`/`Evicted` sequence and the identical resident set at
//! every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::sim::{Cache, CacheGeometry, LineAddr, Probe};

/// The pre-refactor implementation, kept as the executable specification.
mod reference {
    use std::collections::HashMap;

    use o2_suite::sim::{CacheGeometry, Evicted, LineAddr, Probe};

    #[derive(Debug, Clone, Copy)]
    struct Way {
        line: LineAddr,
        last_use: u64,
        dirty: bool,
    }

    #[derive(Debug, Clone)]
    pub struct RefCache {
        sets: Vec<Vec<Way>>,
        ways: usize,
        tick: u64,
        resident: usize,
        index: HashMap<LineAddr, usize>,
    }

    impl RefCache {
        pub fn new(geometry: CacheGeometry, line_size: u64) -> Self {
            let sets = geometry.sets(line_size) as usize;
            let ways = geometry.associativity as usize;
            Self {
                sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
                ways,
                tick: 0,
                resident: 0,
                index: HashMap::new(),
            }
        }

        fn set_of(&self, line: LineAddr) -> usize {
            (line % self.sets.len() as u64) as usize
        }

        pub fn resident_lines(&self) -> usize {
            self.resident
        }

        pub fn contains(&self, line: LineAddr) -> bool {
            self.index.contains_key(&line)
        }

        pub fn probe_and_touch(&mut self, line: LineAddr) -> Probe {
            self.tick += 1;
            let set_idx = self.set_of(line);
            let tick = self.tick;
            let set = &mut self.sets[set_idx];
            if let Some(way) = set.iter_mut().find(|w| w.line == line) {
                way.last_use = tick;
                Probe::Hit
            } else {
                Probe::Miss
            }
        }

        pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
            let set_idx = self.set_of(line);
            if let Some(way) = self.sets[set_idx].iter_mut().find(|w| w.line == line) {
                way.dirty = true;
                true
            } else {
                false
            }
        }

        pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
            self.tick += 1;
            let tick = self.tick;
            let set_idx = self.set_of(line);
            let ways = self.ways;
            let set = &mut self.sets[set_idx];

            if let Some(way) = set.iter_mut().find(|w| w.line == line) {
                way.last_use = tick;
                way.dirty |= dirty;
                return None;
            }

            let mut evicted = None;
            if set.len() >= ways {
                let (victim_idx, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .expect("non-empty set");
                let victim = set.swap_remove(victim_idx);
                self.index.remove(&victim.line);
                self.resident -= 1;
                evicted = Some(Evicted {
                    line: victim.line,
                    dirty: victim.dirty,
                });
            }

            set.push(Way {
                line,
                last_use: tick,
                dirty,
            });
            self.index.insert(line, set_idx);
            self.resident += 1;
            evicted
        }

        pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
            let set_idx = self.index.remove(&line)?;
            let set = &mut self.sets[set_idx];
            let pos = set.iter().position(|w| w.line == line)?;
            let way = set.swap_remove(pos);
            self.resident -= 1;
            Some(way.dirty)
        }

        pub fn flush(&mut self) {
            for set in &mut self.sets {
                set.clear();
            }
            self.index.clear();
            self.resident = 0;
        }

        pub fn lines_sorted(&self) -> Vec<LineAddr> {
            let mut v: Vec<LineAddr> = self
                .sets
                .iter()
                .flat_map(|s| s.iter().map(|w| w.line))
                .collect();
            v.sort_unstable();
            v
        }
    }
}

fn lines_sorted(c: &Cache) -> Vec<LineAddr> {
    let mut v: Vec<LineAddr> = c.lines().collect();
    v.sort_unstable();
    v
}

/// Drives both implementations through `ops` random operations and asserts
/// identical observable behaviour at every step.
fn drive(geometry: CacheGeometry, line_space: u64, ops: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut new = Cache::new(geometry, 64);
    let mut old = reference::RefCache::new(geometry, 64);
    assert_eq!(new.capacity_lines(), geometry.lines(64) as usize);

    for step in 0..ops {
        let line = rng.gen_range(0..line_space);
        match rng.gen_range(0u8..100) {
            0..=34 => {
                let a = new.probe_and_touch(line);
                let b = old.probe_and_touch(line);
                assert_eq!(a, b, "probe diverged at step {step} line {line}");
            }
            35..=74 => {
                let dirty = rng.gen_range(0u8..2) == 0;
                let a = new.insert(line, dirty);
                let b = old.insert(line, dirty);
                assert_eq!(a, b, "eviction diverged at step {step} line {line}");
            }
            75..=89 => {
                let a = new.invalidate(line);
                let b = old.invalidate(line);
                assert_eq!(a, b, "invalidate diverged at step {step} line {line}");
            }
            90..=97 => {
                let a = new.mark_dirty(line);
                let b = old.mark_dirty(line);
                assert_eq!(a, b, "mark_dirty diverged at step {step} line {line}");
            }
            _ => {
                // Rare full flush so LRU state restarts mid-sequence.
                new.flush();
                old.flush();
            }
        }
        assert_eq!(new.resident_lines(), old.resident_lines(), "step {step}");
        assert_eq!(new.contains(line), old.contains(line), "step {step}");
        if step % 4096 == 0 {
            assert_eq!(lines_sorted(&new), old.lines_sorted(), "step {step}");
        }
    }
    assert_eq!(lines_sorted(&new), old.lines_sorted());
}

#[test]
fn equivalent_on_power_of_two_sets() {
    // 64 sets x 4 ways; line space 8x capacity for heavy conflict pressure.
    drive(
        CacheGeometry::new(64 * 4 * 64, 4),
        2048,
        100_000,
        0xcafe_0001,
    );
}

#[test]
fn equivalent_on_non_power_of_two_sets() {
    // 12 sets x 3 ways: exercises the modulo fallback path.
    drive(
        CacheGeometry::new(12 * 3 * 64, 3),
        400,
        100_000,
        0xcafe_0002,
    );
}

#[test]
fn equivalent_on_direct_mapped() {
    drive(CacheGeometry::new(32 * 64, 1), 256, 100_000, 0xcafe_0003);
}

#[test]
fn equivalent_on_fully_associative_single_set() {
    // One set, 16 ways: pure LRU, every insert contends.
    drive(CacheGeometry::new(16 * 64, 16), 64, 100_000, 0xcafe_0004);
}

#[test]
fn equivalent_under_tiny_line_space() {
    // Line space smaller than capacity: reinsertion/touch dominated.
    drive(CacheGeometry::new(16 * 4 * 64, 4), 48, 100_000, 0xcafe_0005);
}

/// The capacity-bug regression (satellite): every set must accept `ways`
/// lines without spurious eviction, including sets other than set 0.
#[test]
fn every_set_holds_full_associativity() {
    let mut c = Cache::new(CacheGeometry::new(8 * 4 * 64, 4), 64);
    for set in 0..8u64 {
        for way in 0..4u64 {
            assert!(
                c.insert(set + 8 * way, false).is_none(),
                "set {set} way {way} evicted early"
            );
        }
    }
    assert_eq!(c.resident_lines(), 32);
    assert_eq!(c.probe_and_touch(0), Probe::Hit);
}
