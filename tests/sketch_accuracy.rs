//! The scale tier's latency sketch against the exact oracle.
//!
//! The sketch's contract (crates/metrics/src/sketch.rs) is a worst-case
//! *rank* error of `ε = levels/k`: the estimate for quantile `q` must be
//! a value whose exact rank lies in `[q-ε, q+ε]`. This harness feeds
//! randomized streams of three latency shapes — uniform, Zipfian and
//! bimodal (the fast-path/slow-path mix real tails look like) — and
//! checks every reported quantile against the exact, fully-sorted sample
//! via `percentile_sorted`. A second test pins the determinism claim the
//! golden fingerprints rely on: the sketch output in matrix JSON is
//! byte-identical across `--jobs` worker counts and across reruns.

use o2_suite::experiments::{find_scenario, registry, render_json, run_matrix};
use o2_suite::metrics::{percentile_sorted, QuantileSketch};
use o2_suite::workloads::ZipfSampler;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One randomized latency stream of a given shape.
fn stream(shape: &str, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    match shape {
        // Flat: every rank equally likely, tails carry no mass spike.
        "uniform" => (0..n).map(|_| rng.gen_range(100u64..100_000)).collect(),
        // Heavy-tailed ranks mapped to latencies: most samples cheap,
        // a long geometric tail (the scale workload's own sampler).
        "zipfian" => {
            let zipf = ZipfSampler::new(10_000, 1.1);
            (0..n).map(|_| 200 + 50 * zipf.sample(&mut rng)).collect()
        }
        // Fast path vs slow path: 95% around 1k cycles, 5% around 100k —
        // p50 and p999 land on different modes.
        "bimodal" => (0..n)
            .map(|_| {
                if rng.gen::<f64>() < 0.95 {
                    rng.gen_range(800u64..1_200)
                } else {
                    rng.gen_range(80_000u64..120_000)
                }
            })
            .collect(),
        other => panic!("unknown shape {other}"),
    }
}

#[test]
fn sketch_quantiles_stay_within_the_documented_rank_bound() {
    // A small k tightens memory enough that compactions actually happen
    // (n/k ≈ 200 cascades) while ε = levels/k stays ≈ 1%.
    const N: usize = 200_000;
    const K: usize = 1_024;
    for shape in ["uniform", "zipfian", "bimodal"] {
        for seed in [1u64, 42, 0xbe9c] {
            let samples = stream(shape, N, seed);
            let mut sketch = QuantileSketch::with_capacity(K, seed ^ 0x5eed);
            for &v in &samples {
                sketch.record(v);
            }
            assert!(sketch.compactions() > 0, "{shape}/{seed}: stream too short");

            let mut sorted: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let eps = sketch.rank_error_bound();
            assert!(eps < 0.015, "{shape}/{seed}: ε = {eps}");

            for q in [0.50, 0.99, 0.999] {
                let est = sketch.quantile(q).unwrap() as f64;
                // The exact values at ranks q±ε bracket every estimate
                // whose rank error is within the bound.
                let lo = percentile_sorted(&sorted, 100.0 * (q - eps).max(0.0));
                let hi = percentile_sorted(&sorted, 100.0 * (q + eps).min(1.0));
                let exact = percentile_sorted(&sorted, 100.0 * q);
                assert!(
                    lo <= est && est <= hi,
                    "{shape}/seed {seed}/q {q}: estimate {est} outside \
                     [{lo}, {hi}] around exact {exact} (ε = {eps})"
                );
            }
            // Endpoints are exact, never sketched.
            assert_eq!(sketch.quantile(0.0).unwrap() as f64, sorted[0]);
            assert_eq!(sketch.quantile(1.0).unwrap() as f64, sorted[N - 1]);
        }
    }
}

#[test]
fn sketch_is_deterministic_across_jobs_counts_and_reruns() {
    // Unit level: same seed + same stream → byte-identical state.
    for shape in ["uniform", "zipfian", "bimodal"] {
        let feed = || {
            let mut s = QuantileSketch::with_capacity(512, 7);
            for v in stream(shape, 60_000, 9) {
                s.record(v);
            }
            s
        };
        let (a, b) = (feed(), feed());
        assert_eq!(a, b, "{shape}: states diverged");
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        assert_eq!(a.summary(), b.summary());
    }

    // System level: fig_scale's sketched percentiles land in the matrix
    // JSON identically no matter how many workers raced over the cells.
    let scenario =
        || vec![find_scenario(registry(true), "fig_scale").expect("registered scenario")];
    let serial = render_json(&run_matrix(&scenario(), 1));
    let parallel = render_json(&run_matrix(&scenario(), 4));
    assert_eq!(serial, parallel);
    assert!(
        serial.contains("service latency p50"),
        "sketch output missing"
    );
}
