//! Heap-vs-wheel equivalence, in the seeded-loop style of
//! `tests/cache_equivalence.rs`.
//!
//! `reference` below is the engine's pre-refactor event queue verbatim: a
//! `BinaryHeap<Reverse<(cycle, core)>>`. The production
//! [`o2_suite::runtime::TimingWheel`] is driven through the same random
//! push/peek/pop storms — near and far deltas, duplicates, same-cycle
//! bursts, pushes below a peeked cursor — and must return the identical
//! entry sequence at every step. Separate tests pin the cascade
//! boundaries (exact multiples of the level spans), the overflow horizon
//! and the top of the cycle space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::runtime::{TimingWheel, WHEEL_HORIZON};

/// The pre-refactor event queue, kept as the executable specification.
mod reference {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    pub struct RefQueue {
        heap: BinaryHeap<Reverse<(u64, usize)>>,
    }

    impl RefQueue {
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
            }
        }

        pub fn push(&mut self, cycle: u64, core: usize) {
            self.heap.push(Reverse((cycle, core)));
        }

        pub fn peek(&self) -> Option<(u64, usize)> {
            self.heap.peek().map(|&Reverse(e)| e)
        }

        pub fn pop(&mut self) -> Option<(u64, usize)> {
            self.heap.pop().map(|Reverse(e)| e)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

/// Drives both queues through `ops` random operations and checks every
/// result. `deltas` maps a raw random value to a push distance, letting
/// callers shape the storm (near re-arms vs. horizon-crossing sleeps).
fn lockstep(seed: u64, ops: usize, deltas: fn(&mut StdRng) -> u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wheel = TimingWheel::new();
    let mut heap = reference::RefQueue::new();
    // Pushes must never go below the last popped cycle (virtual time is
    // monotonic); track it, starting at 0.
    let mut floor = 0u64;

    for step in 0..ops {
        match rng.gen_range(0u32..10) {
            // Push: 6/10. A fresh entry lands `deltas` past the floor.
            0..=5 => {
                let cycle = floor + deltas(&mut rng);
                let core = rng.gen_range(0usize..16);
                wheel.push(cycle, core);
                heap.push(cycle, core);
            }
            // Peek (may advance the wheel's cursor), then sometimes push
            // *below* the peeked entry — the merge-into-batch path.
            6..=7 => {
                assert_eq!(wheel.peek(), heap.peek(), "peek diverged at {step}");
                if let Some((at, _)) = heap.peek() {
                    if rng.gen_bool(0.5) && at > floor {
                        let cycle = rng.gen_range(floor..at + 1);
                        let core = rng.gen_range(0usize..16);
                        wheel.push(cycle, core);
                        heap.push(cycle, core);
                    }
                }
            }
            // Pop: 2/10.
            _ => {
                let got = wheel.pop();
                assert_eq!(got, heap.pop(), "pop diverged at {step}");
                if let Some((at, _)) = got {
                    floor = at;
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at {step}");
    }
    // Drain: the tails must match entry for entry.
    while let Some(e) = heap.pop() {
        assert_eq!(wheel.pop(), Some(e));
    }
    assert_eq!(wheel.pop(), None);
    assert!(wheel.is_empty());
}

#[test]
fn near_rearm_storm_matches_heap() {
    // Action-cost-scale distances: everything stays in level 0.
    for seed in 0..4 {
        lockstep(0xA0 + seed, 50_000, |r| r.gen_range(0u64..600));
    }
}

#[test]
fn same_cycle_bursts_match_heap() {
    // Heavily duplicated cycles: same-cycle batches with core tie-breaks.
    for seed in 0..4 {
        lockstep(0xB0 + seed, 50_000, |r| r.gen_range(0u64..4) * 100);
    }
}

#[test]
fn mixed_scale_storm_matches_heap() {
    // Quantum- and epoch-scale sleeps force coarse-level filing and
    // cascades back down.
    for seed in 0..4 {
        lockstep(0xC0 + seed, 50_000, |r| match r.gen_range(0u32..10) {
            0..=5 => r.gen_range(0u64..2_000),
            6..=8 => r.gen_range(0u64..300_000),
            _ => r.gen_range(0u64..40_000_000),
        });
    }
}

#[test]
fn horizon_crossing_storm_matches_heap() {
    // A slice of the pushes land beyond the wheel horizon, exercising the
    // ordered overflow set and its fold-back.
    for seed in 0..4 {
        lockstep(0xD0 + seed, 20_000, |r| {
            if r.gen_bool(0.1) {
                WHEEL_HORIZON + r.gen_range(0u64..3 * WHEEL_HORIZON)
            } else {
                r.gen_range(0u64..10_000)
            }
        });
    }
}

#[test]
fn exact_level_boundaries_match_heap() {
    // Entries exactly on slot and level boundaries are the cascade edge
    // cases: a boundary entry must stage, not re-file behind the cursor.
    let spans = [8u64, 4096, 1 << 20, WHEEL_HORIZON];
    let mut wheel = TimingWheel::new();
    let mut heap = reference::RefQueue::new();
    for &span in &spans {
        for mult in 1..4u64 {
            for off in [0u64, 1] {
                for core in [3usize, 1] {
                    wheel.push(span * mult + off, core);
                    heap.push(span * mult + off, core);
                }
            }
        }
    }
    while let Some(e) = heap.pop() {
        assert_eq!(wheel.pop(), Some(e));
    }
    assert_eq!(wheel.pop(), None);
}

#[test]
fn top_of_cycle_space_does_not_overflow() {
    // The horizon fold near `u64::MAX` has no next window boundary; the
    // wheel must still drain in order without arithmetic overflow.
    let top = u64::MAX - WHEEL_HORIZON / 2;
    let mut wheel = TimingWheel::new();
    let mut heap = reference::RefQueue::new();
    for (i, &c) in [5u64, top, top + 9, u64::MAX - 1, top + 4096]
        .iter()
        .enumerate()
    {
        wheel.push(c, i);
        heap.push(c, i);
    }
    while let Some(e) = heap.pop() {
        assert_eq!(wheel.pop(), Some(e));
    }
    assert_eq!(wheel.pop(), None);
}
