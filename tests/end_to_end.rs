//! End-to-end integration tests spanning every crate: they reproduce the
//! qualitative claims of the paper on scaled-down configurations so the
//! whole suite stays fast.

use o2_suite::prelude::*;
use o2_suite::sim::snapshot;

/// Builds a scaled-down Figure-4-style point: a quad-core machine and a
/// short measurement window.
fn small_point(n_dirs: u32, policy: Box<dyn SchedPolicy>) -> Measurement {
    let mut spec = WorkloadSpec::paper_default(n_dirs);
    spec.machine = MachineConfig::quad4();
    spec.warmup_ops = 1_500;
    spec.measure_cycles = 1_500_000;
    let mut exp = Experiment::build(spec, policy);
    exp.run()
}

#[test]
fn coretime_beats_the_thread_scheduler_when_the_working_set_exceeds_one_chip() {
    // 8 MB of directories on the 16-core machine: far more than one chip's
    // L3, well within the 16 MB of aggregate on-chip memory — the regime
    // where the paper reports a 2-3x win for CoreTime.
    let run = |policy: Box<dyn SchedPolicy>| {
        let mut spec = WorkloadSpec::for_total_kb(8192);
        spec.warmup_ops = 2_500;
        spec.measure_cycles = 1_500_000;
        let mut exp = Experiment::build(spec, policy);
        exp.run()
    };
    let without = run(Box::new(ThreadScheduler::new()));
    let with = run(CoreTime::policy(&MachineConfig::amd16()));
    assert!(
        with.kres_per_sec() > 1.3 * without.kres_per_sec(),
        "CoreTime {:.0} kres/s should clearly beat the thread scheduler {:.0} kres/s",
        with.kres_per_sec(),
        without.kres_per_sec()
    );
    // CoreTime actually migrated operations.
    assert!(with.migrations > 100);
    assert_eq!(without.migrations, 0);
}

#[test]
fn both_schedulers_are_comparable_when_everything_fits_in_one_cache() {
    // 8 directories = 256 KB: fits in any core's private cache, so CoreTime
    // cannot be much better (and must not be catastrophically worse).
    let without = small_point(8, Box::new(ThreadScheduler::new()));
    let with = small_point(8, CoreTime::policy(&MachineConfig::quad4()));
    let ratio = with.kres_per_sec() / without.kres_per_sec();
    assert!(
        (0.7..=2.0).contains(&ratio),
        "expected comparable throughput, got ratio {ratio:.2}"
    );
}

#[test]
fn coretime_reduces_data_duplication_across_caches() {
    let machine_cfg = MachineConfig::quad4();
    let build = |policy: Box<dyn SchedPolicy>| {
        let mut spec = WorkloadSpec::paper_default(20);
        spec.machine = machine_cfg.clone();
        spec.warmup_ops = 3_000;
        spec.measure_cycles = 1_000_000;
        let mut exp = Experiment::build(spec, policy);
        let _ = exp.run();
        let regions = exp.directory_regions();
        snapshot(exp.engine().machine(), &regions)
    };
    let thread_snapshot = build(Box::new(ThreadScheduler::new()));
    let o2_snapshot = build(CoreTime::policy(&machine_cfg));

    // The O2 scheduler keeps at least as many distinct directories on chip
    // and duplicates them less (Figure 2's claim).
    assert!(o2_snapshot.distinct_on_chip() >= thread_snapshot.distinct_on_chip());
    assert!(
        o2_snapshot.duplication_factor() <= thread_snapshot.duplication_factor() + 0.1,
        "O2 duplication {:.2} should not exceed thread-scheduler duplication {:.2}",
        o2_snapshot.duplication_factor(),
        thread_snapshot.duplication_factor()
    );
}

#[test]
fn annotated_operations_are_counted_identically_under_both_schedulers() {
    // The measurement methodology must not depend on the policy: running
    // the same bounded workload under both schedulers completes the same
    // number of operations.
    let run_ops = |policy: Box<dyn SchedPolicy>| {
        let mut spec = WorkloadSpec::paper_default(12);
        spec.machine = MachineConfig::quad4();
        spec.warmup_ops = 10;
        spec.measure_cycles = 400_000;
        let mut exp = Experiment::build(spec, policy);
        exp.engine_mut().run_until_ops(500);
        exp.engine().total_ops()
    };
    assert_eq!(run_ops(Box::new(ThreadScheduler::new())), 500);
    assert_eq!(run_ops(CoreTime::policy(&MachineConfig::quad4())), 500);
}

#[test]
fn experiments_are_deterministic_across_runs() {
    let run = || {
        let m = small_point(24, CoreTime::policy(&MachineConfig::quad4()));
        (m.window.ops, m.window.end, m.migrations, m.lock_contention)
    };
    assert_eq!(run(), run());
}

#[test]
fn oscillating_workload_still_completes_and_migrates() {
    let mut spec = WorkloadSpec::paper_default(48).oscillating();
    spec.machine = MachineConfig::quad4();
    spec.warmup_ops = 1_500;
    spec.measure_cycles = 1_500_000;
    let mut exp = Experiment::build(spec, CoreTime::policy(&MachineConfig::quad4()));
    let m = exp.run();
    assert!(m.window.ops > 0);
    assert!(m.migrations > 0);
}

#[test]
fn sixteen_core_machine_runs_the_paper_configuration() {
    // One (cheap) point on the full 16-core machine, exercising the
    // interconnect and all four chips.
    let mut spec = WorkloadSpec::for_total_kb(1024);
    spec.warmup_ops = 1_000;
    spec.measure_cycles = 800_000;
    let mut exp = Experiment::build(spec.clone(), CoreTime::policy(&spec.machine));
    let m = exp.run();
    assert!(m.window.ops > 0);
    assert_eq!(m.dram_loads.len(), 16);
    // Every chip saw some traffic.
    let machine = exp.engine().machine();
    for chip in 0..4 {
        let chip_busy: u64 = (0..4)
            .map(|c| machine.counters(chip * 4 + c).busy_cycles)
            .sum();
        assert!(chip_busy > 0, "chip {chip} never executed anything");
    }
}
