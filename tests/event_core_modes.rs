//! The three event cores ([`EventCoreKind`]) must be bit-identical: the
//! timing wheel (default), the pre-refactor `BinaryHeap` queue, and the
//! synchronous cycle box all drive the same dispatch order, so every
//! machine counter and clock comes out the same.
//!
//! The saturated scenario and its golden fingerprint are copied from
//! `tests/event_scheduler.rs` (which pins the default core); here the
//! *other two* cores must reproduce the same pre-refactor fingerprint.

use o2_suite::prelude::*;
use o2_suite::runtime::{EventCoreKind, NullPolicy, RepeatBehaviour, StaticPolicy};
use o2_suite::sim::ContentionModel;

/// Folds every per-core counter of the machine plus the engine totals into
/// one FNV-1a fingerprint, so "bit-for-bit identical" is one comparison.
fn fingerprint(engine: &Engine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(engine.total_ops());
    mix(engine.max_clock());
    mix(engine.min_clock());
    mix(engine.locks().total_acquisitions());
    mix(engine.locks().total_contention());
    let n = engine.machine().config().total_cores();
    for core in 0..n {
        let c = engine.machine().counters(core);
        for v in [
            c.busy_cycles,
            c.l1_hits,
            c.l1_misses,
            c.l2_hits,
            c.l2_misses,
            c.l3_hits,
            c.l3_misses,
            c.remote_cache_loads,
            c.dram_loads,
            c.invalidations_sent,
            c.invalidations_received,
            c.interconnect_messages,
            c.migrations_in,
            c.migrations_out,
            c.operations_completed,
        ] {
            mix(v);
        }
        mix(engine.core_clock(core));
    }
    h
}

/// The saturated 16-core scenario of `tests/event_scheduler.rs`, with a
/// selectable event core.
fn saturated_engine(kind: EventCoreKind) -> Engine {
    let machine = Machine::new(MachineConfig::amd16());
    let mut cfg = RuntimeConfig::default().with_event_core(kind);
    cfg.epoch_cycles = 100_000;
    cfg.quantum_cycles = 10_000;
    let mut policy = StaticPolicy::new();
    for i in 0..8u64 {
        policy.assign(0x1000 + i, ((i * 5) % 16) as u32);
    }
    let mut engine = Engine::new(machine, Box::new(policy), cfg);
    let data = engine.machine_mut().memory_mut().alloc(1 << 20, 0);
    let locks: Vec<_> = (0..8)
        .map(|_| {
            let r = engine.machine_mut().memory_mut().alloc(64, 1);
            engine.register_lock(r.addr)
        })
        .collect();
    for core in 0..16u32 {
        let obj = 0x1000 + u64::from(core % 8);
        let lock = locks[(core % 8) as usize];
        let op = OpBuilder::annotated(obj)
            .lock(lock)
            .compute(300)
            .read(data.addr + u64::from(core) * 4096, 1024)
            .unlock(lock)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
        engine.spawn(
            core,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(500), Action::Yield],
                None,
            )),
        );
    }
    engine
}

/// Golden values captured from the pre-refactor engine (see
/// `tests/event_scheduler.rs`, which asserts them for the default core).
const PRE_REFACTOR_SATURATED_FINGERPRINT: u64 = 0x9d48_13c2_1de4_cda3;
const PRE_REFACTOR_SATURATED_TOTAL_OPS: u64 = 28_864;

#[test]
fn heap_core_matches_pre_refactor_fingerprint() {
    let mut engine = saturated_engine(EventCoreKind::Heap);
    engine.run_until_cycles(1_500_000);
    assert_eq!(engine.total_ops(), PRE_REFACTOR_SATURATED_TOTAL_OPS);
    assert_eq!(fingerprint(&engine), PRE_REFACTOR_SATURATED_FINGERPRINT);
}

#[test]
fn cycle_box_core_matches_pre_refactor_fingerprint() {
    let mut engine = saturated_engine(EventCoreKind::CycleBox);
    engine.run_until_cycles(1_500_000);
    assert_eq!(engine.total_ops(), PRE_REFACTOR_SATURATED_TOTAL_OPS);
    assert_eq!(fingerprint(&engine), PRE_REFACTOR_SATURATED_FINGERPRINT);
}

/// An idle-heavy blocking-lock scenario — parks, lock hand-off wakeups and
/// long idle gaps — run under all three cores; fingerprints must agree.
fn convoy_engine(kind: EventCoreKind) -> Engine {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default()
            .with_blocking_locks()
            .with_event_core(kind),
    );
    let word = engine.machine_mut().memory_mut().alloc(64, 9);
    let lock = engine.register_lock(word.addr);
    for core in 0..16u32 {
        let op = OpBuilder::annotated(0x2000 + u64::from(core))
            .lock(lock)
            .compute(100 + u64::from(core) * 7)
            .unlock(lock)
            .compute(20_000)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
    }
    engine
}

#[test]
fn all_cores_agree_on_a_blocking_lock_convoy() {
    let run = |kind| {
        let mut engine = convoy_engine(kind);
        engine.run_until_cycles(3_000_000);
        (fingerprint(&engine), engine.total_ops())
    };
    let wheel = run(EventCoreKind::Wheel);
    assert!(wheel.1 > 0, "convoy made no progress");
    assert_eq!(wheel, run(EventCoreKind::Heap), "heap diverged");
    assert_eq!(wheel, run(EventCoreKind::CycleBox), "cycle box diverged");
}

/// Migration-heavy scenario (objects pinned off their threads' home
/// cores) under all three cores.
#[test]
fn all_cores_agree_on_a_migration_storm() {
    let run = |kind| {
        let mut policy = StaticPolicy::new();
        for i in 0..16u64 {
            policy.assign(0x3000 + i, ((i * 7 + 3) % 16) as u32);
        }
        let mut engine = Engine::new(
            Machine::new(MachineConfig::amd16()),
            Box::new(policy),
            RuntimeConfig::default().with_event_core(kind),
        );
        let data = engine.machine_mut().memory_mut().alloc(1 << 20, 0);
        for core in 0..16u32 {
            let op = OpBuilder::annotated(0x3000 + u64::from(core))
                .compute(200 + u64::from(core) * 11)
                .read(data.addr + u64::from(core) * 8192, 2048)
                .finish();
            engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
        }
        engine.run_until_cycles(2_000_000);
        (fingerprint(&engine), engine.total_ops())
    };
    let wheel = run(EventCoreKind::Wheel);
    assert!(wheel.1 > 0, "storm made no progress");
    assert_eq!(wheel, run(EventCoreKind::Heap), "heap diverged");
    assert_eq!(wheel, run(EventCoreKind::CycleBox), "cycle box diverged");
}
