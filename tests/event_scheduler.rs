//! Tests for the event-driven engine: determinism, parked-core wakeups,
//! zero-work idle cores, and bit-for-bit equivalence with the pre-refactor
//! smallest-clock scheduler on a saturated run.

use o2_suite::prelude::*;
use o2_suite::runtime::{NullPolicy, RepeatBehaviour, StaticPolicy};
use o2_suite::sim::ContentionModel;

/// Folds every per-core counter of the machine plus the engine totals into
/// one FNV-1a fingerprint, so "bit-for-bit identical" is one comparison.
fn fingerprint(engine: &Engine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(engine.total_ops());
    mix(engine.max_clock());
    mix(engine.min_clock());
    mix(engine.locks().total_acquisitions());
    mix(engine.locks().total_contention());
    let n = engine.machine().config().total_cores();
    for core in 0..n {
        let c = engine.machine().counters(core);
        for v in [
            c.busy_cycles,
            c.l1_hits,
            c.l1_misses,
            c.l2_hits,
            c.l2_misses,
            c.l3_hits,
            c.l3_misses,
            c.remote_cache_loads,
            c.dram_loads,
            c.invalidations_sent,
            c.invalidations_received,
            c.interconnect_messages,
            c.migrations_in,
            c.migrations_out,
            c.operations_completed,
        ] {
            mix(v);
        }
        mix(engine.core_clock(core));
    }
    h
}

/// A saturated 16-core scenario: every core runs two threads forever —
/// one doing annotated lock-protected reads whose object is pinned to
/// another core (so operations migrate), one doing plain compute + yield
/// (so quanta rotate). No core is ever idle, which is exactly the regime
/// where the event queue must reproduce the old smallest-clock order.
fn saturated_engine() -> Engine {
    let machine = Machine::new(MachineConfig::amd16());
    let mut cfg = RuntimeConfig::default();
    cfg.epoch_cycles = 100_000;
    cfg.quantum_cycles = 10_000;
    let mut policy = StaticPolicy::new();
    for i in 0..8u64 {
        policy.assign(0x1000 + i, ((i * 5) % 16) as u32);
    }
    let mut engine = Engine::new(machine, Box::new(policy), cfg);
    let data = engine.machine_mut().memory_mut().alloc(1 << 20, 0);
    let locks: Vec<_> = (0..8)
        .map(|_| {
            let r = engine.machine_mut().memory_mut().alloc(64, 1);
            engine.register_lock(r.addr)
        })
        .collect();
    for core in 0..16u32 {
        let obj = 0x1000 + u64::from(core % 8);
        let lock = locks[(core % 8) as usize];
        let op = OpBuilder::annotated(obj)
            .lock(lock)
            .compute(300)
            .read(data.addr + u64::from(core) * 4096, 1024)
            .unlock(lock)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
        engine.spawn(
            core,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(500), Action::Yield],
                None,
            )),
        );
    }
    engine
}

/// Fingerprint of the saturated scenario after 1.5M cycles, captured from
/// the pre-refactor engine (the O(cores) smallest-clock scan) at commit
/// time. The event-driven engine must reproduce it exactly.
const PRE_REFACTOR_SATURATED_FINGERPRINT: u64 = 0x9d48_13c2_1de4_cda3;
const PRE_REFACTOR_SATURATED_TOTAL_OPS: u64 = 28_864;

#[test]
fn saturated_run_matches_pre_refactor_order_bit_for_bit() {
    let mut engine = saturated_engine();
    engine.run_until_cycles(1_500_000);
    println!(
        "fingerprint=0x{:016x} total_ops={}",
        fingerprint(&engine),
        engine.total_ops()
    );
    assert_eq!(engine.total_ops(), PRE_REFACTOR_SATURATED_TOTAL_OPS);
    assert_eq!(fingerprint(&engine), PRE_REFACTOR_SATURATED_FINGERPRINT);
}

#[test]
fn identical_configs_produce_identical_results() {
    let run = || {
        let mut engine = saturated_engine();
        engine.run_until_cycles(400_000);
        (fingerprint(&engine), engine.total_ops())
    };
    assert_eq!(run(), run());
}

/// With 15 of 16 cores idle, the scheduler processes events only for the
/// one busy core: parked cores consume zero work in the main loop, yet
/// their idle accounting is exact.
#[test]
fn parked_cores_consume_no_scheduler_work() {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default(),
    );
    let op = OpBuilder::annotated(0x1).compute(1000).finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
    engine.run_until_cycles(1_000_000);

    let stats = engine.sched_stats();
    // Core 0 executes ~3 actions per ~1000-cycle operation, so ~3k events.
    // The old engine additionally idle-stepped 15 cores every 400 cycles:
    // >= 37,500 extra iterations. Parked cores must contribute none.
    assert!(
        stats.events_processed < 10_000,
        "scheduler did O(cores) work: {stats:?}"
    );
    // Idle accounting is still exact: every parked core idled the full run.
    for core in 1..16 {
        assert_eq!(engine.machine().counters(core).idle_cycles, 1_000_000);
        assert_eq!(engine.core_clock(core), 1_000_000);
    }
    assert_eq!(engine.machine().counters(0).idle_cycles, 0);
}

/// A migration arrival un-parks the destination core.
#[test]
fn parked_core_is_woken_by_migration_arrival() {
    let mut cfg = MachineConfig::quad4();
    cfg.contention = ContentionModel::None;
    let mut policy = StaticPolicy::new();
    policy.assign(0x1000, 3);
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(policy),
        RuntimeConfig::default(),
    );
    let op = OpBuilder::annotated(0x1000).compute(500).finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(3))));
    engine.run_until_cycles(10_000_000);

    // The operations executed on the (initially parked) core 3; without
    // `return_home_after_op` the thread migrates once and stays there.
    assert_eq!(engine.machine().counters(3).operations_completed, 3);
    assert_eq!(engine.thread_stats(0).migrations, 1);
    assert!(
        engine.sched_stats().park_wakeups >= 1,
        "core 3 was never woken from park: {:?}",
        engine.sched_stats()
    );
    // Core 3 was idle before the first arrival, and that idle time was
    // credited even though it never spun in the scheduler loop.
    assert!(engine.machine().counters(3).idle_cycles > 0);
}

/// With blocking locks, a contended waiter parks its core and the
/// holder's release wakes it.
#[test]
fn parked_core_is_woken_by_lock_release() {
    let mut cfg = MachineConfig::quad4();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default().with_blocking_locks(),
    );
    let word = engine.machine_mut().memory_mut().alloc(64, 9);
    let lock = engine.register_lock(word.addr);
    // Thread A (core 0, stepped first) takes the lock and holds it for a
    // long compute; thread B (core 1) immediately contends, blocks, and
    // its core parks until A's release wakes it.
    let hold = OpBuilder::new()
        .lock(lock)
        .compute(50_000)
        .unlock(lock)
        .build();
    let want = OpBuilder::new()
        .lock(lock)
        .compute(100)
        .unlock(lock)
        .build();
    engine.spawn(0, Box::new(RepeatBehaviour::new(hold, Some(1))));
    engine.spawn(1, Box::new(RepeatBehaviour::new(want, Some(1))));
    engine.run_until_cycles(10_000_000);

    assert_eq!(engine.live_threads(), 0, "both threads must finish");
    assert_eq!(engine.locks().total_acquisitions(), 2);
    let stats = engine.sched_stats();
    assert_eq!(stats.lock_wakeups, 1, "{stats:?}");
    assert!(stats.park_wakeups >= 1, "{stats:?}");
    // Core 1 slept through most of A's 50k-cycle critical section instead
    // of spinning: nearly all of its wait shows up as idle, not busy.
    assert!(
        engine.machine().counters(1).idle_cycles > 40_000,
        "core 1 should have parked through the critical section, idle = {}",
        engine.machine().counters(1).idle_cycles
    );
    // And the waiter did not burn its wait spinning.
    assert!(engine.thread_stats(1).lock_wait_cycles < 1_000);
}

/// Blocking locks on a *shared* core: the waiter blocks, the holder keeps
/// the core busy, and the release hands the lock over without the core
/// ever parking. Both threads run to completion.
#[test]
fn blocking_locks_hand_off_on_a_shared_core() {
    let mut engine = Engine::new(
        Machine::new(MachineConfig::quad4()),
        Box::new(NullPolicy),
        RuntimeConfig::default().with_blocking_locks(),
    );
    let word = engine.machine_mut().memory_mut().alloc(64, 9);
    let lock = engine.register_lock(word.addr);
    for _ in 0..2 {
        let op = OpBuilder::new()
            .lock(lock)
            .compute(1000)
            .unlock(lock)
            .build();
        engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(10))));
    }
    engine.run_until_cycles(10_000_000);
    assert_eq!(engine.live_threads(), 0);
    assert_eq!(engine.locks().total_acquisitions(), 20);
}

/// A long action that carries the frontier past the run limit must not
/// drag parked cores (or epochs) beyond the limit: `run_until_cycles(n)`
/// leaves idle cores at exactly `n`.
#[test]
fn epochs_never_advance_idle_cores_past_the_run_limit() {
    let mut cfg = MachineConfig::quad4();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default(), // epoch_cycles = 200_000
    );
    // One action crossing both the 100k limit and the 200k epoch boundary.
    engine.spawn(
        0,
        Box::new(RepeatBehaviour::new(vec![Action::Compute(300_000)], None)),
    );
    engine.run_until_cycles(100_000);
    for core in 1..4 {
        assert_eq!(engine.core_clock(core), 100_000);
        assert_eq!(engine.machine().counters(core).idle_cycles, 100_000);
    }
}

/// Sparse events (long compute actions) must not skip epoch boundaries:
/// every boundary the frontier crosses fires exactly once, just as the
/// old engine's 400-cycle idle stepping guaranteed.
#[test]
fn sparse_events_still_fire_every_epoch() {
    struct CountEpochs(std::rc::Rc<std::cell::Cell<u32>>);
    impl SchedPolicy for CountEpochs {
        fn name(&self) -> &'static str {
            "count-epochs"
        }
        fn on_epoch(
            &mut self,
            _view: &o2_suite::runtime::EpochView<'_>,
        ) -> Vec<o2_suite::runtime::PolicyCommand> {
            self.0.set(self.0.get() + 1);
            Vec::new()
        }
    }
    let epochs = std::rc::Rc::new(std::cell::Cell::new(0));
    let mut cfg = MachineConfig::quad4();
    cfg.contention = ContentionModel::None;
    let mut rcfg = RuntimeConfig::default();
    rcfg.epoch_cycles = 10_000;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(CountEpochs(epochs.clone())),
        rcfg,
    );
    // 50k-cycle actions: each event crosses ~5 epoch boundaries.
    engine.spawn(
        0,
        Box::new(RepeatBehaviour::new(vec![Action::Compute(50_000)], None)),
    );
    engine.run_until_cycles(1_000_000);
    assert!(
        epochs.get() >= 95,
        "expected ~100 epochs over 1M cycles at 10k/epoch, got {}",
        epochs.get()
    );
}

/// Same-config determinism for an idle-heavy run (1 busy core of 16).
#[test]
fn idle_heavy_run_is_deterministic() {
    let run = || {
        let mut cfg = MachineConfig::amd16();
        cfg.contention = ContentionModel::None;
        let mut engine = Engine::new(
            Machine::new(cfg),
            Box::new(NullPolicy),
            RuntimeConfig::default(),
        );
        let op = OpBuilder::annotated(0x1).compute(700).finish();
        engine.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
        engine.run_until_cycles(2_000_000);
        (fingerprint(&engine), engine.total_ops())
    };
    assert_eq!(run(), run());
}
