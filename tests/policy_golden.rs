//! Golden fingerprints of the CoreTime decision path.
//!
//! These tests drive `O2Policy` directly through the `SchedPolicy`
//! interface with seeded synthetic operation storms and pin the policy's
//! observable behaviour — every placement decision, the `O2Stats` counters
//! after every epoch, and the final assignment table — to values captured
//! from the implementation **before** the dense-id/flat-table refactor.
//! Any change to a placement decision, a stats counter, or an assignment
//! changes the fingerprint.
//!
//! The storms identify objects by external keys (addresses, as the paper
//! does) and mirror the engine's interning: dense ids are assigned in
//! first-touch order exactly as `Engine`'s object index does, so the same
//! storm drives the pre- and post-refactor policy identically. Everything
//! that enters the fingerprint (object keys, core ids, stats) is
//! representation-independent.
//!
//! To re-capture after an *intentional* behaviour change:
//! `O2_PRINT_FINGERPRINTS=1 cargo test --test policy_golden -- --nocapture`

use o2_core::{CoreTimeConfig, O2Policy, O2Stats};
use o2_metrics::LatencySummary;
use o2_runtime::{
    AccessKind, DenseObjectId, EpochView, ObjectDescriptor, ObjectIndex, OpContext, Placement,
    SchedPolicy,
};
use o2_sim::{CounterDelta, Machine, MachineConfig};

/// FNV-1a over little-endian u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Deterministic 64-bit LCG (constants from Knuth); top bits returned.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Drives one policy instance through a storm, mirroring the engine's
/// `ct_start`/`ct_end`/epoch protocol and interning object keys in
/// first-touch order the way `Engine` does.
struct Storm {
    machine: Machine,
    policy: O2Policy,
    keys: Vec<u64>,
    index: ObjectIndex,
    ops_by_core: Vec<u64>,
    misses_by_core: Vec<u64>,
    hash: Fnv,
    epoch: u64,
}

impl Storm {
    fn new(machine_cfg: MachineConfig, cfg: CoreTimeConfig) -> Self {
        let machine = Machine::new(machine_cfg);
        let policy = O2Policy::new(machine.config(), cfg);
        let cores = machine.config().total_cores() as usize;
        Storm {
            machine,
            policy,
            keys: Vec::new(),
            index: ObjectIndex::default(),
            ops_by_core: vec![0; cores],
            misses_by_core: vec![0; cores],
            hash: Fnv::new(),
            epoch: 0,
        }
    }

    /// The engine's object index: dense ids in first-touch order.
    fn intern(&mut self, key: u64) -> DenseObjectId {
        let dense = self.index.intern(key);
        if dense as usize == self.keys.len() {
            self.keys.push(key);
        }
        dense
    }

    fn register(&mut self, key: u64, size: u64, read_mostly: bool) {
        let dense = self.intern(key);
        let desc = ObjectDescriptor::new(key, key, size).read_mostly(read_mostly);
        self.policy.register_object(dense, &desc);
    }

    /// One annotated operation: `ct_start` (recording the placement
    /// decision), then `ct_end` on the core the operation executed on.
    fn op(&mut self, thread: usize, core: u32, key: u64, misses: u64) {
        let dense = self.intern(key);
        let start_ctx = OpContext {
            thread,
            core,
            home_core: core,
            object: dense,
            object_key: key,
            kind: AccessKind::Write,
            now: 0,
            machine: &self.machine,
        };
        let placement = self.policy.on_ct_start(&start_ctx);
        let exec_core = match placement {
            Placement::Local => {
                self.hash.u64(u64::MAX);
                core
            }
            Placement::On(c) => {
                self.hash.u64(u64::from(c));
                c
            }
        };
        let delta = CounterDelta {
            l2_misses: misses,
            busy_cycles: 2_000 + misses * 60,
            dram_loads: misses / 3,
            operations_completed: 1,
            ..Default::default()
        };
        let end_ctx = OpContext {
            thread,
            core: exec_core,
            home_core: core,
            object: dense,
            object_key: key,
            kind: AccessKind::Write,
            now: 0,
            machine: &self.machine,
        };
        self.policy.on_ct_end(&end_ctx, &delta);
        self.ops_by_core[exec_core as usize] += 1;
        self.misses_by_core[exec_core as usize] += misses;
    }

    /// Fires one policy epoch with per-core deltas synthesized from the
    /// operations since the previous epoch: busy scales with work done,
    /// the laggards get the difference as idle time, and DRAM loads follow
    /// the misses — enough signal for the rebalancer, the pathology
    /// detector and replication to act.
    fn run_epoch(&mut self) {
        let busy: Vec<u64> = self
            .ops_by_core
            .iter()
            .zip(&self.misses_by_core)
            .map(|(&o, &m)| o * 2_000 + m * 60)
            .collect();
        let frontier = busy.iter().copied().max().unwrap_or(0);
        let deltas: Vec<CounterDelta> = (0..busy.len())
            .map(|c| CounterDelta {
                busy_cycles: busy[c],
                idle_cycles: frontier - busy[c] + 1_000,
                l2_misses: self.misses_by_core[c],
                dram_loads: self.misses_by_core[c] / 3,
                operations_completed: self.ops_by_core[c],
                ..Default::default()
            })
            .collect();
        self.fire_epoch(deltas);
    }

    /// Like [`Storm::run_epoch`], but with every core reporting a mid-range
    /// idle fraction and no DRAM pressure: the rebalancer classifies every
    /// core as `Normal` and stays quiet, so an operations-count imbalance
    /// is handled by the pathology detector alone.
    fn run_epoch_flat(&mut self) {
        let deltas: Vec<CounterDelta> = (0..self.ops_by_core.len())
            .map(|c| CounterDelta {
                busy_cycles: self.ops_by_core[c] * 2_000 + 10_000,
                idle_cycles: (self.ops_by_core[c] * 2_000 + 10_000) / 10,
                l2_misses: self.misses_by_core[c],
                operations_completed: self.ops_by_core[c],
                ..Default::default()
            })
            .collect();
        self.fire_epoch(deltas);
    }

    fn fire_epoch(&mut self, deltas: Vec<CounterDelta>) {
        self.epoch += 1;
        let view = EpochView {
            now: self.epoch * 1_000_000,
            machine: &self.machine,
            deltas: &deltas,
        };
        let commands = self.policy.on_epoch(&view);
        assert!(commands.is_empty(), "O2Policy issues no engine commands");
        self.hash_stats();
        self.ops_by_core.iter_mut().for_each(|o| *o = 0);
        self.misses_by_core.iter_mut().for_each(|m| *m = 0);
    }

    fn hash_stats(&mut self) {
        let s = self.policy.stats();
        for v in [
            s.assignments,
            s.decays,
            s.rebalance_moves,
            s.pathology_moves,
            s.replications,
            s.replacement_evictions,
            s.migrations_requested,
            s.local_operations,
            s.epochs,
        ] {
            self.hash.u64(v);
        }
    }

    /// Folds the final assignment table into the fingerprint, in external
    /// key order with sorted replica lists — independent of the table's
    /// internal layout.
    fn finish(mut self) -> (u64, O2Stats) {
        self.hash_stats();
        let mut keyed: Vec<(u64, DenseObjectId)> = self
            .keys
            .iter()
            .enumerate()
            .map(|(dense, &key)| (key, dense as DenseObjectId))
            .collect();
        keyed.sort_unstable();
        for (key, dense) in keyed {
            self.hash.u64(key);
            let table = self.policy.table();
            match table.primary(dense) {
                Some(core) => self.hash.u64(u64::from(core)),
                None => self.hash.u64(u64::MAX),
            }
            for r in table.replicas(dense).iter() {
                self.hash.u64(u64::from(r));
            }
        }
        for core in 0..self.machine.config().total_cores() {
            self.hash.u64(self.policy.table().used_bytes(core));
        }
        (self.hash.0, self.policy.stats())
    }
}

/// Storm 1 — migration-heavy: a modest working set that fits the amd16
/// packing budget, hammered from every core. Exercises the `ct_start`
/// lookup, assignment, rebalancing and pathology spreading.
fn storm_migration_heavy() -> (u64, O2Stats) {
    let mut s = Storm::new(MachineConfig::amd16(), CoreTimeConfig::default());
    let keys: Vec<u64> = (0..48u64).map(|i| 0x10_0000 + i * 0x1_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        s.register(k, 32 * 1024 + (i as u64 % 5) * 8 * 1024, false);
    }
    let mut rng = Lcg(0x5eed_0001);
    for i in 0..24_000u64 {
        let r = rng.next();
        let obj = if r % 10 < 7 {
            keys[(r >> 8) as usize % 8]
        } else {
            keys[(r >> 8) as usize % keys.len()]
        };
        let core = ((r >> 16) % 16) as u32;
        let thread = ((r >> 24) % 32) as usize;
        let misses = 150 + (obj >> 16) % 180;
        s.op(thread, core, obj, misses);
        if (i + 1) % 3_000 == 0 {
            s.run_epoch();
        }
    }
    s.finish()
}

/// Storm 2 — epoch churn: far more expensive objects than the quad4
/// budget holds, with the hot window shifting every epoch. Exercises
/// placement failure, decay gating, frequency-based replacement and the
/// registry's epoch accounting. Half the objects are never registered, so
/// the estimated-size path is covered too.
fn storm_epoch_churn() -> (u64, O2Stats) {
    let mut cfg = CoreTimeConfig::default();
    cfg.enable_decay = true;
    cfg.enable_replacement = true;
    cfg.decay_epochs = 2;
    let mut s = Storm::new(MachineConfig::quad4(), cfg);
    let keys: Vec<u64> = (0..160u64).map(|i| 0x200_0000 + i * 0x2_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        if i % 2 == 0 {
            s.register(k, 64 * 1024 + (i as u64 % 7) * 16 * 1024, false);
        }
    }
    // Four hot objects larger than any core's packing budget: they can
    // never be placed (not even by replacement), so every epoch carries
    // placement failures — the demand signal that opens the decay gate.
    let whales: Vec<u64> = (0..4u64).map(|i| 0x800_0000 + i * 0x80_0000).collect();
    for &w in &whales {
        s.register(w, 2 * 1024 * 1024, false);
    }
    let mut rng = Lcg(0x5eed_0002);
    for i in 0..20_000u64 {
        let r = rng.next();
        let epoch_phase = (i / 1_000) as usize;
        let window = 24usize;
        let base = (epoch_phase * 8) % keys.len();
        let obj = if r % 16 == 0 {
            whales[(r >> 8) as usize % whales.len()]
        } else {
            keys[(base + (r as usize % window)) % keys.len()]
        };
        let core = ((r >> 16) % 4) as u32;
        let thread = ((r >> 24) % 8) as usize;
        let misses = 900 + (obj >> 17) % 300;
        s.op(thread, core, obj, misses);
        if (i + 1) % 1_000 == 0 {
            s.run_epoch();
        }
    }
    s.finish()
}

/// Storm 4 — pathology spreading: a quad4 machine where two popular
/// objects end up on the same core and the per-core counters otherwise
/// look healthy, so only the operations-imbalance detector reacts.
fn storm_pathology() -> (u64, O2Stats) {
    let mut s = Storm::new(MachineConfig::quad4(), CoreTimeConfig::default());
    let whales: Vec<u64> = (0..3u64).map(|i| 0x60_0000 + i * 0x10_0000).collect();
    let hot: Vec<u64> = (0..2u64).map(|i| 0xA0_0000 + i * 0x10_0000).collect();
    for &w in &whales {
        s.register(w, 700 * 1024, false);
    }
    for &h in &hot {
        s.register(h, 100 * 1024, false);
    }
    let mut rng = Lcg(0x5eed_0004);
    // Warm-up: only the whales, so balanced placement parks one per core
    // (cores 0..2). Both hot objects then land on the near-empty core 3 —
    // a migration hot-spot in the making.
    for i in 0..3_000u64 {
        let r = rng.next();
        let obj = whales[r as usize % whales.len()];
        s.op(((r >> 24) % 8) as usize, ((r >> 16) % 4) as u32, obj, 220);
        if (i + 1) % 1_000 == 0 {
            s.run_epoch_flat();
        }
    }
    // Hot phase: 85% of operations hammer the two co-located hot objects;
    // only the pathology detector can split them apart.
    for i in 0..6_000u64 {
        let r = rng.next();
        let obj = if r % 100 < 85 {
            hot[r as usize % 2]
        } else {
            whales[(r >> 8) as usize % whales.len()]
        };
        s.op(((r >> 24) % 8) as usize, ((r >> 16) % 4) as u32, obj, 220);
        if (i + 1) % 1_000 == 0 {
            s.run_epoch_flat();
        }
    }
    s.finish()
}

/// Storm 3 — clustering and replication: every Section-6.2 extension
/// enabled, threads touching object pairs back-to-back, and a set of hot
/// read-mostly objects that earn replicas.
fn storm_clustering() -> (u64, O2Stats) {
    let mut s = Storm::new(
        MachineConfig::amd16(),
        CoreTimeConfig::with_all_extensions(),
    );
    let keys: Vec<u64> = (0..40u64).map(|i| 0x40_0000 + i * 0x1_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        s.register(k, 24 * 1024 + (i as u64 % 3) * 8 * 1024, i % 4 == 0);
    }
    let mut rng = Lcg(0x5eed_0003);
    for i in 0..20_000u64 {
        let r = rng.next();
        let pair = ((r >> 4) as usize % (keys.len() / 2)) * 2;
        let core = ((r >> 16) % 16) as u32;
        let thread = ((r >> 24) % 16) as usize;
        // The same thread touches both halves of the pair consecutively,
        // which is exactly the co-access signal the tracker counts.
        let misses = 200 + (pair as u64 * 11) % 150;
        s.op(thread, core, keys[pair], misses);
        s.op(thread, core, keys[pair + 1], misses / 2);
        if (i + 1) % 2_500 == 0 {
            s.run_epoch();
        }
    }
    s.finish()
}

/// Expected `(fingerprint, O2Stats)` per storm, captured from the
/// pre-refactor implementation (HashMap assignment table, HashMap
/// registry, HashMap co-access tracker) with the deterministic tie-breaks
/// applied. The refactored decision path must reproduce these bit-for-bit.
struct Golden {
    name: &'static str,
    run: fn() -> (u64, O2Stats),
    fingerprint: u64,
    stats: O2Stats,
}

const CAPTURE_ENV: &str = "O2_PRINT_FINGERPRINTS";

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            name: "migration_heavy",
            run: storm_migration_heavy,
            fingerprint: 0x565758ebb474b36c,
            stats: O2Stats {
                assignments: 48,
                decays: 0,
                rebalance_moves: 12,
                pathology_moves: 0,
                replications: 0,
                replacement_evictions: 0,
                migrations_requested: 22415,
                local_operations: 1585,
                epochs: 8,
                op_latency: LatencySummary {
                    count: 24000,
                    p50: 12260,
                    p99: 14720,
                    p999: 14780,
                    max: 14780,
                },
                ..O2Stats::default()
            },
        },
        Golden {
            name: "epoch_churn",
            run: storm_epoch_churn,
            fingerprint: 0xcaf9bdc96293c61c,
            stats: O2Stats {
                assignments: 193,
                decays: 136,
                rebalance_moves: 59,
                pathology_moves: 0,
                replications: 0,
                replacement_evictions: 25,
                migrations_requested: 13610,
                local_operations: 6390,
                epochs: 20,
                op_latency: LatencySummary {
                    count: 20000,
                    p50: 60980,
                    p99: 73880,
                    p999: 73940,
                    max: 73940,
                },
                ..O2Stats::default()
            },
        },
        Golden {
            name: "clustering",
            run: storm_clustering,
            fingerprint: 0x4bab7baaf57db132,
            stats: O2Stats {
                assignments: 40,
                decays: 0,
                rebalance_moves: 9,
                pathology_moves: 0,
                replications: 38,
                replacement_evictions: 0,
                migrations_requested: 36484,
                local_operations: 3516,
                epochs: 8,
                op_latency: LatencySummary {
                    count: 40000,
                    p50: 14000,
                    p99: 22160,
                    p999: 22160,
                    max: 22160,
                },
                ..O2Stats::default()
            },
        },
        Golden {
            name: "pathology",
            run: storm_pathology,
            fingerprint: 0xe8ab112ad3a3ecb9,
            stats: O2Stats {
                assignments: 5,
                decays: 0,
                rebalance_moves: 0,
                pathology_moves: 1,
                replications: 0,
                replacement_evictions: 0,
                migrations_requested: 6733,
                local_operations: 2267,
                epochs: 9,
                op_latency: LatencySummary {
                    count: 9000,
                    p50: 15200,
                    p99: 15200,
                    p999: 15200,
                    max: 15200,
                },
                ..O2Stats::default()
            },
        },
    ]
}

#[test]
fn storms_reproduce_the_prerefactor_fingerprints() {
    let capture = std::env::var(CAPTURE_ENV)
        .map(|v| v == "1")
        .unwrap_or(false);
    for g in goldens() {
        let (fp, stats) = (g.run)();
        if capture {
            println!("{}: fingerprint = {:#018x}", g.name, fp);
            println!("{}: stats = {:?}", g.name, stats);
            continue;
        }
        assert_eq!(
            fp, g.fingerprint,
            "{}: decision-path fingerprint diverged from the pre-refactor capture",
            g.name
        );
        assert_eq!(
            stats, g.stats,
            "{}: O2Stats diverged from the pre-refactor capture",
            g.name
        );
    }
}

#[test]
fn storms_are_deterministic_within_a_build() {
    // The fingerprint is a pure function of the seed: two runs in the same
    // process must agree (this is what satellite-1's tie-break fixes
    // guarantee — before them, HashMap iteration order leaked into decay
    // and move planning).
    for g in goldens() {
        assert_eq!((g.run)().0, (g.run)().0, "{} not deterministic", g.name);
    }
}
