//! Randomised invariant checks for `o2_collections::FlatTable`, the one
//! shared open-addressed table (Fibonacci hash, linear probe,
//! backward-shift deletion) behind the coherence directory, the object
//! interner, the co-access pair table and the fs name index.
//!
//! A `std::collections::HashMap` is the oracle: after **any** interleaved
//! sequence of insert / entry / remove / lookup operations the table must
//! agree with it on every key, on `len()`, and on the full iterated
//! contents — including under sustained deletion churn at high load
//! factor, where backward-shifting does the most work.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::collections::{FlatTable, Interner};

const CASES: usize = 24;
const OPS_PER_CASE: usize = 4_000;

fn check_full_agreement(table: &FlatTable<u64, u64>, oracle: &HashMap<u64, u64>, tag: &str) {
    assert_eq!(table.len(), oracle.len(), "{tag}: len diverged");
    // Every oracle entry is in the table (peek: no probe-count skew).
    for (&k, &v) in oracle {
        assert_eq!(table.peek(k), Some(&v), "{tag}: key {k} diverged");
    }
    // Every iterated entry is in the oracle exactly once.
    let mut seen = 0usize;
    for (k, &v) in table.iter() {
        assert_eq!(oracle.get(&k), Some(&v), "{tag}: stray key {k}");
        seen += 1;
    }
    assert_eq!(seen, oracle.len(), "{tag}: iter count diverged");
}

#[test]
fn random_op_sequences_agree_with_the_hashmap_oracle() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_7AB1_E000_0001);
    for case in 0..CASES {
        // Small starting capacity and a key space a few times the
        // capacity, so the table repeatedly crosses its 7/8 growth
        // threshold and probe clusters form, dissolve and shift.
        let key_space = 1u64 << rng.gen_range(4u32..9);
        let mut table: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for step in 0..OPS_PER_CASE {
            let key = rng.gen_range(0..key_space);
            match rng.gen_range(0u8..8) {
                // Removal at 3-in-8 keeps the table near its high-load
                // regime without ever fully draining it.
                0..=2 => {
                    let a = table.remove(key);
                    let b = oracle.remove(&key);
                    assert_eq!(a, b, "case {case} step {step}: remove");
                }
                3..=4 => {
                    let v = rng.gen::<u64>();
                    let a = table.insert(key, v);
                    let b = oracle.insert(key, v);
                    assert_eq!(a, b, "case {case} step {step}: insert");
                }
                5 => {
                    let add = rng.gen_range(1u64..100);
                    *table.entry(key) += add;
                    *oracle.entry(key).or_insert(0) += add;
                }
                6 => {
                    assert_eq!(
                        table.get(key).copied(),
                        oracle.get(&key).copied(),
                        "case {case} step {step}: get"
                    );
                }
                _ => {
                    let (v, inserted) = table.or_insert_with(key, || key * 3);
                    let expect_inserted = !oracle.contains_key(&key);
                    assert_eq!(inserted, expect_inserted, "case {case} step {step}");
                    assert_eq!(*v, *oracle.entry(key).or_insert(key * 3));
                }
            }
            assert_eq!(table.len(), oracle.len(), "case {case} step {step}: len");
        }
        check_full_agreement(&table, &oracle, &format!("case {case}"));
    }
}

#[test]
fn deletion_churn_at_high_load_factor_backward_shifts_correctly() {
    // Fill a table to just under its growth threshold, then churn
    // remove/insert pairs so it *stays* at maximum load: every removal
    // lands in long probe clusters and must backward-shift them without
    // losing or duplicating keys.
    let mut rng = StdRng::seed_from_u64(0xF1A7_7AB1_E000_0002);
    let mut table: FlatTable<u64, u64> = FlatTable::with_capacity(256);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let cap = table.capacity();
    let max_load = cap * 7 / 8 - 1; // stays below the growth trigger
    let mut keys: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    while oracle.len() < max_load {
        table.insert(next_key, next_key);
        oracle.insert(next_key, next_key);
        keys.push(next_key);
        next_key += 1;
    }
    assert_eq!(table.capacity(), cap, "setup must not trigger growth");
    for step in 0..20_000 {
        // Remove a random existing key (picked from a deterministic side
        // list, so failures reproduce), insert a fresh one.
        let victim = keys.swap_remove(rng.gen_range(0..keys.len()));
        assert_eq!(table.remove(victim), oracle.remove(&victim), "step {step}");
        table.insert(next_key, next_key);
        oracle.insert(next_key, next_key);
        keys.push(next_key);
        next_key += 1;
        assert_eq!(table.len(), max_load, "step {step}: load drifted");
    }
    assert_eq!(table.capacity(), cap, "churn must not grow a full table");
    check_full_agreement(&table, &oracle, "high-load churn");
}

#[test]
fn interner_agrees_with_a_hashmap_oracle() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_7AB1_E000_0003);
    let mut interner = Interner::with_capacity(8);
    let mut oracle: HashMap<u64, u32> = HashMap::new();
    for step in 0..50_000 {
        let key = rng.gen_range(0..4096u64);
        if rng.gen_range(0..4u8) == 0 {
            assert_eq!(
                interner.get(key),
                oracle.get(&key).copied(),
                "step {step}: get"
            );
        } else {
            let next = oracle.len() as u32;
            let (dense, new) = interner.intern(key);
            let expected = *oracle.entry(key).or_insert(next);
            assert_eq!((dense, new), (expected, expected == next), "step {step}");
        }
        assert_eq!(interner.len(), oracle.len(), "step {step}: len");
    }
}
