//! The parallel runner's contract: output is bit-identical to the
//! serial path, no matter how many workers race over the matrix.
//!
//! Two angles:
//!
//! * a **real registry scenario** (`table_latency`: cheap, builds real
//!   simulated machines and runs a real engine migration) rendered to
//!   JSON under `--jobs 1` and `--jobs 4`;
//! * a **purpose-built small scenario** driving the full lookup
//!   `Experiment` stack on a quad-core machine, so real engine runs —
//!   with per-cell derived seeds — are exercised across worker counts
//!   too.

use o2_suite::experiments::{
    find_scenario, registry, render_json, render_reports, run_matrix, CellResult, PolicyKind,
    Scenario, SeriesDef, SweepPoint,
};
use o2_suite::workloads::{Experiment, WorkloadSpec};

/// A scaled-down Figure-4-style scenario: 2 policies x 3 sizes on the
/// quad-core machine with short windows.
fn small_scenario() -> Scenario {
    Scenario {
        name: "small_lookup",
        title: "Small lookup scenario (test only)",
        description: "runner determinism test scenario",
        x_label: "Total data size (KB)",
        params: Vec::new(),
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points: vec![
            SweepPoint::scalar(4, "4 dirs"),
            SweepPoint::scalar(8, "8 dirs"),
            SweepPoint::scalar(16, "16 dirs"),
        ],
        payload: 0,
        run: |sc, se, pt, seed| {
            let mut spec = WorkloadSpec::paper_default(sc.points[pt].value as u32);
            spec.machine = o2_suite::sim::MachineConfig::quad4();
            spec.warmup_ops = 300;
            spec.measure_cycles = 400_000;
            spec.seed = seed;
            let policy = sc.series[se].policy.unwrap().build(&spec.machine);
            let m = Experiment::build(spec, policy).run();
            CellResult::point(m.total_kb(), m.kres_per_sec())
        },
        summarize: None,
    }
}

#[test]
fn parallel_runner_matches_serial_byte_for_byte() {
    let scenarios = || {
        vec![
            small_scenario(),
            find_scenario(registry(true), "table_latency").expect("registered scenario"),
        ]
    };
    let serial = run_matrix(&scenarios(), 1);
    let parallel = run_matrix(&scenarios(), 4);
    assert_eq!(render_json(&serial), render_json(&parallel));
    assert_eq!(render_reports(&serial), render_reports(&parallel));
    // And the runs measured something real.
    let lookup = &serial.scenarios[0];
    for series in &lookup.series {
        assert_eq!(series.points.len(), 3);
        for &(x, y) in &series.points {
            assert!(x > 0.0 && y > 0.0, "empty cell in {}", series.label);
        }
    }
}

#[test]
fn rerunning_the_same_matrix_reproduces_it() {
    // Determinism over time, not just over worker counts: per-cell
    // derived seeds make the run a pure function of the scenario list.
    let a = run_matrix(&[small_scenario()], 2);
    let b = run_matrix(&[small_scenario()], 3);
    assert_eq!(render_json(&a), render_json(&b));
}
