//! Randomised invariant checks for the flat `AssignmentTable`.
//!
//! After **any** sequence of assign / release / move / replicate
//! operations the table must satisfy, on every core:
//!
//! * `used_bytes(core)` equals the sum of the sizes of the objects listed
//!   by `objects_on(core)`;
//! * `objects_on(core)` lists an object exactly once, and exactly when the
//!   object's replica set contains the core;
//! * an object's replica set never double-counts a core (primary and
//!   replicas never overlap): the primary appears in the set exactly once,
//!   and the set size equals the number of per-core listings;
//! * `used_bytes + free_bytes == capacity` and the global `len()` matches
//!   the number of objects with a primary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::coretime::AssignmentTable;

const CASES: usize = 32;
const OPS_PER_CASE: usize = 400;
const OBJECTS: u32 = 48;

fn check_invariants(table: &AssignmentTable, sizes: &[u64]) {
    let cores = table.num_cores() as u32;
    let mut assigned_objects = 0usize;
    let mut listings_total = 0usize;
    for core in 0..cores {
        let on = table.objects_on(core);
        // No duplicates in the per-core listing.
        let mut seen = on.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), on.len(), "core {core} lists an object twice");
        // used_bytes equals the sum of sizes of the listed objects.
        let sum: u64 = on.iter().map(|&o| sizes[o as usize]).sum();
        assert_eq!(
            table.used_bytes(core),
            sum,
            "core {core} used_bytes out of sync with its object list"
        );
        assert_eq!(
            table.used_bytes(core) + table.free_bytes(core),
            table.capacity(core),
            "core {core} bytes not conserved"
        );
        listings_total += on.len();
    }
    for object in 0..OBJECTS {
        let replicas = table.replicas(object);
        match table.primary(object) {
            Some(primary) => {
                assigned_objects += 1;
                // The primary is in the replica set (a bitmask cannot hold
                // it twice — that is the "primary and replicas never
                // overlap" invariant).
                assert!(
                    replicas.contains(primary),
                    "object {object}: primary {primary} missing from replica set"
                );
                // Set membership and the per-core listings agree exactly.
                for core in 0..cores {
                    let listed = table
                        .objects_on(core)
                        .iter()
                        .filter(|&&o| o == object)
                        .count();
                    let expected = usize::from(replicas.contains(core));
                    assert_eq!(
                        listed, expected,
                        "object {object} vs core {core}: replica set and per-core list disagree"
                    );
                }
            }
            None => {
                assert!(
                    replicas.is_empty(),
                    "object {object}: replicas without a primary"
                );
            }
        }
    }
    assert_eq!(table.len(), assigned_objects, "len() out of sync");
    // Every per-core listing is accounted for by some replica set.
    let replica_total: usize = (0..OBJECTS).map(|o| table.replicas(o).len()).sum();
    assert_eq!(listings_total, replica_total);
}

#[test]
fn random_op_sequences_preserve_all_invariants() {
    let mut rng = StdRng::seed_from_u64(0x7AB1_E000);
    for case in 0..CASES {
        let cores = rng.gen_range(1usize..8);
        let cap = rng.gen_range(10_000u64..100_000);
        let mut table = AssignmentTable::new(vec![cap; cores]);
        // Immutable per-object sizes, as the policy uses them (the caller
        // always passes the registry's size for the object).
        let sizes: Vec<u64> = (0..OBJECTS).map(|_| rng.gen_range(1u64..20_000)).collect();
        for step in 0..OPS_PER_CASE {
            let object = rng.gen_range(0u32..OBJECTS);
            let size = sizes[object as usize];
            let core = rng.gen_range(0u32..cores as u32);
            match rng.gen_range(0u8..5) {
                0 => {
                    let _ = table.assign(object, size, core);
                }
                1 => {
                    let _ = table.unassign(object);
                }
                2 => {
                    let _ = table.reassign(object, size, core);
                }
                3 => {
                    let _ = table.add_replica(object, core);
                }
                _ => {
                    // assign_unchecked is what replacement uses after
                    // making room; it may overflow but must stay
                    // consistent.
                    if table.free_bytes(core) >= size {
                        table.assign_unchecked(object, size, core);
                    }
                }
            }
            check_invariants(&table, &sizes);
            let _ = (case, step);
        }
    }
}

#[test]
fn replicate_then_move_then_release_never_leaks_bytes() {
    // A directed sequence covering the exact interleaving the policy
    // performs: assign → replicate widely → reassign (drops replicas) →
    // unassign (releases everything).
    let mut table = AssignmentTable::new(vec![10_000; 4]);
    let sizes: Vec<u64> = (0..OBJECTS).map(|_| 1_000).collect();
    assert!(table.assign(1, 1_000, 0));
    assert!(table.add_replica(1, 1));
    assert!(table.add_replica(1, 2));
    check_invariants(&table, &sizes);
    assert_eq!(table.total_assigned_bytes(), 3_000);
    // Moving the primary drops every replica.
    assert!(table.reassign(1, 1_000, 3));
    check_invariants(&table, &sizes);
    assert_eq!(table.total_assigned_bytes(), 1_000);
    assert_eq!(table.replicas(1).len(), 1);
    assert!(table.unassign(1));
    check_invariants(&table, &sizes);
    assert_eq!(table.total_assigned_bytes(), 0);
}
