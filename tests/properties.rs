//! Randomised property tests for the core data structures and invariants.
//!
//! These were originally written against `proptest`; the workspace builds
//! offline, so they are expressed as seeded-loop properties instead: each
//! test draws many random cases from a fixed-seed [`StdRng`] and asserts
//! the same invariants. Failures are reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::coretime::{pack, AssignmentTable, PackItem};
use o2_suite::fs::{split_8_3, synthetic_name, DirEntry, Fat, Volume, DIRENT_SIZE};
use o2_suite::sim::{AccessKind, Cache, CacheGeometry, ContentionModel, Machine, MachineConfig};

const CASES: usize = 48;

fn rng_for(test: u64) -> StdRng {
    StdRng::seed_from_u64(0x0510_7E57 ^ test)
}

/// The greedy cache packer never overflows any core's budget, and every
/// object is either placed or reported as unplaced.
#[test]
fn packing_respects_budgets() {
    let mut rng = rng_for(1);
    for _ in 0..CASES {
        let n_items = rng.gen_range(1usize..80);
        let n_cores = rng.gen_range(1usize..16);
        let items: Vec<PackItem> = (0..n_items)
            .map(|i| PackItem {
                object: i as u32,
                size: rng.gen_range(1u64..200_000),
                expense: rng.gen::<f64>() * 1e6,
            })
            .collect();
        let capacities: Vec<u64> = (0..n_cores).map(|_| rng.gen_range(1u64..500_000)).collect();
        let packing = pack(&items, &capacities);
        assert_eq!(packing.placed.len() + packing.unplaced.len(), items.len());
        let mut used = vec![0u64; capacities.len()];
        for (obj, core) in &packing.placed {
            let size = items.iter().find(|i| i.object == *obj).unwrap().size;
            used[*core as usize] += size;
        }
        for (u, c) in used.iter().zip(capacities.iter()) {
            assert!(u <= c, "core over budget: {u} > {c}");
        }
    }
}

/// Assignment-table bookkeeping: used + free always equals capacity,
/// regardless of the operation sequence.
#[test]
fn assignment_table_accounting_is_conserved() {
    let mut rng = rng_for(2);
    for _ in 0..CASES {
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut sizes = std::collections::HashMap::new();
        for _ in 0..rng.gen_range(1usize..200) {
            let obj = rng.gen_range(0u32..32);
            let size = rng.gen_range(1u64..5000);
            let core = rng.gen_range(0u32..4);
            match rng.gen_range(0u8..3) {
                0 => {
                    let size = *sizes.entry(obj).or_insert(size);
                    let _ = table.assign(obj, size, core);
                }
                1 => {
                    if sizes.contains_key(&obj) {
                        let _ = table.unassign(obj);
                    }
                }
                _ => {
                    if let Some(&size) = sizes.get(&obj) {
                        let _ = table.reassign(obj, size, core);
                    }
                }
            }
            for c in 0..4u32 {
                assert_eq!(table.used_bytes(c) + table.free_bytes(c), table.capacity(c));
            }
        }
    }
}

/// A cache never holds more lines than its capacity and never reports a
/// line it did not insert.
#[test]
fn cache_capacity_is_never_exceeded() {
    let mut rng = rng_for(3);
    for _ in 0..CASES {
        let mut cache = Cache::new(CacheGeometry::new(64 * 64, 4), 64);
        let mut inserted = std::collections::HashSet::new();
        for _ in 0..rng.gen_range(1usize..500) {
            let line = rng.gen_range(0u64..10_000);
            cache.insert(line, false);
            inserted.insert(line);
            assert!(cache.resident_lines() <= cache.capacity_lines());
        }
        for line in cache.lines() {
            assert!(inserted.contains(&line));
        }
    }
}

/// FAT chains produced by consecutive allocations never share clusters.
#[test]
fn fat_chains_are_disjoint() {
    let mut rng = rng_for(4);
    for _ in 0..CASES {
        let counts: Vec<usize> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(1usize..20))
            .collect();
        let total: usize = counts.iter().sum();
        let mut fat = Fat::new(total + 8);
        let mut seen = std::collections::HashSet::new();
        for count in counts {
            let first = fat.alloc_chain(count).unwrap();
            let chain = fat.chain(first).unwrap();
            assert_eq!(chain.len(), count);
            for cluster in chain {
                assert!(seen.insert(cluster), "cluster {cluster} allocated twice");
            }
        }
    }
}

/// Directory entries survive an encode/decode round trip for arbitrary
/// names and metadata.
#[test]
fn dirent_round_trips() {
    const ALNUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let mut rng = rng_for(5);
    let word = |rng: &mut StdRng, min: usize, max: usize| {
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| ALNUM[rng.gen_range(0usize..ALNUM.len())] as char)
            .collect::<String>()
    };
    for _ in 0..4 * CASES {
        let name = word(&mut rng, 1, 12);
        let ext = word(&mut rng, 0, 3);
        let cluster = rng.gen_range(2u16..0xFFF0);
        let size = rng.gen::<u32>();
        let full = if ext.is_empty() {
            name.clone()
        } else {
            format!("{name}.{ext}")
        };
        let entry = DirEntry::file(&full, cluster, size);
        let decoded = DirEntry::decode(&entry.encode()).unwrap();
        assert_eq!(entry, decoded);
        let (n, e) = split_8_3(&full);
        assert_eq!(decoded.name, n);
        assert_eq!(decoded.ext, e);
    }
}

/// Searching any existing file in a benchmark volume finds it at the right
/// index having examined exactly index + 1 entries.
#[test]
fn volume_search_finds_every_file() {
    let mut rng = rng_for(6);
    for _ in 0..CASES {
        let dirs = rng.gen_range(1u32..6);
        let files = rng.gen_range(1u32..200);
        let probe = rng.gen_range(0u32..200);
        let volume = Volume::build_benchmark(dirs, files).unwrap();
        let target = probe % files;
        let dir = probe % dirs;
        let name = synthetic_name(target);
        let (idx, examined) = volume.search(dir, &name).unwrap().unwrap();
        assert_eq!(idx, target);
        assert_eq!(examined, target + 1);
        assert_eq!(
            volume.total_directory_bytes(),
            u64::from(dirs) * u64::from(files) * DIRENT_SIZE as u64
        );
    }
}

/// Simulator sanity for arbitrary small access patterns: costs are always
/// at least the L1 latency, re-reading the same address twice in a row is
/// never slower the second time, and counters add up.
#[test]
fn machine_access_costs_are_sane() {
    let mut rng = rng_for(7);
    for _ in 0..CASES {
        let mut cfg = MachineConfig::quad4();
        cfg.contention = ContentionModel::None;
        let mut machine = Machine::new(cfg);
        let region = machine.memory_mut().alloc(32_768 + 64, 0);
        let n_accesses = rng.gen_range(1usize..100);
        for _ in 0..n_accesses {
            let offset = rng.gen_range(0u64..32_768);
            let kind = if rng.gen::<bool>() {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let first = machine.access(0, region.addr + offset, 8, kind);
            let second = machine.access(0, region.addr + offset, 8, AccessKind::Read);
            assert!(first >= 3);
            assert!(second <= first);
        }
        // Every access touches one or two lines (8-byte accesses may cross
        // a line boundary), so the counters bracket the access count.
        let counters = machine.counters(0);
        let line_touches = counters.l1_hits + counters.l1_misses;
        assert!(line_touches >= 2 * n_accesses as u64);
        assert!(line_touches <= 4 * n_accesses as u64);
    }
}
