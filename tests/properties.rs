//! Property-based tests (proptest) for the core data structures and
//! invariants.

use proptest::prelude::*;

use o2_suite::coretime::{pack, AssignmentTable, PackItem};
use o2_suite::fs::{split_8_3, DirEntry, Fat, Volume, DIRENT_SIZE};
use o2_suite::sim::{AccessKind, Cache, CacheGeometry, Machine, MachineConfig};

proptest! {
    /// The greedy cache packer never overflows any core's budget, and every
    /// object is either placed or reported as unplaced.
    #[test]
    fn packing_respects_budgets(
        sizes in prop::collection::vec(1u64..200_000, 1..80),
        expenses in prop::collection::vec(0.0f64..1e6, 1..80),
        capacities in prop::collection::vec(1u64..500_000, 1..16),
    ) {
        let items: Vec<PackItem> = sizes
            .iter()
            .zip(expenses.iter().cycle())
            .enumerate()
            .map(|(i, (&size, &expense))| PackItem { object: i as u64, size, expense })
            .collect();
        let packing = pack(&items, &capacities);
        prop_assert_eq!(packing.placed.len() + packing.unplaced.len(), items.len());
        let mut used = vec![0u64; capacities.len()];
        for (obj, core) in &packing.placed {
            let size = items.iter().find(|i| i.object == *obj).unwrap().size;
            used[*core as usize] += size;
        }
        for (u, c) in used.iter().zip(capacities.iter()) {
            prop_assert!(u <= c, "core over budget: {} > {}", u, c);
        }
    }

    /// Assignment-table bookkeeping: used + free always equals capacity,
    /// regardless of the operation sequence.
    #[test]
    fn assignment_table_accounting_is_conserved(
        ops in prop::collection::vec((0u64..32, 1u64..5000, 0u32..4, 0u8..3), 1..200)
    ) {
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut sizes = std::collections::HashMap::new();
        for (obj, size, core, action) in ops {
            match action {
                0 => {
                    let size = *sizes.entry(obj).or_insert(size);
                    let _ = table.assign(obj, size, core);
                }
                1 => {
                    if let Some(&size) = sizes.get(&obj) {
                        let _ = table.unassign(obj, size);
                    }
                }
                _ => {
                    if let Some(&size) = sizes.get(&obj) {
                        let _ = table.reassign(obj, size, core);
                    }
                }
            }
            for c in 0..4u32 {
                prop_assert_eq!(table.used_bytes(c) + table.free_bytes(c), table.capacity(c));
            }
        }
    }

    /// A cache never holds more lines than its capacity and never reports a
    /// line it did not insert.
    #[test]
    fn cache_capacity_is_never_exceeded(
        lines in prop::collection::vec(0u64..10_000, 1..500)
    ) {
        let mut cache = Cache::new(CacheGeometry::new(64 * 64, 4), 64);
        let mut inserted = std::collections::HashSet::new();
        for line in lines {
            cache.insert(line, false);
            inserted.insert(line);
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
        }
        for line in cache.lines() {
            prop_assert!(inserted.contains(&line));
        }
    }

    /// FAT chains produced by consecutive allocations never share clusters.
    #[test]
    fn fat_chains_are_disjoint(counts in prop::collection::vec(1usize..20, 1..20)) {
        let total: usize = counts.iter().sum();
        let mut fat = Fat::new(total + 8);
        let mut seen = std::collections::HashSet::new();
        for count in counts {
            let first = fat.alloc_chain(count).unwrap();
            let chain = fat.chain(first).unwrap();
            prop_assert_eq!(chain.len(), count);
            for cluster in chain {
                prop_assert!(seen.insert(cluster), "cluster {} allocated twice", cluster);
            }
        }
    }

    /// Directory entries survive an encode/decode round trip for arbitrary
    /// names and metadata.
    #[test]
    fn dirent_round_trips(
        name in "[A-Za-z0-9]{1,12}",
        ext in "[A-Za-z0-9]{0,3}",
        cluster in 2u16..0xFFF0,
        size in 0u32..u32::MAX,
    ) {
        let full = if ext.is_empty() { name.clone() } else { format!("{name}.{ext}") };
        let entry = DirEntry::file(&full, cluster, size);
        let decoded = DirEntry::decode(&entry.encode()).unwrap();
        prop_assert_eq!(entry, decoded);
        let (n, e) = split_8_3(&full);
        prop_assert_eq!(decoded.name, n);
        prop_assert_eq!(decoded.ext, e);
    }

    /// Searching any existing file in a benchmark volume finds it at the
    /// right index having examined exactly index + 1 entries.
    #[test]
    fn volume_search_finds_every_file(dirs in 1u32..6, files in 1u32..200, probe in 0u32..200) {
        let volume = Volume::build_benchmark(dirs, files).unwrap();
        let target = probe % files;
        let dir = probe % dirs;
        let name = o2_suite::fs::synthetic_name(target);
        let (idx, examined) = volume.search(dir, &name).unwrap().unwrap();
        prop_assert_eq!(idx, target);
        prop_assert_eq!(examined, target + 1);
        prop_assert_eq!(volume.total_directory_bytes(),
            u64::from(dirs) * u64::from(files) * DIRENT_SIZE as u64);
    }

    /// Simulator sanity for arbitrary small access patterns: costs are
    /// always at least the L1 latency, re-reading the same address twice in
    /// a row is never slower the second time, and counters add up.
    #[test]
    fn machine_access_costs_are_sane(
        offsets in prop::collection::vec(0u64..32_768, 1..100),
        write_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cfg = MachineConfig::quad4();
        cfg.contention = o2_suite::sim::ContentionModel::None;
        let mut machine = Machine::new(cfg);
        let region = machine.memory_mut().alloc(32_768 + 64, 0);
        for (offset, write) in offsets.iter().zip(write_mask.iter().cycle()) {
            let kind = if *write { AccessKind::Write } else { AccessKind::Read };
            let first = machine.access(0, region.addr + offset, 8, kind);
            let second = machine.access(0, region.addr + offset, 8, AccessKind::Read);
            prop_assert!(first >= 3);
            prop_assert!(second <= first);
        }
        // Every access touches one or two lines (8-byte accesses may cross a
        // line boundary), so the counters bracket the access count.
        let counters = machine.counters(0);
        let line_touches = counters.l1_hits + counters.l1_misses;
        prop_assert!(line_touches >= 2 * offsets.len() as u64);
        prop_assert!(line_touches <= 4 * offsets.len() as u64);
    }
}
