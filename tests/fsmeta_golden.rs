//! Golden fingerprint of the `fsmeta` metadata-churn workload.
//!
//! `fsmeta` drives create / rename / unlink churn — plus occasional
//! whole-directory retirement through `Volume::remove_directory` and
//! `DirId` reuse — through the engine with the volume's host-side
//! bookkeeping on the flat name index, so this run pins, end-to-end:
//! the engine's virtual-time interleaving, the modeled costs of the
//! metadata operations, and the final state of every directory's name
//! index (live entries, free slots, per-slot names). Any change to the
//! churn mix, the volume's slot-allocation order (first-fit), the
//! handle table's id reuse, the flat table's behaviour under deletion,
//! or the engine's scheduling changes the fingerprint.
//!
//! To re-capture after an *intentional* behaviour change:
//! `O2_PRINT_FINGERPRINTS=1 cargo test --test fsmeta_golden -- --nocapture`

use o2_suite::runtime::NullPolicy;
use o2_suite::sim::{ContentionModel, MachineConfig};
use o2_suite::workloads::{FsMetaExperiment, FsMetaSpec};

/// FNV-1a over little-endian u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn spec() -> FsMetaSpec {
    let mut spec = FsMetaSpec::paper_default(12);
    // Small machine and windows so the golden run stays fast; contention
    // off so the fingerprint is a function of the documented cost model.
    spec.machine = MachineConfig::quad4();
    spec.machine.contention = ContentionModel::None;
    spec.capacity_per_dir = 16;
    spec.initial_live_per_dir = 8;
    spec.warmup_ops = 200;
    spec.measure_cycles = 500_000;
    spec
}

fn run_fingerprint() -> u64 {
    let mut exp = FsMetaExperiment::build(spec(), Box::new(NullPolicy));
    let m = exp.run();
    let stats = exp.meta_stats();
    let mut f = Fnv::new();
    f.u64(m.window.ops);
    f.u64(m.window.end);
    f.u64(m.lock_contention);
    f.u64(stats.created);
    f.u64(stats.unlinked);
    f.u64(stats.renamed);
    f.u64(stats.lookups);
    f.u64(stats.dirs_recycled);
    f.u64(stats.drained);
    for &n in &exp.live_counts() {
        f.u64(u64::from(n));
    }
    // The final contents of every directory, slot by slot: which slots
    // are live, and under which (canonicalised) names — the observable
    // state of the flat name index after all the churn.
    exp.with_volume(|v| {
        for dir in 0..v.dir_count() as u32 {
            let d = v.directory(dir).unwrap();
            for slot in 0..d.entry_count {
                let e = v.read_entry(dir, slot).unwrap();
                let name = e.display_name();
                let live = v.find_entry(dir, &name).unwrap() == Some(slot);
                f.u64(u64::from(live));
                if live {
                    let mut h = Fnv::new();
                    for b in name.bytes() {
                        h.u64(u64::from(b));
                    }
                    f.u64(h.0);
                }
            }
            f.u64(u64::from(v.live_entries(dir).unwrap()));
            f.u64(u64::from(v.free_slots(dir).unwrap()));
        }
    });
    f.0
}

/// Captured when the directory-retirement arm entered the churn mix
/// (PR 5, alongside `Volume::remove_directory`). The workload, the
/// volume's first-fit slot allocation, the handle table's id reuse and
/// the flat name index must keep reproducing it bit-for-bit.
const GOLDEN_FINGERPRINT: u64 = 0xea93_785b_40a7_b663;

#[test]
fn fsmeta_run_is_deterministic() {
    assert_eq!(run_fingerprint(), run_fingerprint());
}

#[test]
fn fsmeta_matches_the_golden_fingerprint() {
    let got = run_fingerprint();
    if std::env::var("O2_PRINT_FINGERPRINTS").is_ok() {
        println!("fsmeta fingerprint: {got:#018x}");
    }
    assert_eq!(
        got, GOLDEN_FINGERPRINT,
        "fsmeta behaviour changed; if intentional, re-capture with \
         O2_PRINT_FINGERPRINTS=1"
    );
}
