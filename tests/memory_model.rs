//! Golden equivalence tests for the memory-system fast path.
//!
//! The flat-directory / flat-cache refactor must be *invisible* to the
//! model: hit/miss/eviction sequences and every per-core counter have to
//! be bit-for-bit identical to the pre-refactor `HashMap`-based
//! implementation. Exactly as `tests/event_scheduler.rs` pins the engine
//! refactor with a golden fingerprint, these tests pin the memory system:
//! the constants below were captured from the pre-refactor model (global
//! `HashMap` directory, `Vec<Vec<Way>>` caches, modulo set indexing) and
//! the refactored model must reproduce them exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_suite::sim::{AccessKind, AccessOutcome, ContentionModel, Machine, MachineConfig};

/// FNV-1a fold, same shape as the engine golden test.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn mix_outcome(&mut self, cost: u64, out: AccessOutcome) {
        self.mix(cost);
        let tag = match out {
            AccessOutcome::L1Hit => 1,
            AccessOutcome::L2Hit => 2,
            AccessOutcome::L3Hit => 3,
            AccessOutcome::RemoteCache { hops, streamed } => {
                0x10 | u64::from(hops) << 8 | u64::from(streamed) << 16
            }
            AccessOutcome::Dram { hops, streamed } => {
                0x20 | u64::from(hops) << 8 | u64::from(streamed) << 16
            }
        };
        self.mix(tag);
    }
    fn mix_machine(&mut self, m: &Machine) {
        for core in 0..m.config().total_cores() {
            let c = m.counters(core);
            for v in [
                c.busy_cycles,
                c.l1_hits,
                c.l1_misses,
                c.l2_hits,
                c.l2_misses,
                c.l3_hits,
                c.l3_misses,
                c.remote_cache_loads,
                c.dram_loads,
                c.invalidations_sent,
                c.invalidations_received,
                c.interconnect_messages,
            ] {
                self.mix(v);
            }
        }
        // Pin the *contents* of every cache, not just the counters, so a
        // divergent eviction decision cannot cancel out. Sorted: iteration
        // order over a cache is representation-defined, residency is not.
        for core in 0..m.config().total_cores() {
            let mut l1 = m.l1_lines(core);
            l1.sort_unstable();
            let mut l2 = m.l2_lines(core);
            l2.sort_unstable();
            self.mix(l1.len() as u64);
            for l in l1 {
                self.mix(l);
            }
            self.mix(l2.len() as u64);
            for l in l2 {
                self.mix(l);
            }
        }
        for chip in 0..m.config().chips {
            let mut l3 = m.l3_lines(chip);
            l3.sort_unstable();
            self.mix(l3.len() as u64);
            for l in l3 {
                self.mix(l);
            }
        }
    }
}

/// A seeded access storm on the paper's 16-core machine: private working
/// sets (L1-friendly), a shared read-mostly region, a write-shared line set
/// (invalidation traffic), and sequential sweeps large enough to force L2
/// and L3 evictions. Every (cost, outcome) pair is folded into the
/// fingerprint, so the hit/miss/eviction *sequence* is pinned, not just the
/// totals.
fn run_storm(cfg: MachineConfig, seed: u64, accesses: usize) -> (u64, Machine) {
    let mut m = Machine::new(cfg);
    let cores = m.config().total_cores();
    let private: Vec<_> = (0..cores)
        .map(|c| m.memory_mut().alloc(32 * 1024, u64::from(c)))
        .collect();
    let shared = m.memory_mut().alloc(256 * 1024, 100);
    let hot = m.memory_mut().alloc(64 * 8, 101);
    // Sized to overflow the private L2 but fit the chip L3s, so L2 victims
    // are re-touched in the L3 (victim-cache hits) as well as evicted.
    let sweep = m.memory_mut().alloc(1024 * 1024, 102);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut fp = Fingerprint::new();
    let mut i = 0usize;
    while i < accesses {
        let core = rng.gen_range(0..cores);
        m.set_time_hint((i as u64) * 50);
        match rng.gen_range(0u8..10) {
            // Private-set reads and writes: the L1-hit regime.
            0..=3 => {
                let r = &private[core as usize];
                let off = rng.gen_range(0..r.size - 64);
                let kind = if rng.gen_range(0u8..4) == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let line = m.line_of(r.addr + off);
                let (cost, out) = m.access_line(core, line, kind);
                fp.mix_outcome(cost, out);
                i += 1;
            }
            // Shared read-mostly region.
            4..=5 => {
                let off = rng.gen_range(0..shared.size - 64);
                let line = m.line_of(shared.addr + off);
                let (cost, out) = m.access_line(core, line, AccessKind::Read);
                fp.mix_outcome(cost, out);
                i += 1;
            }
            // Hot write-shared lines: ping-pong + invalidations.
            6..=7 => {
                let off = 64 * rng.gen_range(0..8u64);
                let line = m.line_of(hot.addr + off);
                let kind = if rng.gen_range(0u8..2) == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let (cost, out) = m.access_line(core, line, kind);
                fp.mix_outcome(cost, out);
                i += 1;
            }
            // Sequential sweep chunk through the multi-line `access` path:
            // streams, DRAM fills, capacity evictions.
            _ => {
                let start = rng.gen_range(0..sweep.size - 4096);
                let cost = m.access(core, sweep.addr + start, 2048, AccessKind::Read);
                fp.mix(cost);
                i += 32;
            }
        }
    }
    fp.mix_machine(&m);
    (fp.0, m)
}

/// Golden fingerprints captured from the pre-refactor memory model
/// (commit with `HashMap` directory + `Vec<Vec<Way>>` caches). The
/// refactored fast path must reproduce them bit-for-bit.
const GOLDEN_AMD16: u64 = 0xb9d5_b778_d665_7861;
const GOLDEN_AMD16_CONTENTION: u64 = 0x6b2c_72bd_7160_ffff;
const GOLDEN_QUAD4: u64 = 0x13b0_8984_31a3_5320;

#[test]
fn storm_amd16_matches_pre_refactor_model() {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let (fp, m) = run_storm(cfg, 0x51ab_0001, 60_000);
    println!("amd16 fingerprint=0x{fp:016x}");
    // Sanity: the storm exercised the hierarchy broadly (the paper-sized
    // L2 is too large for victim-L3 hits here; the quad4 storm covers those).
    let agg = m.snapshot_counters().aggregate();
    assert!(agg.l1_hits > 0 && agg.l2_hits > 0);
    assert!(agg.remote_cache_loads > 0 && agg.dram_loads > 0);
    assert!(agg.invalidations_sent > 0);
    assert_eq!(fp, GOLDEN_AMD16);
}

#[test]
fn storm_with_contention_matches_pre_refactor_model() {
    let (fp, _) = run_storm(MachineConfig::amd16(), 0x51ab_0002, 40_000);
    println!("amd16+contention fingerprint=0x{fp:016x}");
    assert_eq!(fp, GOLDEN_AMD16_CONTENTION);
}

#[test]
fn storm_quad4_matches_pre_refactor_model() {
    let mut cfg = MachineConfig::quad4();
    cfg.contention = ContentionModel::None;
    // Tiny caches: maximum eviction pressure per access.
    cfg.l1 = o2_suite::sim::CacheGeometry::new(2 * 1024, 2);
    cfg.l2 = o2_suite::sim::CacheGeometry::new(8 * 1024, 4);
    cfg.l3 = o2_suite::sim::CacheGeometry::new(64 * 1024, 8);
    let (fp, m) = run_storm(cfg, 0x51ab_0003, 40_000);
    println!("quad4 fingerprint=0x{fp:016x}");
    // Every tier fires here, including victim-L3 hits.
    let agg = m.snapshot_counters().aggregate();
    assert!(agg.l1_hits > 0 && agg.l2_hits > 0 && agg.l3_hits > 0);
    assert!(agg.dram_loads > 0 && agg.invalidations_sent > 0);
    assert_eq!(fp, GOLDEN_QUAD4);
}

/// Same config + seed twice → identical run (no hidden state in the
/// directory or caches).
#[test]
fn storm_is_deterministic() {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let (a, _) = run_storm(cfg.clone(), 7, 10_000);
    let (b, _) = run_storm(cfg, 7, 10_000);
    assert_eq!(a, b);
}
