//! The fault plane end-to-end.
//!
//! Six contracts:
//!
//! * an **empty plan is free**: a run with `FaultPlan::empty()` installed
//!   is bit-identical to one where the fault plane was never touched;
//! * a **faulted run is deterministic**: the same seed and plan produce
//!   the same fingerprint under all three event cores and across matrix
//!   worker counts (`--jobs 1` vs `--jobs 4`);
//! * **offlining drains and re-homes**: after a core goes down, CoreTime
//!   re-homes every object it held (none stranded) and the engine
//!   re-pins the core's threads;
//! * a **lossy interconnect retries**: migration sends over a degraded
//!   link retry with backoff and the retries are counted;
//! * a **slow core costs throughput**: a slowdown window strictly reduces
//!   completed work;
//! * a **golden seeded storm** is pinned end-to-end by fingerprint.

use o2_suite::experiments::{
    render_json, run_matrix, CellResult, PolicyKind, Scenario, SeriesDef, SweepPoint,
};
use o2_suite::prelude::*;
use o2_suite::runtime::{EventCoreKind, NullPolicy, RepeatBehaviour};
use o2_suite::sim::FaultPlan;

/// Folds every per-core counter of the machine plus the engine totals into
/// one FNV-1a fingerprint, so "bit-for-bit identical" is one comparison.
fn fingerprint(engine: &Engine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(engine.total_ops());
    mix(engine.max_clock());
    mix(engine.min_clock());
    mix(engine.locks().total_acquisitions());
    mix(engine.locks().total_contention());
    let stats = engine.sched_stats();
    for v in [
        stats.events_processed,
        stats.faults_applied,
        stats.cores_offlined,
        stats.cores_slowed,
        stats.migration_retries,
        stats.migration_failures,
        stats.threads_repinned,
        stats.recovery_cycles,
    ] {
        mix(v);
    }
    let n = engine.machine().config().total_cores();
    for core in 0..n {
        let c = engine.machine().counters(core);
        for v in [
            c.busy_cycles,
            c.l1_hits,
            c.l1_misses,
            c.l2_hits,
            c.l2_misses,
            c.l3_hits,
            c.l3_misses,
            c.remote_cache_loads,
            c.dram_loads,
            c.invalidations_sent,
            c.invalidations_received,
            c.interconnect_messages,
            c.migrations_in,
            c.migrations_out,
            c.operations_completed,
        ] {
            mix(v);
        }
        mix(engine.core_clock(core));
    }
    h
}

/// A small faulted lookup experiment on the quad-core machine: warm up,
/// then measure with the given plan active.
fn faulted_experiment(policy: PolicyKind, plan: FaultPlan, kind: EventCoreKind) -> Experiment {
    let mut spec = WorkloadSpec::paper_default(16);
    spec.machine = MachineConfig::quad4();
    spec.runtime = spec.runtime.with_event_core(kind);
    spec.warmup_ops = 600;
    spec.measure_cycles = 1_500_000;
    spec.seed = 0xFA_17;
    spec.fault_plan = plan;
    let boxed = policy.build(&spec.machine);
    Experiment::build(spec, boxed)
}

/// The storm used by the determinism tests: a slowdown window, a lossy
/// window, and one offlining, all inside the measurement window.
fn storm() -> FaultPlan {
    FaultPlan::empty()
        .slow_core(400_000, 1, 500, 600_000)
        .degrade_interconnect(500_000, 200, 30, 500_000)
        .offline_core(900_000, 2)
        .with_seed(0xDEAD_BEEF)
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    let build = |install: bool| {
        let machine = Machine::new(MachineConfig::quad4());
        let mut engine = Engine::new(machine, Box::new(NullPolicy), RuntimeConfig::default());
        if install {
            engine.set_fault_plan(&FaultPlan::empty());
        }
        let op = OpBuilder::annotated(0x1000)
            .compute(400)
            .read(0x2000, 2048)
            .finish();
        for core in 0..4 {
            engine.spawn(core, Box::new(RepeatBehaviour::new(op.clone(), Some(200))));
        }
        engine.run_until_cycles(2_000_000);
        engine
    };
    let untouched = build(false);
    let with_empty_plan = build(true);
    assert_eq!(fingerprint(&untouched), fingerprint(&with_empty_plan));
    assert_eq!(untouched.sched_stats(), with_empty_plan.sched_stats());
    assert_eq!(with_empty_plan.sched_stats().faults_applied, 0);
}

#[test]
fn faulted_run_is_identical_across_event_cores() {
    let fp = |kind| {
        let mut exp = faulted_experiment(PolicyKind::CoreTime, storm(), kind);
        let m = exp.run();
        (fingerprint(exp.engine()), m.window.ops)
    };
    let wheel = fp(EventCoreKind::Wheel);
    let heap = fp(EventCoreKind::Heap);
    let cycle_box = fp(EventCoreKind::CycleBox);
    assert_eq!(wheel, heap, "wheel vs heap diverged under faults");
    assert_eq!(wheel, cycle_box, "wheel vs cycle box diverged under faults");
    assert!(wheel.1 > 0, "the faulted run completed no operations");
}

/// An inline fig_fault-style scenario small enough for a test: two
/// policies, two fault schedules, real `Experiment` cells.
fn small_fault_scenario() -> Scenario {
    Scenario {
        name: "small_fault",
        title: "Small fault scenario (test only)",
        description: "fault-plane runner determinism test scenario",
        x_label: "Fault schedule",
        params: Vec::new(),
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points: vec![
            SweepPoint::ordinal(0, 0, "offline core 2"),
            SweepPoint::ordinal(1, 1, "slow core 1"),
        ],
        payload: 0,
        run: |sc, se, pt, seed| {
            let mut spec = WorkloadSpec::paper_default(16);
            spec.machine = MachineConfig::quad4();
            spec.warmup_ops = 300;
            spec.measure_cycles = 600_000;
            spec.seed = seed;
            spec.fault_plan = match sc.points[pt].value {
                0 => FaultPlan::empty().offline_core(400_000, 2),
                _ => FaultPlan::empty().slow_core(300_000, 1, 400, 0),
            };
            let policy = sc.series[se].policy.unwrap().build(&spec.machine);
            let m = Experiment::build(spec, policy).run();
            CellResult::point(sc.points[pt].x, m.kres_per_sec())
        },
        summarize: None,
    }
}

#[test]
fn fault_matrix_is_identical_across_worker_counts() {
    let serial = run_matrix(&[small_fault_scenario()], 1);
    let parallel = run_matrix(&[small_fault_scenario()], 4);
    assert_eq!(render_json(&serial), render_json(&parallel));
    for series in &serial.scenarios[0].series {
        for &(_, y) in &series.points {
            assert!(y > 0.0, "empty cell in {}", series.label);
        }
    }
}

#[test]
fn offlining_rehomes_every_object_and_repins_threads() {
    let plan = FaultPlan::empty().offline_core(700_000, 2);
    let mut exp = faulted_experiment(PolicyKind::CoreTime, plan, EventCoreKind::Wheel);
    let m = exp.run();
    assert!(m.window.ops > 0);
    let engine = exp.engine();
    assert!(engine.core_offline(2));
    let stats = engine.sched_stats();
    assert_eq!(stats.cores_offlined, 1);
    assert!(
        stats.threads_repinned >= 1,
        "the dead core's thread was not re-pinned"
    );
    assert!(stats.recovery_cycles > 0);
    // CoreTime re-homed every object the dead core held: the counters
    // account for all of them and none were stranded.
    let fs = engine.policy().fault_stats();
    assert_eq!(fs.core_down_events, 1);
    assert!(
        fs.objects_rehomed > 0,
        "no objects re-homed off the dead core"
    );
    assert_eq!(fs.objects_stranded, 0, "objects stranded after offlining");
}

#[test]
fn lossy_interconnect_retries_migration_sends() {
    let plan = FaultPlan::empty()
        .degrade_interconnect(0, 300, 40, 0)
        .with_seed(7);
    let mut exp = faulted_experiment(PolicyKind::CoreTime, plan, EventCoreKind::Wheel);
    let m = exp.run();
    assert!(m.window.ops > 0);
    let stats = exp.engine().sched_stats();
    assert!(
        stats.migration_retries > 0,
        "no migration was ever retried over a 30%-loss link"
    );
    assert!(exp.engine().machine().interconnect_stats().migrations_lost > 0);
}

#[test]
fn slowdown_window_reduces_throughput() {
    let healthy = faulted_experiment(
        PolicyKind::ThreadScheduler,
        FaultPlan::empty(),
        EventCoreKind::Wheel,
    )
    .run()
    .window
    .ops;
    let slowed = faulted_experiment(
        PolicyKind::ThreadScheduler,
        FaultPlan::empty().slow_core(0, 1, 800, 0),
        EventCoreKind::Wheel,
    )
    .run()
    .window
    .ops;
    assert!(
        slowed < healthy,
        "an 8x slowdown on core 1 did not reduce throughput ({slowed} vs {healthy})"
    );
}

/// Golden end-to-end fingerprint of one seeded fault storm. If this
/// changes, the fault plane's virtual-time behaviour changed — either
/// revert or deliberately re-capture (see `tests/event_scheduler.rs` for
/// the policy on golden values).
const GOLDEN_STORM_FINGERPRINT: u64 = 0x0bef_47cf_947e_e4a1;
const GOLDEN_STORM_OPS: u64 = 1042;

#[test]
fn golden_seeded_storm_is_pinned() {
    let plan = FaultPlan::seeded_storm(0xC0FF_EE00, 4, 400_000, 300_000);
    let mut exp = faulted_experiment(PolicyKind::CoreTime, plan, EventCoreKind::Wheel);
    exp.run();
    let engine = exp.engine();
    assert!(engine.sched_stats().faults_applied > 0);
    assert_eq!(
        (fingerprint(engine), engine.total_ops()),
        (GOLDEN_STORM_FINGERPRINT, GOLDEN_STORM_OPS),
        "seeded storm diverged from the golden run"
    );
}
