//! # o2-suite — umbrella crate for the CoreTime / O2-scheduler reproduction
//!
//! Re-exports every crate of the workspace so that examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`collections`] — the shared flat-table primitives (open-addressed
//!   `FlatTable`, dense-id `Interner`, `Slab`),
//! * [`sim`] — the multicore cache-hierarchy simulator (the "AMD machine"),
//! * [`runtime`] — the cooperative runtime with operation migration,
//! * [`coretime`] — the O2 scheduler itself (the paper's contribution),
//! * [`fs`] — the EFSL-style in-memory FAT file system,
//! * [`native`] — the real-threads runtime: pinned `std::thread` workers
//!   exchanging op migrations over SPSC rings, driven by the same
//!   policies the simulator uses,
//! * [`workloads`] — the benchmark workloads and experiment assembly,
//! * [`baseline`] — comparator schedulers,
//! * [`metrics`] — statistics and report rendering,
//! * [`experiments`] — the experiment matrix: scenario registry and the
//!   parallel sharded runner behind the `o2` driver binary.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory
//! (including the event-queue engine design note).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use o2_baseline as baseline;
pub use o2_collections as collections;
pub use o2_core as coretime;
pub use o2_experiments as experiments;
pub use o2_fs as fs;
pub use o2_metrics as metrics;
pub use o2_native as native;
pub use o2_runtime as runtime;
pub use o2_sim as sim;
pub use o2_workloads as workloads;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use o2_baseline::{StaticPartition, ThreadClustering, ThreadScheduler};
    pub use o2_core::{CoreTime, CoreTimeConfig, O2Policy};
    pub use o2_fs::{LookupCost, Volume};
    pub use o2_metrics::{Report, Series, SeriesTable};
    pub use o2_runtime::{Action, Engine, ObjectDescriptor, OpBuilder, RuntimeConfig, SchedPolicy};
    pub use o2_sim::{AccessKind, Machine, MachineConfig};
    pub use o2_workloads::{Experiment, Measurement, Popularity, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let cfg = MachineConfig::amd16();
        assert_eq!(cfg.total_cores(), 16);
        let _ = CoreTimeConfig::default();
        let _ = RuntimeConfig::default();
    }
}
