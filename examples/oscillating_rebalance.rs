//! The Figure 4(b) scenario in miniature: the set of directories the
//! application actually uses oscillates between all of them and a
//! sixteenth of them, and CoreTime's counter-driven rebalancer follows the
//! shift.
//!
//! Run with `cargo run --release --example oscillating_rebalance`.

use o2_suite::prelude::*;

fn run(label: &str, policy: Box<dyn SchedPolicy>) -> f64 {
    let mut spec = WorkloadSpec::for_total_kb(8192).oscillating();
    spec.warmup_ops = 4_000;
    spec.measure_cycles = 4_000_000;
    let mut experiment = Experiment::build(spec, policy);
    let m = experiment.run();
    println!(
        "{label:<20} {:>8.0}k resolutions/s   (operation migrations over the run: {})",
        m.kres_per_sec(),
        m.migrations
    );
    m.kres_per_sec()
}

fn main() {
    println!(
        "Oscillating popularity: 8 MB of directories, the active set shrinks to 1/16\n\
         and rotates every 400 operations per thread.\n"
    );
    let machine = MachineConfig::amd16();
    let without = run("Without CoreTime:", Box::new(ThreadScheduler::new()));
    let with = run("With CoreTime:", CoreTime::policy(&machine));
    let static_partition = run(
        "Static partition:",
        Box::new(StaticPartition::new(machine.total_cores())),
    );
    println!(
        "\nCoreTime vs thread scheduler: {:.2}x; CoreTime vs static partitioning: {:.2}x.",
        with / without.max(1e-9),
        with / static_partition.max(1e-9)
    );
    println!(
        "Static partitioning has no monitoring, so it cannot react when the hot set\n\
         concentrates on a few owners; CoreTime's rebalancer and pathology detector do."
    );
}
