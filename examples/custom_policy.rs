//! Writing your own scheduling policy.
//!
//! The runtime consults a `SchedPolicy` at `ct_start`, `ct_end` and every
//! epoch; CoreTime is one implementation, the baselines are others. This
//! example implements a tiny "hash placement" policy — every object is
//! deterministically assigned to `hash(object) % cores` with no
//! monitoring at all — and compares it against CoreTime and the thread
//! scheduler on the paper's uniform lookup workload.
//!
//! Run with `cargo run --release --example custom_policy`.

use o2_suite::prelude::*;
use o2_suite::runtime::{OpContext, Placement};

/// Assigns every operation to `hash(object) % cores`, unconditionally.
struct HashPlacement {
    cores: u32,
}

impl SchedPolicy for HashPlacement {
    fn name(&self) -> &'static str {
        "hash-placement"
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        // A multiplicative hash of the object's address keeps neighbouring
        // directories apart.
        let target = ((ctx.object_key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33)
            % u64::from(self.cores)) as u32;
        if target == ctx.core {
            Placement::Local
        } else {
            Placement::On(target)
        }
    }
}

fn run(label: &str, policy: Box<dyn SchedPolicy>) -> f64 {
    let mut spec = WorkloadSpec::for_total_kb(8192);
    spec.warmup_ops = 3_000;
    spec.measure_cycles = 3_000_000;
    let mut experiment = Experiment::build(spec, policy);
    let m = experiment.run();
    println!("{label:<22} {:>8.0}k resolutions/s", m.kres_per_sec());
    m.kres_per_sec()
}

fn main() {
    println!("Custom policy comparison: 8 MB of directories, uniform lookups\n");
    let machine = MachineConfig::amd16();
    let without = run("Without CoreTime:", Box::new(ThreadScheduler::new()));
    let hashed = run(
        "Hash placement:",
        Box::new(HashPlacement {
            cores: machine.total_cores(),
        }),
    );
    let with = run("With CoreTime:", CoreTime::policy(&machine));
    println!(
        "\nHash placement gets {:.2}x over the baseline just by partitioning objects;\n\
         CoreTime gets {:.2}x and additionally only migrates operations whose objects\n\
         are actually expensive to fetch (and rebalances when load shifts).",
        hashed / without.max(1e-9),
        with / without.max(1e-9)
    );
}
