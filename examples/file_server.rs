//! A web/file-server style workload: every "request" resolves a
//! multi-component path (hot root directories, then a large set of leaf
//! directories), the scenario the paper's introduction motivates with
//! multicore web servers.
//!
//! Run with `cargo run --release --example file_server`.

use std::rc::Rc;

use o2_suite::prelude::*;
use o2_suite::runtime::OpBehaviour;
use o2_suite::workloads::{DirectorySet, PathLookupGen};

/// Builds the machine, the volume and one path-resolving thread per core
/// under the given policy, and returns throughput in requests per second.
fn serve(label: &str, policy: Box<dyn SchedPolicy>) -> f64 {
    let machine_cfg = MachineConfig::amd16();
    let mut machine = Machine::new(machine_cfg.clone());

    // 8 hot root directories plus 248 leaf directories, ~8 MB of entries.
    let mut volume = Volume::build_benchmark(256, 1000).expect("volume");
    volume.map_into(machine.memory_mut());

    let mut engine = Engine::new(machine, policy, RuntimeConfig::default());
    let mut locks = Vec::new();
    for dir in volume.directories() {
        let lock = engine.register_lock(dir.lock_addr);
        engine.register_object(o2_suite::fs::directory_descriptor(dir, lock));
        locks.push(lock);
    }
    let dirs = Rc::new(DirectorySet {
        dirs: volume.directories().cloned().collect(),
        locks,
    });

    for core in 0..machine_cfg.total_cores() {
        let gen = PathLookupGen::new(
            Rc::clone(&dirs),
            LookupCost::default(),
            8, // hot root directories
            3, // components per path
            1000 + u64::from(core),
            None,
        );
        engine.spawn(core, Box::new(OpBehaviour::new(gen)));
    }

    // Warm up, then measure.
    engine.run_until_ops(4_000);
    let window = engine.run_window(3_000_000);
    // Three lookups per request.
    let requests_per_sec = window.ops_per_second() / 3.0;
    println!(
        "{label:<22} {requests_per_sec:>12.0} requests/second  \
         ({:.0}k lookups/s, load imbalance {:.2})",
        window.kops_per_second(),
        window.load_imbalance()
    );
    requests_per_sec
}

fn main() {
    println!(
        "Path resolution: 16 cores, /root(8 dirs)/leaf(248 dirs)/file, 3 lookups per request\n"
    );
    let machine_cfg = MachineConfig::amd16();
    let without = serve("Without CoreTime:", Box::new(ThreadScheduler::new()));
    let with = serve("With CoreTime:", CoreTime::policy(&machine_cfg));
    let with_ext = serve(
        "CoreTime+extensions:",
        CoreTime::policy_with_extensions(&machine_cfg),
    );
    println!(
        "\nSpeedup over the thread scheduler: {:.2}x (CoreTime), {:.2}x (with §6.2 extensions: \
         clustering + replication of the hot roots)",
        with / without.max(1e-9),
        with_ext / without.max(1e-9)
    );
}
