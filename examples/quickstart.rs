//! Quickstart: the Section 2 worked example.
//!
//! Four cores, twenty directories of 1,000 entries each — a working set
//! larger than any single core's cache. A traditional thread scheduler
//! leaves each core to cache whatever it happens to touch; the O2
//! scheduler (CoreTime) assigns each directory to a specific core and
//! migrates each search to the core that caches its directory.
//!
//! Run with `cargo run --release --example quickstart`.

use o2_suite::prelude::*;

fn run(label: &str, policy: Box<dyn SchedPolicy>) -> Measurement {
    let mut spec = WorkloadSpec::paper_default(20);
    spec.machine = MachineConfig::quad4();
    spec.warmup_ops = 4_000;
    spec.measure_cycles = 2_000_000;
    let mut experiment = Experiment::build(spec, policy);
    let measurement = experiment.run();
    println!(
        "{label:<22} {:>8.0} thousand resolutions/second ({} operations measured)",
        measurement.kres_per_sec(),
        measurement.window.ops
    );
    measurement
}

fn main() {
    println!("Directory lookups: 4 cores, 20 directories x 1000 entries x 32 bytes\n");

    let spec = WorkloadSpec::paper_default(20);
    let without = run("Without CoreTime:", Box::new(ThreadScheduler::new()));
    let with = run("With CoreTime:", CoreTime::policy(&MachineConfig::quad4()));

    let speedup = with.kres_per_sec() / without.kres_per_sec().max(1e-9);
    println!(
        "\nCoreTime / thread-scheduler throughput ratio: {speedup:.2}x \
         (total data {:.0} KB, one core's L2 is {} KB)",
        spec.total_kb(),
        MachineConfig::quad4().l2.size_bytes / 1024
    );
    println!(
        "The working set does not fit one core's cache, so assigning directories to\n\
         caches and moving searches to them beats moving the data to the threads."
    );
}
