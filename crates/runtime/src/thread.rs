//! Thread control blocks and per-thread statistics.

use std::collections::VecDeque;

use crate::action::Action;
use crate::behaviour::ThreadBehaviour;
use crate::types::{CoreId, Cycles, DenseObjectId, ThreadId};
use o2_sim::{AccessKind, CoreCounters};

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable (queued or currently running on some core).
    Runnable,
    /// In transit between cores: saved in the shared migration buffer,
    /// waiting for the destination core to poll it.
    Migrating,
    /// Asleep on a contended lock (only with `RuntimeConfig::blocking_locks`);
    /// the holder's release makes it runnable again.
    Blocked,
    /// Asleep on an [`Action::IdleUntil`] until a target cycle; the owning
    /// core wakes it when its clock reaches the target.
    Sleeping,
    /// Finished (`Action::Exit`).
    Done,
}

/// The operation a thread is currently inside (between `ct_start` and
/// `ct_end`).
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// The object named at `ct_start`, as a dense id from the engine's
    /// object index.
    pub object: DenseObjectId,
    /// The access kind declared at `ct_start` (read or write), replayed to
    /// the policy at `ct_end`.
    pub kind: AccessKind,
    /// The core the operation is executing on.
    pub exec_core: CoreId,
    /// Local clock of the executing core when the operation began.
    pub started_at: Cycles,
    /// Counter snapshot of the executing core at operation start, used to
    /// attribute cache misses to the object.
    pub counter_base: CoreCounters,
    /// Whether the counter base still needs to be (re)captured when the
    /// thread lands on the executing core (set when the operation migrated).
    pub counter_base_pending: bool,
    /// Whether the operation was migrated away from the thread's previous
    /// core.
    pub migrated: bool,
}

/// Per-thread statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Operations (annotated regions) completed.
    pub ops_completed: u64,
    /// Operation migrations performed (outbound, at `ct_start`).
    pub migrations: u64,
    /// Returns to the home core after `ct_end`.
    pub returns_home: u64,
    /// Cycles spent waiting for spin locks.
    pub lock_wait_cycles: u64,
    /// Cycles spent in migration (save + transfer + poll wait + restore).
    pub migration_cycles: u64,
    /// Total actions executed.
    pub actions_executed: u64,
}

/// A runtime thread: behaviour plus bookkeeping.
pub struct Thread {
    /// The thread's identifier.
    pub id: ThreadId,
    /// The core the thread considers home (where it was spawned, or where a
    /// rehome command moved it).
    pub home_core: CoreId,
    /// The thread's code.
    pub behaviour: Box<dyn ThreadBehaviour>,
    /// Lifecycle state.
    pub state: ThreadState,
    /// The operation currently in progress, if any.
    pub current_op: Option<OpRecord>,
    /// Set when a rehome command arrived while the thread was running; the
    /// engine moves the thread to its (new) home core at the next safe
    /// point (`ct_end`).
    pub rehome_pending: bool,
    /// Actions fetched from the behaviour but not yet executed (used to
    /// retry lock acquisitions and to resume after migration).
    pub deferred: VecDeque<Action>,
    /// Per-thread statistics.
    pub stats: ThreadStats,
}

impl Thread {
    /// Creates a runnable thread homed on `home_core`.
    pub fn new(id: ThreadId, home_core: CoreId, behaviour: Box<dyn ThreadBehaviour>) -> Self {
        Self {
            id,
            home_core,
            behaviour,
            state: ThreadState::Runnable,
            current_op: None,
            rehome_pending: false,
            deferred: VecDeque::new(),
            stats: ThreadStats::default(),
        }
    }

    /// Whether the thread is inside an annotated operation.
    pub fn in_operation(&self) -> bool {
        self.current_op.is_some()
    }

    /// Whether the thread has exited.
    pub fn is_done(&self) -> bool {
        self.state == ThreadState::Done
    }

    /// Pushes an action to the front of the deferred queue (it will be the
    /// next action executed).
    pub fn defer_front(&mut self, action: Action) {
        self.deferred.push_front(action);
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("id", &self.id)
            .field("home_core", &self.home_core)
            .field("state", &self.state)
            .field("in_operation", &self.in_operation())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviour::FixedBehaviour;

    #[test]
    fn new_thread_is_runnable_and_not_in_op() {
        let t = Thread::new(0, 2, Box::new(FixedBehaviour::new(vec![])));
        assert_eq!(t.state, ThreadState::Runnable);
        assert!(!t.in_operation());
        assert!(!t.is_done());
        assert_eq!(t.home_core, 2);
    }

    #[test]
    fn defer_front_orders_actions() {
        let mut t = Thread::new(0, 0, Box::new(FixedBehaviour::new(vec![])));
        t.defer_front(Action::Compute(1));
        t.defer_front(Action::Compute(2));
        assert_eq!(t.deferred.pop_front(), Some(Action::Compute(2)));
        assert_eq!(t.deferred.pop_front(), Some(Action::Compute(1)));
    }

    #[test]
    fn debug_output_mentions_state() {
        let t = Thread::new(3, 1, Box::new(FixedBehaviour::new(vec![])));
        let s = format!("{t:?}");
        assert!(s.contains("Runnable"));
        assert!(s.contains("home_core"));
    }
}
