//! Hierarchical timing wheel: the engine's event queue.
//!
//! The engine's event horizon is short and dense — a busy core re-arms a
//! few hundred cycles ahead, migrations land ~1000 cycles out, epochs and
//! quanta a few tens of thousands — exactly the regime where a bucketed
//! wheel beats a comparison heap: insertion is O(1) bucket addressing
//! instead of O(log n) sift, and finding the next event is a bitmap scan
//! that covers 64 slots per machine word.
//!
//! The levels are deliberately *asymmetric*: level 0 spans a 4096-cycle
//! window — wide enough that the common re-arms above (action costs,
//! lock hand-offs, migration round-trips) file straight into their final
//! slot and never cascade — while two coarser 256-slot levels extend the
//! span to [`WHEEL_HORIZON`] cycles for quantum- and epoch-scale wakes.
//! Level-0 slots hold an 8-cycle *chunk* rather than a single cycle:
//! drained chunks are sorted before dispatch, so ordering is still exact
//! while the slot array is an eighth the size and stays hot in host
//! cache. Entries beyond the horizon wait in an ordered overflow set and
//! are folded back in when the cursor reaches them. Each occupied
//! level-0 slot is drained into a *staged batch*, sorted by
//! `(cycle, core)` — so same-cycle events dispatch back-to-back without
//! re-touching the wheel between pops, and the pop order is exactly the
//! ascending `(cycle, core)` order the engine's original `BinaryHeap`
//! produced.
//!
//! The staged batch doubles as the wheel's front buffer: `peek` may
//! advance the internal cursor ahead of what the caller actually pops
//! (the engine peeks the frontier for its epoch gate), and a later push
//! at or below the cursor — legal as long as it is not below the last
//! popped entry — is merge-inserted into the batch at its correct
//! `(cycle, core)` position instead of being lost behind the cursor.

use std::collections::BTreeSet;

use crate::types::Cycles;

/// Number of cascading levels.
const LEVELS: usize = 3;
/// Bits of cycle span per level (level 0 first).
const BITS: [u32; LEVELS] = [12, 8, 8];
/// Shift from a cycle to a level's span position.
const SHIFTS: [u32; LEVELS] = [0, BITS[0], BITS[0] + BITS[1]];
/// Cycles per level-0 slot (as bits). Slots hold a *chunk* of
/// `1 << GRAN_BITS` consecutive cycles rather than a single cycle: the
/// staged batch is sorted anyway, so exact `(cycle, core)` order is
/// preserved, while the slot array shrinks by the same factor and stays
/// resident in host cache.
const GRAN_BITS: u32 = 3;
/// Low-bit mask of a level-0 chunk.
const GRAN_MASK: Cycles = (1 << GRAN_BITS) - 1;
/// Shift from a cycle to a level's slot index.
const SLOT_SHIFTS: [u32; LEVELS] = [GRAN_BITS, SHIFTS[1], SHIFTS[2]];

/// Total span the wheel levels cover ahead of the cursor; farther entries
/// go to the ordered overflow set.
pub const WHEEL_HORIZON: Cycles = 1 << (BITS[0] + BITS[1] + BITS[2]);

/// A queued event: `(wake cycle, core id)`, ordered lexicographically.
pub type WheelEntry = (Cycles, usize);

/// Telemetry counters of the wheel, surfaced through
/// [`SchedStats`](crate::stats::SchedStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// High-water mark of events resident in the wheel at once.
    pub occupancy_hwm: u64,
    /// Entries re-filed to a finer level (or staged) when the cursor
    /// crossed into a coarse slot or reached the overflow set.
    pub cascades: u64,
    /// Insertions beyond the wheel horizon (into the overflow set).
    pub overflow_inserts: u64,
    /// Largest dispatch batch staged at once.
    pub max_batch: u64,
}

/// One wheel level: an array of buckets plus an occupancy bitmap.
struct Level {
    slots: Box<[Vec<WheelEntry>]>,
    occupied: Box<[u64]>,
    /// Slot-index mask (`slots.len() - 1`).
    mask: u64,
}

impl Level {
    fn new(bits: u32) -> Self {
        let slots = 1usize << bits;
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; slots / 64].into_boxed_slice(),
            mask: slots as u64 - 1,
        }
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }

    /// The first occupied slot at index `from` or later, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let words = self.occupied.len();
        let mut w = from / 64;
        if w >= words {
            return None;
        }
        let mut word = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= words {
                return None;
            }
            word = self.occupied[w];
        }
    }
}

/// The hierarchical timing wheel.
///
/// A min-priority queue of [`WheelEntry`] values with the contract that
/// no entry is ever pushed below the last *popped* entry's cycle (virtual
/// time does not run backwards). Pops come out in ascending
/// `(cycle, core)` order, identical to a `BinaryHeap<Reverse<_>>`.
pub struct TimingWheel {
    /// Scan cursor: wheel levels and the overflow set only hold entries
    /// at cycles strictly greater than `now`; entries at or below it sit
    /// in `staged`.
    now: Cycles,
    levels: [Level; LEVELS],
    /// Entries beyond [`WHEEL_HORIZON`], ordered.
    overflow: BTreeSet<WheelEntry>,
    /// Entries in the levels plus the overflow set (excludes `staged`).
    stored: usize,
    /// The staged dispatch batch, sorted ascending by `(cycle, core)`;
    /// `staged[..pos]` were already popped.
    staged: Vec<WheelEntry>,
    pos: usize,
    stats: WheelStats,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// Creates an empty wheel with the cursor at the end of cycle 0's
    /// chunk (the cursor always rests on a chunk-end boundary; entries at
    /// or below it are staged directly).
    pub fn new() -> Self {
        Self {
            now: GRAN_MASK,
            levels: [
                Level::new(BITS[0] - GRAN_BITS),
                Level::new(BITS[1]),
                Level::new(BITS[2]),
            ],
            overflow: BTreeSet::new(),
            stored: 0,
            staged: Vec::new(),
            pos: 0,
            stats: WheelStats::default(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.stored + (self.staged.len() - self.pos)
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Telemetry counters.
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Queues `(cycle, core)`. `cycle` must not precede the last popped
    /// entry's cycle.
    #[inline]
    pub fn push(&mut self, cycle: Cycles, core: usize) {
        if cycle > self.now {
            self.place(cycle, core);
            self.stored += 1;
        } else if self.pos < self.staged.len() {
            // At or behind the cursor while a batch is staged: merge into
            // the batch at its `(cycle, core)` position. Entries before
            // `pos` were already popped and order below the new entry, so
            // the insert position is never behind `pos`.
            let i = self.pos + self.staged[self.pos..].partition_point(|&e| e < (cycle, core));
            self.staged.insert(i, (cycle, core));
            self.note_batch();
        } else {
            // Behind the cursor with the batch exhausted: restart it.
            self.staged.clear();
            self.pos = 0;
            self.staged.push((cycle, core));
            self.note_batch();
        }
        let len = self.len() as u64;
        if len > self.stats.occupancy_hwm {
            self.stats.occupancy_hwm = len;
        }
    }

    /// The minimum entry, if any. May advance the internal cursor (and
    /// cascade coarse slots) to find it; the entry is not removed.
    #[inline]
    pub fn peek(&mut self) -> Option<WheelEntry> {
        if self.ensure_batch() {
            Some(self.staged[self.pos])
        } else {
            None
        }
    }

    /// Removes and returns the minimum entry, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<WheelEntry> {
        if self.ensure_batch() {
            let e = self.staged[self.pos];
            self.pos += 1;
            Some(e)
        } else {
            None
        }
    }

    fn note_batch(&mut self) {
        let n = (self.staged.len() - self.pos) as u64;
        if n > self.stats.max_batch {
            self.stats.max_batch = n;
        }
    }

    /// Files `(cycle, core)` into the level whose granularity matches how
    /// far past the cursor it wakes, or into the overflow set. Requires
    /// `cycle > self.now`.
    #[inline]
    fn place(&mut self, cycle: Cycles, core: usize) {
        debug_assert!(cycle > self.now);
        for (l, level) in self.levels.iter_mut().enumerate() {
            let parent_shift = SHIFTS[l] + BITS[l];
            if (cycle >> parent_shift) == (self.now >> parent_shift) {
                let idx = ((cycle >> SLOT_SHIFTS[l]) & level.mask) as usize;
                level.slots[idx].push((cycle, core));
                level.set_bit(idx);
                return;
            }
        }
        self.overflow.insert((cycle, core));
        self.stats.overflow_inserts += 1;
    }

    /// Re-files one cascaded entry: inside the cursor's chunk it joins the
    /// batch being staged, otherwise it lands on a finer level.
    fn file_or_stage(&mut self, cycle: Cycles, core: usize) {
        self.stats.cascades += 1;
        if cycle <= self.now {
            self.staged.push((cycle, core));
        } else {
            self.place(cycle, core);
            self.stored += 1;
        }
    }

    /// Makes `staged[pos]` the minimum entry; returns `false` if empty.
    #[inline]
    fn ensure_batch(&mut self) -> bool {
        loop {
            if self.pos < self.staged.len() {
                return true;
            }
            if self.stored == 0 {
                return false;
            }
            // Next occupied level-0 chunk inside the cursor's window. The
            // cursor rests on a chunk-end boundary and its own chunk is
            // always already drained: level-0 entries sit in strictly
            // later chunks of the window.
            let mask0 = self.levels[0].mask;
            let from = ((self.now >> GRAN_BITS) & mask0) as usize + 1;
            if let Some(bit) = self.levels[0].next_occupied(from) {
                let window = self.now & !((1u64 << BITS[0]) - 1);
                self.now = window | ((bit as u64) << GRAN_BITS) | GRAN_MASK;
                self.staged.clear();
                self.pos = 0;
                let slot = &mut self.levels[0].slots[bit];
                self.stored -= slot.len();
                self.staged.append(slot);
                self.levels[0].clear_bit(bit);
                // A chunk covers a handful of cycles, so the batch needs
                // ordering by `(cycle, core)` (nothing to order for the
                // common single-entry slot).
                if self.staged.len() > 1 {
                    self.staged.sort_unstable();
                }
                self.note_batch();
                return true;
            }
            if !self.advance_coarse() {
                return false;
            }
        }
    }

    /// Advances the cursor to the next occupied coarse slot (cascading
    /// its entries down) or to the earliest overflow window (folding it
    /// back into the levels). Returns `false` when nothing is left.
    fn advance_coarse(&mut self) -> bool {
        debug_assert_eq!(self.pos, self.staged.len());
        self.staged.clear();
        self.pos = 0;
        for l in 1..LEVELS {
            let shift = SHIFTS[l];
            let cur = ((self.now >> shift) & self.levels[l].mask) as usize;
            if let Some(idx) = self.levels[l].next_occupied(cur + 1) {
                let parent = self.now & !((1u64 << (shift + BITS[l])) - 1);
                // Park the cursor at the end of the slot's first chunk so
                // `file_or_stage` stages exactly the entries the level-0
                // scan can no longer reach.
                self.now = parent | ((idx as u64) << shift) | GRAN_MASK;
                let entries = std::mem::take(&mut self.levels[l].slots[idx]);
                self.levels[l].clear_bit(idx);
                self.stored -= entries.len();
                for (cycle, core) in entries {
                    self.file_or_stage(cycle, core);
                }
                self.finish_stage();
                return true;
            }
        }
        if let Some(&(cycle, _)) = self.overflow.first() {
            self.now = cycle | GRAN_MASK;
            let hshift = SHIFTS[LEVELS - 1] + BITS[LEVELS - 1];
            // Fold back everything in the cursor's new horizon window. In
            // the top window of the cycle space there is no next boundary
            // (it would wrap past `u64::MAX`): fold the whole set.
            let window = cycle >> hshift;
            let keep = if window < u64::MAX >> hshift {
                self.overflow.split_off(&((window + 1) << hshift, 0))
            } else {
                BTreeSet::new()
            };
            let fold = std::mem::replace(&mut self.overflow, keep);
            self.stored -= fold.len();
            for (c, core) in fold {
                self.file_or_stage(c, core);
            }
            self.finish_stage();
            return true;
        }
        false
    }

    /// Orders entries staged directly by a cascade and records the batch.
    fn finish_stage(&mut self) {
        if !self.staged.is_empty() {
            self.staged.sort_unstable();
            self.note_batch();
        }
    }
}

impl std::fmt::Debug for TimingWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("now", &self.now)
            .field("len", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans of the three levels, used by the boundary tests below.
    const L0_SPAN: u64 = 1 << BITS[0];
    const L1_SPAN: u64 = 1 << (BITS[0] + BITS[1]);

    fn drain(w: &mut TimingWheel) -> Vec<WheelEntry> {
        let mut got = Vec::new();
        while let Some(e) = w.pop() {
            got.push(e);
        }
        assert!(w.is_empty());
        got
    }

    #[test]
    fn pops_come_out_in_cycle_core_order() {
        let mut w = TimingWheel::new();
        for &(c, id) in &[(500u64, 3usize), (10, 1), (500, 0), (70_000, 2), (10, 0)] {
            w.push(c, id);
        }
        assert_eq!(w.len(), 5);
        assert_eq!(
            drain(&mut w),
            vec![(10, 0), (10, 1), (500, 0), (500, 3), (70_000, 2)]
        );
    }

    #[test]
    fn entries_exactly_on_slot_boundaries_are_not_lost() {
        // Multiples of a level span land exactly on a coarse slot start;
        // the cascade must stage them rather than re-file them behind the
        // cursor.
        let mut w = TimingWheel::new();
        for &c in &[
            L0_SPAN,
            2 * L0_SPAN,
            L1_SPAN,
            L1_SPAN + L0_SPAN,
            WHEEL_HORIZON,
        ] {
            w.push(c, 0);
            w.push(c, 1);
        }
        let got = drain(&mut w);
        assert_eq!(
            got,
            vec![
                (L0_SPAN, 0),
                (L0_SPAN, 1),
                (2 * L0_SPAN, 0),
                (2 * L0_SPAN, 1),
                (L1_SPAN, 0),
                (L1_SPAN, 1),
                (L1_SPAN + L0_SPAN, 0),
                (L1_SPAN + L0_SPAN, 1),
                (WHEEL_HORIZON, 0),
                (WHEEL_HORIZON, 1),
            ]
        );
    }

    #[test]
    fn far_entries_overflow_and_come_back() {
        let mut w = TimingWheel::new();
        w.push(WHEEL_HORIZON * 3 + 7, 1);
        w.push(WHEEL_HORIZON * 3, 2);
        w.push(5, 0);
        assert_eq!(w.stats().overflow_inserts, 2);
        assert_eq!(w.pop(), Some((5, 0)));
        assert_eq!(w.pop(), Some((WHEEL_HORIZON * 3, 2)));
        assert_eq!(w.pop(), Some((WHEEL_HORIZON * 3 + 7, 1)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn push_below_cursor_after_peek_is_not_lost() {
        let mut w = TimingWheel::new();
        w.push(1000, 4);
        assert_eq!(w.peek(), Some((1000, 4))); // cursor advances to 1000
        w.push(100, 2); // below the cursor, above the last pop (none yet)
        w.push(1000, 1); // merges ahead of (1000, 4)
        assert_eq!(drain(&mut w), vec![(100, 2), (1000, 1), (1000, 4)]);
    }

    #[test]
    fn same_cycle_storm_is_one_batch() {
        let mut w = TimingWheel::new();
        for core in (0..16).rev() {
            w.push(L0_SPAN, core);
        }
        let got = drain(&mut w);
        assert_eq!(got.len(), 16);
        for (i, &(c, core)) in got.iter().enumerate() {
            assert_eq!((c, core), (L0_SPAN, i));
        }
        assert_eq!(w.stats().max_batch, 16);
    }

    #[test]
    fn entries_in_one_chunk_pop_in_cycle_order() {
        // Level-0 slots cover 8-cycle chunks; the staged sort must restore
        // exact `(cycle, core)` order within a chunk.
        let mut w = TimingWheel::new();
        for &(c, id) in &[(13u64, 0usize), (9, 1), (11, 0), (9, 0), (15, 3)] {
            w.push(c, id);
        }
        assert_eq!(
            drain(&mut w),
            vec![(9, 0), (9, 1), (11, 0), (13, 0), (15, 3)]
        );
    }

    #[test]
    fn common_rearm_distances_rarely_cascade() {
        // The point of the asymmetric geometry: action-cost-scale re-arms
        // file straight into level 0 and only cascade when they cross a
        // level-0 window boundary — once per window, not once per event.
        let mut w = TimingWheel::new();
        let mut now = 0u64;
        for i in 0..10_000u64 {
            w.push(now + 20 + (i * 37) % 180, (i % 16) as usize);
            now = w.pop().unwrap().0;
        }
        assert!(
            w.stats().cascades < 1_000,
            "cascades: {}",
            w.stats().cascades
        );
        assert_eq!(w.stats().overflow_inserts, 0);
    }
}
