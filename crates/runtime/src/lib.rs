//! # o2-runtime — the cooperative runtime under the O2 scheduler
//!
//! The paper's CoreTime "creates one pthread per core, tied to the core
//! with `sched_setaffinity()` [...] and provides cooperative threading
//! within each core's pthread". This crate reproduces that runtime on top
//! of the [`o2_sim`] machine model, in virtual time:
//!
//! * one virtual core per simulated core, each with its own run queue and
//!   local cycle clock, driven by an event-queue scheduler that parks
//!   idle cores ([`engine`]),
//! * cooperative threads written as action state machines
//!   ([`action`], [`behaviour`], [`thread`]),
//! * the paper's migration mechanism — save the context to a shared
//!   buffer, let the destination core poll for it, restore it there —
//!   expressed as explicit costs plus an interconnect transfer,
//! * per-object spin locks that live in simulated memory and therefore
//!   generate real coherence traffic ([`sync`]),
//! * a pluggable [`policy::SchedPolicy`] consulted at `ct_start`,
//!   `ct_end` and every epoch — CoreTime and the baseline schedulers are
//!   just different implementations of this trait.
//!
//! ## Example
//!
//! ```
//! use o2_runtime::{Action, Engine, NullPolicy, OpBuilder, RepeatBehaviour, RuntimeConfig};
//! use o2_sim::{Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::quad4());
//! let mut engine = Engine::new(machine, Box::new(NullPolicy), RuntimeConfig::default());
//! let op = OpBuilder::annotated(0x1000).compute(500).finish();
//! engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(10))));
//! engine.run_until_cycles(1_000_000);
//! assert_eq!(engine.total_ops(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod behaviour;
pub mod config;
pub mod engine;
pub mod error;
pub mod object_index;
pub mod policy;
pub mod stats;
pub mod sync;
pub mod thread;
pub mod types;
pub mod wheel;

pub use action::{Action, ObjectDescriptor};
pub use behaviour::{
    BehaviourCtx, FixedBehaviour, OpBehaviour, OpBuilder, OpGenerator, RepeatBehaviour,
    ThreadBehaviour,
};
pub use config::{EventCoreKind, RuntimeConfig};
pub use engine::Engine;
pub use error::EngineError;
pub use object_index::ObjectIndex;
// Surfaced by `ObjectIndex::try_intern`, so callers can match it without
// depending on o2-collections directly.
pub use o2_collections::IdSpaceExhausted;
pub use policy::{
    EpochView, NullPolicy, OpContext, Placement, PolicyCommand, PolicyFaultStats,
    PolicyReplicationStats, SchedPolicy, StaticPolicy,
};
pub use stats::{RunWindow, SchedStats};
pub use sync::{LockError, LockInfo, LockRegistry};
pub use thread::{OpRecord, Thread, ThreadState, ThreadStats};
pub use types::{CoreId, Cycles, DenseObjectId, LockId, ObjectId, ThreadId};
pub use wheel::{TimingWheel, WheelStats, WHEEL_HORIZON};

// Re-exported for convenience: policies receive these simulator types in
// their callbacks, fault plans are installed through the engine, and
// `ct_start` annotations carry the simulator's access kind.
pub use o2_sim::{
    AccessKind, CounterDelta, FaultEvent, FaultKind, FaultPlan, LinkDegradation, Machine, MemStats,
};
