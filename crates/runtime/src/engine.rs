//! The cooperative execution engine.
//!
//! The engine mirrors the paper's CoreTime runtime structure: one virtual
//! core per simulated core (the paper pins one pthread per core with
//! `sched_setaffinity`), cooperative threads multiplexed on each core,
//! a shared migration buffer with polling at the destination, and a
//! pluggable [`SchedPolicy`] consulted at every `ct_start`/`ct_end` and at
//! periodic epochs.
//!
//! Execution is a deterministic discrete-event simulation. A min-queue of
//! `(wake_cycle, core)` events drives the run loop: the engine always pops
//! the event with the smallest wake cycle (ties broken by the lower core
//! id, exactly the order the original smallest-clock scan produced), steps
//! that core once, and reschedules it at its returned next wake time. The
//! queue itself is selectable through [`RuntimeConfig`]'s `event_core`: a
//! hierarchical [`TimingWheel`](crate::wheel::TimingWheel) (the default —
//! O(1) bucket inserts, batched same-cycle dispatch), the previous
//! `BinaryHeap` (kept as the recorded-baseline comparator), or a
//! queue-less *cycle box* that re-scans every core's pending wake each
//! step — O(cores) per event, but trivially correct, so it doubles as a
//! lockstep debugging reference. All three produce bit-identical runs.
//! Cores with nothing to run are **parked** — they own no heap entry and
//! consume zero work per step — and are explicitly woken by thread spawns,
//! migration-inbox arrivals, lock releases (when [`RuntimeConfig`]'s
//! `blocking_locks` is enabled) and epoch boundaries. Idle time is
//! credited to parked cores in bulk when they wake, at each epoch
//! boundary, and when a run ends, so counters read exactly as if the core
//! had idled cycle by cycle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::action::{Action, ObjectDescriptor};
use crate::behaviour::{BehaviourCtx, ThreadBehaviour};
use crate::config::{EventCoreKind, RuntimeConfig};
use crate::error::EngineError;
use crate::object_index::ObjectIndex;
use crate::policy::{EpochView, OpContext, Placement, PolicyCommand, SchedPolicy};
use crate::stats::{RunWindow, SchedStats};
use crate::sync::LockRegistry;
use crate::thread::{OpRecord, Thread, ThreadState, ThreadStats};
use crate::types::{CoreId, Cycles, DenseObjectId, LockId, ObjectId, ThreadId};
use crate::wheel::TimingWheel;
use o2_metrics::LatencyRecorder;
use o2_sim::{
    AccessKind, FaultKind, FaultPlan, LinkDegradation, Machine, MachineCounters, MemStats,
};

/// Sentinel in `sched_wake` marking a parked core (no pending wake).
/// `Cycles::MAX` is unreachable as a real wake cycle.
const PARKED: Cycles = Cycles::MAX;

/// The engine's event queue, in one of the three selectable forms.
///
/// `Scan` (the cycle box) holds no state of its own: `sched_wake` *is*
/// the queue, and the engine finds the minimum by scanning it — the
/// smallest-clock lockstep idiom the event queue originally replaced.
enum EventQueue {
    Wheel(TimingWheel),
    Heap(BinaryHeap<Reverse<(Cycles, usize)>>),
    Scan,
}

impl EventQueue {
    fn push(&mut self, at: Cycles, core: usize) {
        match self {
            EventQueue::Wheel(w) => w.push(at, core),
            EventQueue::Heap(h) => h.push(Reverse((at, core))),
            EventQueue::Scan => {}
        }
    }

    /// The raw minimum entry — possibly stale. `None` in scan mode.
    fn peek(&mut self) -> Option<(Cycles, usize)> {
        match self {
            EventQueue::Wheel(w) => w.peek(),
            EventQueue::Heap(h) => h.peek().map(|&Reverse(e)| e),
            EventQueue::Scan => None,
        }
    }

    fn pop(&mut self) -> Option<(Cycles, usize)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Scan => None,
        }
    }
}

/// A thread in transit to a core's migration inbox.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    thread: ThreadId,
    ready_at: Cycles,
}

/// A thread asleep on an [`Action::IdleUntil`], waiting for its owning
/// core's clock to reach `wake_at`.
#[derive(Debug, Clone, Copy)]
struct Sleeper {
    thread: ThreadId,
    wake_at: Cycles,
}

/// Seed of the engine's service-latency sketch. Fixed (not configurable):
/// determinism requires the same compaction schedule in every run.
const OP_LATENCY_SEED: u64 = 0x6f32_5f6c_6174_656e;

/// One expanded edge of the fault plan: a window start, a window end, or
/// a permanent offlining, applied when the virtual-time frontier reaches
/// `at`. [`FaultKind`] windows with a duration expand to a start and an
/// end edge.
#[derive(Debug, Clone, Copy)]
struct FaultEdge {
    at: Cycles,
    action: FaultAction,
}

#[derive(Debug, Clone, Copy)]
enum FaultAction {
    SlowStart { core: usize, percent: u32 },
    SlowEnd { core: usize },
    Offline { core: usize },
    DegradeStart { deg: LinkDegradation },
    DegradeEnd,
}

/// Per-core scheduler state.
#[derive(Debug, Default)]
struct CoreState {
    clock: Cycles,
    run_queue: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    inbox: Vec<Incoming>,
    /// Threads sleeping on `IdleUntil` until the clock reaches their wake
    /// cycle; like the inbox, a wake-up source for a parked core.
    sleepers: Vec<Sleeper>,
    /// Background replica fills queued by [`PolicyCommand::FillReplica`],
    /// drained one object per step whenever the core has nothing
    /// runnable. Cleared at every epoch boundary: a fill the core never
    /// found an idle gap for is superseded by the next epoch's plan.
    fill_queue: VecDeque<DenseObjectId>,
    quantum_used: Cycles,
}

/// The cooperative runtime engine.
pub struct Engine {
    machine: Machine,
    cfg: RuntimeConfig,
    cores: Vec<CoreState>,
    threads: Vec<Thread>,
    /// Where each thread currently lives (core whose queue/current/inbox
    /// holds it); `None` once the thread is done.
    locations: Vec<Option<CoreId>>,
    locks: LockRegistry,
    policy: Box<dyn SchedPolicy>,
    /// Interns sparse object keys into dense ids and holds the descriptor
    /// slab; consulted on every `ct_start`.
    objects: ObjectIndex,
    live_threads: usize,
    total_ops: u64,
    next_epoch: Cycles,
    epoch_base: MachineCounters,
    /// The event queue: `(wake_cycle, core)` entries, popped smallest
    /// first. Stale entries (superseded by an earlier wake-up) are
    /// discarded lazily when they surface.
    events: EventQueue,
    /// The wake cycle each core is currently scheduled at ([`PARKED`]
    /// while parked). Used to recognise stale queue entries.
    sched_wake: Vec<Cycles>,
    sched_stats: SchedStats,
    /// The expanded fault schedule, sorted by cycle; `next_fault_idx`
    /// walks it as edges fire.
    fault_edges: Vec<FaultEdge>,
    next_fault_idx: usize,
    /// Cycle of the next pending fault edge — `Cycles::MAX` when none,
    /// which makes every fault gate in the run loops a no-op compare.
    next_fault_at: Cycles,
    /// Seed handed to the interconnect for migration-loss draws.
    fault_seed: u64,
    /// Per-core cost multiplier in percent of nominal (100 = healthy).
    core_slowdown: Vec<u32>,
    /// Cores taken permanently offline by the fault plan.
    core_offline: Vec<bool>,
    /// Streaming service-latency sketch: every `ct_end` records the
    /// operation's `ct_start`→`ct_end` span. Constant memory regardless
    /// of run length; summarized into [`SchedStats::op_latency`].
    op_latency: LatencyRecorder,
}

impl Engine {
    /// Creates an engine driving `machine` under the given policy.
    pub fn new(machine: Machine, policy: Box<dyn SchedPolicy>, cfg: RuntimeConfig) -> Self {
        cfg.validate().expect("invalid runtime configuration");
        let n = machine.config().total_cores() as usize;
        let epoch_base = machine.snapshot_counters();
        let next_epoch = cfg.epoch_cycles;
        let events = match cfg.event_core {
            EventCoreKind::Wheel => EventQueue::Wheel(TimingWheel::new()),
            EventCoreKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            EventCoreKind::CycleBox => EventQueue::Scan,
        };
        Self {
            machine,
            cfg,
            cores: (0..n).map(|_| CoreState::default()).collect(),
            threads: Vec::new(),
            locations: Vec::new(),
            locks: LockRegistry::new(),
            policy,
            objects: ObjectIndex::default(),
            live_threads: 0,
            total_ops: 0,
            next_epoch,
            epoch_base,
            events,
            sched_wake: vec![PARKED; n],
            sched_stats: SchedStats::default(),
            fault_edges: Vec::new(),
            next_fault_idx: 0,
            next_fault_at: PARKED,
            fault_seed: 0,
            core_slowdown: vec![100; n],
            core_offline: vec![false; n],
            op_latency: LatencyRecorder::new(OP_LATENCY_SEED),
        }
    }

    /// Installs a fault plan: expands it into a sorted edge schedule the
    /// run loops consume. Events targeting out-of-range cores are
    /// dropped (validate plans against the machine beforehand to catch
    /// them). An empty plan leaves the engine bit-identical to one that
    /// never had a fault plane at all.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        let n = self.cores.len();
        let mut edges: Vec<FaultEdge> = Vec::new();
        for ev in &plan.events {
            match ev.kind {
                FaultKind::SlowCore {
                    core,
                    percent,
                    duration,
                } => {
                    if (core as usize) < n {
                        edges.push(FaultEdge {
                            at: ev.at,
                            action: FaultAction::SlowStart {
                                core: core as usize,
                                percent: percent.max(1),
                            },
                        });
                        if duration > 0 {
                            edges.push(FaultEdge {
                                at: ev.at.saturating_add(duration),
                                action: FaultAction::SlowEnd {
                                    core: core as usize,
                                },
                            });
                        }
                    }
                }
                FaultKind::OfflineCore { core } => {
                    if (core as usize) < n {
                        edges.push(FaultEdge {
                            at: ev.at,
                            action: FaultAction::Offline {
                                core: core as usize,
                            },
                        });
                    }
                }
                FaultKind::DegradeInterconnect {
                    loss_per_mille,
                    extra_cycles_per_hop,
                    duration,
                } => {
                    edges.push(FaultEdge {
                        at: ev.at,
                        action: FaultAction::DegradeStart {
                            deg: LinkDegradation {
                                loss_per_mille,
                                extra_cycles_per_hop,
                            },
                        },
                    });
                    if duration > 0 {
                        edges.push(FaultEdge {
                            at: ev.at.saturating_add(duration),
                            action: FaultAction::DegradeEnd,
                        });
                    }
                }
            }
        }
        // Stable sort: edges at the same cycle apply in plan order.
        edges.sort_by_key(|e| e.at);
        self.fault_seed = plan.seed;
        self.next_fault_idx = 0;
        self.next_fault_at = edges.first().map_or(PARKED, |e| e.at);
        self.fault_edges = edges;
    }

    /// Whether the fault plan has taken `core` offline.
    pub fn core_offline(&self, core: CoreId) -> bool {
        self.core_offline[core as usize]
    }

    /// The core's current cost multiplier in percent (100 = healthy).
    pub fn core_slowdown(&self, core: CoreId) -> u32 {
        self.core_slowdown[core as usize]
    }

    // ---- construction / registration --------------------------------------

    /// Spawns a thread homed on `home_core` and returns its id. If the
    /// fault plan has already taken that core offline, the thread homes
    /// on the next live core instead.
    pub fn spawn(&mut self, home_core: CoreId, behaviour: Box<dyn ThreadBehaviour>) -> ThreadId {
        assert!(
            (home_core as usize) < self.cores.len(),
            "home core {home_core} out of range"
        );
        let home_core = if self.core_offline[home_core as usize] {
            self.fallback_core(home_core)
        } else {
            home_core
        };
        let id = self.threads.len();
        self.threads.push(Thread::new(id, home_core, behaviour));
        self.locations.push(Some(home_core));
        self.cores[home_core as usize].run_queue.push_back(id);
        self.live_threads += 1;
        // A spawn is a wake-up source: un-park the home core.
        let at = self.cores[home_core as usize].clock;
        self.wake_core(home_core as usize, at);
        id
    }

    /// Registers a schedulable object: interns its key into a dense id,
    /// stores the descriptor, and informs the policy. Returns the dense id
    /// under which the policy will see all operations on the object.
    pub fn register_object(&mut self, desc: ObjectDescriptor) -> DenseObjectId {
        let dense = self.objects.register(desc);
        self.policy.register_object(dense, &desc);
        dense
    }

    /// Pre-sizes the object index and the policy's per-object tables for
    /// `n` more objects, so registering and operating on them allocates
    /// nothing on the hot path (the scale tier's steady state).
    pub fn reserve_objects(&mut self, n: usize) {
        self.objects.reserve(n);
        self.policy.reserve_objects(n);
    }

    /// Heap bytes of per-object scheduler state: the object index, the
    /// policy's tables, and the latency sketch. Divide by the object
    /// count for the scale tier's bytes-per-object audit.
    pub fn footprint_bytes(&self) -> u64 {
        self.objects.footprint_bytes()
            + self.policy.footprint_bytes()
            + self.op_latency.footprint_bytes()
    }

    /// Registers a spin lock whose word lives at `addr`.
    pub fn register_lock(&mut self, addr: u64) -> LockId {
        self.locks.register(addr)
    }

    // ---- accessors ---------------------------------------------------------

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the simulated machine (e.g. to allocate memory or
    /// prefill caches before running).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The installed scheduling policy.
    pub fn policy(&self) -> &dyn SchedPolicy {
        self.policy.as_ref()
    }

    /// The object index: dense id assignments and the descriptor slab.
    pub fn object_index(&self) -> &ObjectIndex {
        &self.objects
    }

    /// Total operations completed since the engine was created.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Statistics of one thread.
    pub fn thread_stats(&self, thread: ThreadId) -> ThreadStats {
        self.threads[thread].stats
    }

    /// Number of threads that have not exited yet.
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// The lock registry (contention statistics).
    pub fn locks(&self) -> &LockRegistry {
        &self.locks
    }

    /// Local clock of one core.
    pub fn core_clock(&self, core: CoreId) -> Cycles {
        self.cores[core as usize].clock
    }

    /// Largest core clock (the frontier of virtual time).
    pub fn max_clock(&self) -> Cycles {
        self.cores.iter().map(|c| c.clock).max().unwrap_or(0)
    }

    /// Smallest core clock.
    pub fn min_clock(&self) -> Cycles {
        self.cores.iter().map(|c| c.clock).min().unwrap_or(0)
    }

    /// Scheduler statistics: events processed, parked-core wake-ups, and —
    /// when the timing-wheel event core is active — wheel telemetry.
    pub fn sched_stats(&self) -> SchedStats {
        let mut s = self.sched_stats;
        if let EventQueue::Wheel(w) = &self.events {
            let ws = w.stats();
            s.wheel_occupancy_hwm = ws.occupancy_hwm;
            s.wheel_cascades = ws.cascades;
            s.wheel_overflows = ws.overflow_inserts;
            s.wheel_max_batch = ws.max_batch;
        }
        s.op_latency = self.op_latency.summary();
        s
    }

    /// The engine's streaming service-latency recorder (`ct_start` →
    /// `ct_end` spans, in cycles).
    pub fn op_latency(&self) -> &LatencyRecorder {
        &self.op_latency
    }

    /// Memory-system totals of the underlying machine: coherence-directory
    /// pressure, L1 short-circuits and cache evictions. The memory-side
    /// counterpart of [`Engine::sched_stats`].
    pub fn mem_stats(&self) -> MemStats {
        self.machine.mem_stats()
    }

    // ---- running -----------------------------------------------------------

    /// Runs until every core's clock reaches `limit` (or all threads exit).
    /// Panics on a behaviour error; see [`Engine::try_run_until_cycles`].
    pub fn run_until_cycles(&mut self, limit: Cycles) {
        self.try_run_until_cycles(limit)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Runs until `n` additional operations have completed (or all threads
    /// exit). Panics on a behaviour error; see
    /// [`Engine::try_run_until_ops`].
    pub fn run_until_ops(&mut self, n: u64) {
        self.try_run_until_ops(n).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Engine::run_until_cycles`]: behaviour misuse
    /// (unbalanced annotations, unknown locks) surfaces as
    /// [`EngineError`] instead of a panic.
    pub fn try_run_until_cycles(&mut self, limit: Cycles) -> Result<(), EngineError> {
        let result = self.run_loop(limit, u64::MAX);
        // Cores that are still parked were idle for the rest of the run.
        let settle_to = if self.live_threads == 0 {
            self.max_clock().min(limit)
        } else {
            limit
        };
        self.settle_idle_cores(settle_to);
        result
    }

    /// Fallible form of [`Engine::run_until_ops`].
    pub fn try_run_until_ops(&mut self, n: u64) -> Result<(), EngineError> {
        let target = self.total_ops.saturating_add(n);
        let result = self.run_loop(Cycles::MAX, target);
        let settle_to = self.max_clock();
        self.settle_idle_cores(settle_to);
        result
    }

    /// The main loop: dispatches events strictly before `limit` until
    /// `ops_target` operations have completed or every thread exits.
    fn run_loop(&mut self, limit: Cycles, ops_target: u64) -> Result<(), EngineError> {
        match self.cfg.event_core {
            EventCoreKind::Wheel => self.run_loop_wheel(limit, ops_target),
            EventCoreKind::Heap | EventCoreKind::CycleBox => {
                self.run_loop_classic(limit, ops_target)
            }
        }
    }

    /// The pre-wheel loop shape, kept verbatim for the heap baseline and
    /// the cycle box: pop → dispatch → epoch check, one queue round-trip
    /// per event.
    fn run_loop_classic(&mut self, limit: Cycles, ops_target: u64) -> Result<(), EngineError> {
        self.prime_event_queue();
        while self.live_threads > 0 && self.total_ops < ops_target {
            let Some((wake, core)) = self.pop_event(limit) else {
                break;
            };
            match self.dispatch(core, wake)? {
                Some(next) => self.wake_core(core, next),
                None => self.sched_stats.parks += 1,
            }
            self.maybe_faults();
            self.maybe_epoch(limit);
        }
        Ok(())
    }

    /// The wheel loop: identical dispatch order to the classic loop with
    /// two structural savings, both order-preserving.
    ///
    /// 1. The per-event epoch check costs one integer compare against the
    ///    already-peeked frontier instead of a second queue peek: the old
    ///    `maybe_epoch` after dispatch N and this loop's check before pop
    ///    N+1 see the same frontier and the same engine state.
    /// 2. *Run-ahead*: when a dispatched core's next wake is provably the
    ///    global minimum — it precedes the raw queue head (a lower bound
    ///    on every valid entry), the next epoch boundary, and the run
    ///    limit — the engine dispatches it directly, skipping the
    ///    push/pop round-trip whose outcome is already known.
    fn run_loop_wheel(&mut self, limit: Cycles, ops_target: u64) -> Result<(), EngineError> {
        self.prime_event_queue();
        if self.live_threads == 0 || self.total_ops >= ops_target {
            return Ok(());
        }
        let mut first = true;
        loop {
            let mut head = self.next_valid_event();
            // The post-dispatch fault/epoch checks of the classic loop,
            // moved to just before the next pop (no engine state changes
            // between those two points). Never fire before the first
            // dispatch.
            if !first {
                if let Some((frontier, _)) = head {
                    if frontier >= self.next_fault_at {
                        // Fault edges may park the head's core (an
                        // offlining) or wake another one (the drain), so
                        // the head must be re-peeked — unlike epochs.
                        self.apply_faults_up_to(frontier);
                        head = self.next_valid_event();
                    }
                }
                if let Some((frontier, _)) = head {
                    if frontier >= self.next_epoch {
                        // Epoch commands can wake a parked core *at* the
                        // boundary (a background replica fill), which may
                        // precede the pre-epoch head — re-peek so the
                        // classic loop's pop-the-minimum order is kept.
                        self.catch_up_epochs(frontier, limit);
                        head = self.next_valid_event();
                    }
                }
            }
            first = false;
            if self.live_threads == 0 || self.total_ops >= ops_target {
                return Ok(());
            }
            let Some((wake, core)) = head else {
                return Ok(());
            };
            if wake >= limit {
                return Ok(());
            }
            self.take_event(wake, core);
            let mut wake = wake;
            loop {
                let Some(next) = self.dispatch(core, wake)? else {
                    self.sched_stats.parks += 1;
                    break;
                };
                // A self-wake during dispatch (a same-core lock hand-off)
                // re-armed the core already; merge via the normal path.
                if self.sched_wake[core] != PARKED {
                    self.wake_core(core, next);
                    break;
                }
                if next < self.next_epoch
                    && next < self.next_fault_at
                    && next < limit
                    && self.total_ops < ops_target
                    && self.live_threads > 0
                {
                    let is_min = match self.events.peek() {
                        None => true,
                        Some(raw_head) => (next, core) < raw_head,
                    };
                    if is_min {
                        // The fault gate (frontier < next_fault_at), the
                        // epoch check (frontier < next_epoch) and the pop
                        // (this entry is the minimum) are all decided;
                        // dispatch again without touching the queue.
                        self.sched_stats.events_processed += 1;
                        wake = next;
                        continue;
                    }
                }
                self.wake_core(core, next);
                break;
            }
        }
    }

    /// Runs a measurement window of `cycles` cycles starting at the current
    /// virtual-time frontier and returns the observed throughput.
    pub fn run_window(&mut self, cycles: Cycles) -> RunWindow {
        let start = self.max_clock();
        let ops_before = self.total_ops;
        let per_core_before: Vec<u64> = (0..self.cores.len())
            .map(|c| self.machine.counters(c as u32).operations_completed)
            .collect();
        self.run_until_cycles(start + cycles);
        let end = self.max_clock().max(start + cycles).min(
            // If all threads exited early the frontier may be short of the
            // limit; use the actual frontier in that case.
            if self.live_threads == 0 {
                self.max_clock().max(start)
            } else {
                start + cycles
            },
        );
        let per_core_ops: Vec<u64> = (0..self.cores.len())
            .map(|c| {
                self.machine
                    .counters(c as u32)
                    .operations_completed
                    .saturating_sub(per_core_before[c])
            })
            .collect();
        RunWindow {
            start,
            end: end.max(start),
            ops: self.total_ops - ops_before,
            per_core_ops,
            clock_ghz: self.machine.config().clock_ghz,
        }
    }

    // ---- the event queue ---------------------------------------------------

    /// Schedules (or re-schedules, if `at` is earlier than the pending
    /// entry) a wake-up for `core`. Never moves a wake-up later: a core
    /// already scheduled to act at or before `at` is left alone.
    fn wake_core(&mut self, core: usize, at: Cycles) {
        let at = at.max(self.cores[core].clock);
        // A parked core's sentinel compares above every real cycle, so one
        // compare covers both "parked" and "pending but later".
        if at < self.sched_wake[core] {
            self.sched_wake[core] = at;
            self.events.push(at, core);
        }
    }

    /// Schedules every core that has something to do. Called at the start
    /// of each run so that spawns and registrations performed between runs
    /// take effect; cores with nothing to do stay parked.
    fn prime_event_queue(&mut self) {
        for i in 0..self.cores.len() {
            if let Some(at) = self.core_next_wake(i) {
                self.wake_core(i, at);
            }
        }
    }

    /// The next cycle at which `core` has something to do: immediately if
    /// it has runnable threads (or a background fill that fits the gap
    /// before its next arrival), at the earliest inbox arrival or sleeper
    /// wake if it is only waiting, `None` (park) otherwise.
    fn core_next_wake(&self, core: usize) -> Option<Cycles> {
        let c = &self.cores[core];
        if c.current.is_some() || !c.run_queue.is_empty() || self.fill_ready(core) {
            Some(c.clock)
        } else {
            c.inbox
                .iter()
                .map(|inc| inc.ready_at)
                .chain(c.sleepers.iter().map(|s| s.wake_at))
                .min()
                .map(|ready| ready.max(c.clock))
        }
    }

    /// Whether `core` should start its next queued background fill now:
    /// only when the gap until the earliest pending arrival (inbox or
    /// sleeper) covers a conservative estimate of the fill's streaming
    /// cost, so a fill never sits in front of work that is about to
    /// land. With no pending arrival the core is fully idle and any fill
    /// may run.
    fn fill_ready(&self, core: usize) -> bool {
        let c = &self.cores[core];
        let Some(&object) = c.fill_queue.front() else {
            return false;
        };
        let pending = c
            .inbox
            .iter()
            .map(|inc| inc.ready_at)
            .chain(c.sleepers.iter().map(|s| s.wake_at))
            .min();
        match pending {
            None => true,
            Some(at) => {
                // ~2 cycles/byte comfortably bounds a cold streamed fetch
                // (a cold 4 KB stream measures ~1.6 cycles/byte); warm
                // re-streams cost far less, so this only defers fills,
                // never starves them.
                let estimate = self.objects.descriptor(object).size.saturating_mul(2);
                at.max(c.clock) - c.clock >= estimate
            }
        }
    }

    /// The next valid pending event — the single validity path shared by
    /// `pop_event`, `peek_valid_wake` and the wheel loop. In the queued
    /// modes this peeks the queue and lazily discards stale entries
    /// (superseded by an earlier re-wake); in cycle-box mode it scans
    /// `sched_wake` directly, so nothing is ever stale. The entry is not
    /// consumed: pair with [`Engine::take_event`] to dispatch it.
    fn next_valid_event(&mut self) -> Option<(Cycles, usize)> {
        if matches!(self.events, EventQueue::Scan) {
            return self
                .sched_wake
                .iter()
                .enumerate()
                .filter(|&(_, &wake)| wake != PARKED)
                .map(|(core, &wake)| (wake, core))
                .min();
        }
        loop {
            let (wake, core) = self.events.peek()?;
            if self.sched_wake[core] == wake {
                return Some((wake, core));
            }
            self.events.pop();
            self.sched_stats.stale_events += 1;
        }
    }

    /// Consumes the event returned by [`Engine::next_valid_event`].
    fn take_event(&mut self, wake: Cycles, core: usize) {
        if !matches!(self.events, EventQueue::Scan) {
            let popped = self.events.pop();
            debug_assert_eq!(popped, Some((wake, core)));
        }
        self.sched_wake[core] = PARKED;
        self.sched_stats.events_processed += 1;
    }

    /// Pops the next valid event strictly before `limit`. Events at or
    /// past `limit` are left pending for a later run.
    fn pop_event(&mut self, limit: Cycles) -> Option<(Cycles, usize)> {
        let (wake, core) = self.next_valid_event()?;
        if wake >= limit {
            return None;
        }
        self.take_event(wake, core);
        Some((wake, core))
    }

    /// The wake cycle of the next valid pending event. This is the
    /// frontier the epoch gate compares against: parked cores are
    /// conceptually *at* the frontier, so they never hold an epoch back.
    fn peek_valid_wake(&mut self) -> Option<Cycles> {
        self.next_valid_event().map(|(wake, _)| wake)
    }

    /// Processes one event: advances a woken parked core's clock (crediting
    /// the gap as idle time), steps the core once, and returns the cycle at
    /// which it next needs to run (`None` parks it). The caller re-queues.
    fn dispatch(&mut self, core_idx: usize, wake: Cycles) -> Result<Option<Cycles>, EngineError> {
        if wake > self.cores[core_idx].clock {
            // A wake cycle ahead of the core's clock means the core had
            // nothing runnable and was woken by an arrival (migration,
            // lock hand-off, rehome): the skipped span is idle time. Note
            // the work that woke it may already be queued — a busy core is
            // always scheduled at exactly its own clock, so it can never
            // reach this branch.
            let idle = wake - self.cores[core_idx].clock;
            self.cores[core_idx].clock = wake;
            self.machine.counters_mut(core_idx as CoreId).idle_cycles += idle;
            self.sched_stats.park_wakeups += 1;
        } else if self.cores[core_idx].current.is_none()
            && self.cores[core_idx].run_queue.is_empty()
        {
            // Woken at its own clock with nothing queued yet (an inbox
            // arrival that is ready now).
            self.sched_stats.park_wakeups += 1;
        }
        self.step_core(core_idx)
    }

    /// Fast-forwards every core that has nothing runnable to `up_to`,
    /// crediting the skipped span as idle cycles — the bulk equivalent of
    /// the cycle-by-cycle idling the pre-event-queue engine performed. A
    /// core with a pending wake-up (an in-flight migration arrival) is
    /// never advanced past that wake, exactly as the old engine capped an
    /// idle core's clock at its earliest inbox `ready_at`.
    fn settle_idle_cores(&mut self, up_to: Cycles) {
        for i in 0..self.cores.len() {
            let c = &self.cores[i];
            if c.current.is_none() && c.run_queue.is_empty() && c.clock < up_to {
                let target = up_to.min(self.sched_wake[i]);
                if target > c.clock {
                    let idle = target - c.clock;
                    self.cores[i].clock = target;
                    self.machine.counters_mut(i as CoreId).idle_cycles += idle;
                }
            }
        }
    }

    // ---- internals ---------------------------------------------------------

    /// Advances one core by one scheduling decision or action and returns
    /// the cycle at which it next needs to run (`None` parks the core).
    fn step_core(&mut self, core_idx: usize) -> Result<Option<Cycles>, EngineError> {
        let core_id = core_idx as CoreId;
        self.machine.set_time_hint(self.cores[core_idx].clock);
        if !self.cores[core_idx].inbox.is_empty() {
            self.accept_inbox(core_idx);
        }
        if !self.cores[core_idx].sleepers.is_empty() {
            self.wake_sleepers(core_idx);
        }

        // One borrow of the core state covers thread pick and quantum
        // rotation (this is the hottest scaffolding in the run loop).
        let (tid, before) = {
            let core = &mut self.cores[core_idx];
            // Pick a thread to run if the core has none.
            match core.current {
                Some(_) => {}
                None => {
                    if let Some(next) = core.run_queue.pop_front() {
                        core.current = Some(next);
                        core.quantum_used = 0;
                    } else if self.fill_ready(core_idx) {
                        // Nothing runnable and a background fill fits in
                        // the gap before the next arrival: stream one
                        // replica into this core's caches and look again —
                        // runnable work that lands meanwhile takes
                        // priority over the remaining fills.
                        let at = self.run_one_fill(core_idx);
                        return Ok(Some(at));
                    } else {
                        // Nothing runnable: wait for the inbox or park.
                        return Ok(self.core_next_wake(core_idx));
                    }
                }
            }

            // Round-robin rotation when the quantum is exhausted.
            // Invariant: `current` is `Some` here — the match above either
            // found it populated or populated it from a non-empty queue.
            if core.quantum_used >= self.cfg.quantum_cycles && !core.run_queue.is_empty() {
                let cur = core.current.take().expect("current thread");
                core.run_queue.push_back(cur);
                let next = core.run_queue.pop_front().expect("non-empty queue");
                core.current = Some(next);
                core.quantum_used = 0;
            }

            (core.current.expect("current thread"), core.clock)
        };

        // Fetch the next action: deferred (lock retries, resumptions) first.
        let action = {
            let thread = &mut self.threads[tid];
            let action = if let Some(a) = thread.deferred.pop_front() {
                a
            } else {
                let ctx = BehaviourCtx {
                    thread: tid,
                    core: core_id,
                    home_core: thread.home_core,
                    now: before,
                    ops_completed: thread.stats.ops_completed,
                };
                thread.behaviour.next_action(&ctx)
            };
            thread.stats.actions_executed += 1;
            action
        };
        self.execute(core_idx, tid, action)?;

        let core = &mut self.cores[core_idx];
        core.quantum_used += core.clock - before;
        Ok(self.core_next_wake(core_idx))
    }

    /// Scales a cycle cost by the core's fault-injected slowdown. The
    /// healthy path (multiplier 100) is a single compare and returns `n`
    /// unchanged, so zero-fault runs are arithmetically untouched.
    #[inline]
    fn scaled_cycles(&self, core_idx: usize, n: Cycles) -> Cycles {
        let pct = self.core_slowdown[core_idx];
        if pct == 100 {
            n
        } else {
            n.saturating_mul(u64::from(pct)) / 100
        }
    }

    /// Wakes sleepers whose target cycle has been reached, in the order
    /// they went to sleep (a deterministic queue order).
    fn wake_sleepers(&mut self, core_idx: usize) {
        let clock = self.cores[core_idx].clock;
        let mut due: Vec<ThreadId> = Vec::new();
        self.cores[core_idx].sleepers.retain(|s| {
            if s.wake_at <= clock {
                due.push(s.thread);
                false
            } else {
                true
            }
        });
        for tid in due {
            self.threads[tid].state = ThreadState::Runnable;
            self.cores[core_idx].run_queue.push_back(tid);
        }
    }

    /// Accepts migrated-in threads whose context transfer has completed.
    fn accept_inbox(&mut self, core_idx: usize) {
        if self.cores[core_idx].inbox.is_empty() {
            return;
        }
        let core_id = core_idx as CoreId;
        let clock = self.cores[core_idx].clock;
        let mut arrived: Vec<ThreadId> = Vec::new();
        self.cores[core_idx].inbox.retain(|inc| {
            if inc.ready_at <= clock {
                arrived.push(inc.thread);
                false
            } else {
                true
            }
        });
        for tid in arrived {
            // Restoring the context costs the destination core cycles
            // (scaled if the destination itself is running slow).
            let restore = self.scaled_cycles(core_idx, self.cfg.restore_context_cycles);
            self.cores[core_idx].clock += restore;
            self.machine.counters_mut(core_id).busy_cycles += restore;
            self.machine.counters_mut(core_id).migrations_in += 1;
            let thread = &mut self.threads[tid];
            thread.state = ThreadState::Runnable;
            thread.stats.migration_cycles += restore;
            // Re-capture the counter base on the executing core so misses
            // during transit are not attributed to the object.
            if let Some(op) = thread.current_op.as_mut() {
                if op.counter_base_pending && op.exec_core == core_id {
                    op.counter_base = *self.machine.counters(core_id);
                    op.counter_base_pending = false;
                }
            }
            self.locations[tid] = Some(core_id);
            self.cores[core_idx].run_queue.push_back(tid);
        }
    }

    /// Executes one action of thread `tid` on core `core_idx`.
    fn execute(
        &mut self,
        core_idx: usize,
        tid: ThreadId,
        action: Action,
    ) -> Result<(), EngineError> {
        let core_id = core_idx as CoreId;
        match action {
            Action::Compute(n) => {
                let n = self.scaled_cycles(core_idx, n);
                self.cores[core_idx].clock += n;
                self.machine.counters_mut(core_id).busy_cycles += n;
            }
            Action::Read { addr, len } => {
                let cost = self.machine.access(core_id, addr, len, AccessKind::Read);
                let scaled = self.scaled_cycles(core_idx, cost);
                if scaled > cost {
                    // Keep busy accounting in step with the clock: the
                    // machine already charged `cost` busy cycles.
                    self.machine.counters_mut(core_id).busy_cycles += scaled - cost;
                }
                self.cores[core_idx].clock += scaled;
            }
            Action::Write { addr, len } => {
                let cost = self.machine.access(core_id, addr, len, AccessKind::Write);
                let scaled = self.scaled_cycles(core_idx, cost);
                if scaled > cost {
                    self.machine.counters_mut(core_id).busy_cycles += scaled - cost;
                }
                self.cores[core_idx].clock += scaled;
            }
            Action::Lock(lock) => self.exec_lock(core_idx, tid, lock)?,
            Action::Unlock(lock) => self.exec_unlock(core_idx, tid, lock)?,
            Action::CtStart(object, kind) => self.exec_ct_start(core_idx, tid, object, kind)?,
            Action::CtEnd => self.exec_ct_end(core_idx, tid)?,
            Action::Yield => {
                let cost = self.scaled_cycles(core_idx, self.cfg.yield_cycles);
                self.cores[core_idx].clock += cost;
                self.machine.counters_mut(core_id).busy_cycles += cost;
                if !self.cores[core_idx].run_queue.is_empty() {
                    self.cores[core_idx].run_queue.push_back(tid);
                    self.cores[core_idx].current = None;
                }
            }
            Action::IdleUntil(at) => {
                if at > self.cores[core_idx].clock {
                    self.threads[tid].state = ThreadState::Sleeping;
                    self.cores[core_idx].sleepers.push(Sleeper {
                        thread: tid,
                        wake_at: at,
                    });
                    self.cores[core_idx].current = None;
                    self.sched_stats.sleeps += 1;
                }
            }
            Action::Exit => {
                self.threads[tid].state = ThreadState::Done;
                self.locations[tid] = None;
                self.cores[core_idx].current = None;
                self.live_threads -= 1;
            }
        }
        Ok(())
    }

    fn exec_lock(
        &mut self,
        core_idx: usize,
        tid: ThreadId,
        lock: LockId,
    ) -> Result<(), EngineError> {
        let core_id = core_idx as CoreId;
        let addr = self
            .locks
            .info(lock)
            .ok_or(EngineError::UnregisteredLock { thread: tid, lock })?
            .addr;
        // Invariant: `info` above proved the lock id is registered.
        let acquired = self
            .locks
            .try_acquire(lock, tid)
            .expect("lock id verified above");
        if acquired {
            let cost = self.scaled_cycles(core_idx, self.cfg.lock_op_cycles)
                + self.machine.access(core_id, addr, 8, AccessKind::Write);
            self.cores[core_idx].clock += cost;
            self.machine.counters_mut(core_id).busy_cycles +=
                self.scaled_cycles(core_idx, self.cfg.lock_op_cycles);
        } else {
            // The lock is held by another thread.
            // Invariant: `try_acquire` returned false, so a holder exists.
            let holder = self.locks.holder(lock).expect("contended lock has holder");
            let holder_here = self.locations[holder] == Some(core_id);
            // Retry the acquisition next time this thread runs.
            self.threads[tid].defer_front(Action::Lock(lock));
            if self.cfg.blocking_locks {
                // Block instead of spinning: charge the failed probe, then
                // sleep until the holder's release wakes this thread (and,
                // if need be, un-parks this core).
                let cost = self.scaled_cycles(core_idx, self.cfg.lock_spin_cycles)
                    + self.machine.access(core_id, addr, 8, AccessKind::Read);
                self.cores[core_idx].clock += cost;
                self.machine.counters_mut(core_id).busy_cycles +=
                    self.scaled_cycles(core_idx, self.cfg.lock_spin_cycles);
                self.threads[tid].stats.lock_wait_cycles += cost;
                self.threads[tid].state = ThreadState::Blocked;
                self.locks.push_waiter(lock, tid);
                self.cores[core_idx].current = None;
            } else if holder_here && !self.cores[core_idx].run_queue.is_empty() {
                // Spinning would deadlock a cooperative core: yield to let
                // the holder make progress.
                let cost = self.scaled_cycles(core_idx, self.cfg.yield_cycles);
                self.cores[core_idx].clock += cost;
                self.machine.counters_mut(core_id).busy_cycles += cost;
                self.cores[core_idx].run_queue.push_back(tid);
                self.cores[core_idx].current = None;
            } else {
                // Spin: re-read the lock word and burn the retry cost.
                let cost = self.scaled_cycles(core_idx, self.cfg.lock_spin_cycles)
                    + self.machine.access(core_id, addr, 8, AccessKind::Read);
                self.cores[core_idx].clock += cost;
                self.machine.counters_mut(core_id).busy_cycles +=
                    self.scaled_cycles(core_idx, self.cfg.lock_spin_cycles);
                self.threads[tid].stats.lock_wait_cycles += cost;
            }
        }
        Ok(())
    }

    fn exec_unlock(
        &mut self,
        core_idx: usize,
        tid: ThreadId,
        lock: LockId,
    ) -> Result<(), EngineError> {
        let core_id = core_idx as CoreId;
        let addr = self
            .locks
            .info(lock)
            .ok_or(EngineError::UnregisteredLock { thread: tid, lock })?
            .addr;
        self.locks
            .release(lock, tid)
            .map_err(|e| EngineError::LockReleaseFailed {
                thread: tid,
                lock,
                error: e,
            })?;
        let cost = self.scaled_cycles(core_idx, self.cfg.lock_op_cycles)
            + self.machine.access(core_id, addr, 8, AccessKind::Write);
        self.cores[core_idx].clock += cost;
        self.machine.counters_mut(core_id).busy_cycles +=
            self.scaled_cycles(core_idx, self.cfg.lock_op_cycles);
        // A release is a wake-up source: hand the lock's first waiter back
        // to its core's run queue and un-park that core if necessary.
        if self.cfg.blocking_locks {
            if let Some(waiter) = self.locks.pop_waiter(lock) {
                // Invariant: a blocked thread keeps its location until it
                // exits; offlining relocates blocked threads explicitly.
                let dest = self.locations[waiter].expect("blocked thread lives on a core");
                self.threads[waiter].state = ThreadState::Runnable;
                self.cores[dest as usize].run_queue.push_back(waiter);
                // The waiter cannot observe the release before it happened:
                // wake no earlier than the releasing core's clock.
                let at = self.cores[core_idx]
                    .clock
                    .max(self.cores[dest as usize].clock);
                self.wake_core(dest as usize, at);
                self.sched_stats.lock_wakeups += 1;
            }
        }
        Ok(())
    }

    fn exec_ct_start(
        &mut self,
        core_idx: usize,
        tid: ThreadId,
        object_key: ObjectId,
        kind: AccessKind,
    ) -> Result<(), EngineError> {
        let core_id = core_idx as CoreId;
        if self.threads[tid].in_operation() {
            return Err(EngineError::NestedCtStart { thread: tid });
        }
        // Interning is the "table lookup" of the paper's ct_start: one
        // probe of the flat index, after which the policy works purely
        // with dense ids. Id-space exhaustion surfaces as a typed error
        // rather than a wrapped or aliased dense id.
        let object =
            self.objects
                .try_intern(object_key)
                .map_err(|e| EngineError::ObjectIdsExhausted {
                    thread: tid,
                    limit: e.limit,
                })?;
        let now = self.cores[core_idx].clock;
        self.threads[tid].current_op = Some(OpRecord {
            object,
            kind,
            exec_core: core_id,
            started_at: now,
            counter_base: *self.machine.counters(core_id),
            counter_base_pending: false,
            migrated: false,
        });

        let ctx = OpContext {
            thread: tid,
            core: core_id,
            home_core: self.threads[tid].home_core,
            object,
            object_key,
            now,
            kind,
            machine: &self.machine,
        };
        let placement = self.policy.on_ct_start(&ctx);

        if let Placement::On(dest) = placement {
            let valid = (dest as usize) < self.cores.len();
            debug_assert!(valid, "policy placed an operation on invalid core {dest}");
            if valid && dest != core_id && self.cfg.migration_enabled {
                // The send can fail over a lossy interconnect (or be
                // redirected off an offlined core): only a completed
                // migration marks the op as executing remotely.
                if let Some(landed) = self.migrate(core_idx, tid, dest) {
                    if let Some(op) = self.threads[tid].current_op.as_mut() {
                        op.exec_core = landed;
                        op.migrated = true;
                        op.counter_base_pending = true;
                    }
                    self.threads[tid].stats.migrations += 1;
                }
            }
        }
        Ok(())
    }

    fn exec_ct_end(&mut self, core_idx: usize, tid: ThreadId) -> Result<(), EngineError> {
        let core_id = core_idx as CoreId;
        let op = self.threads[tid]
            .current_op
            .take()
            .ok_or(EngineError::CtEndWithoutCtStart { thread: tid })?;
        let delta = self.machine.counters(core_id).delta_since(&op.counter_base);
        // Service latency in cycles: ct_start (on the starting core) to
        // ct_end (here). Clocks only move forward across a migration, so
        // the span is non-negative; saturate for safety.
        self.op_latency
            .record(self.cores[core_idx].clock.saturating_sub(op.started_at));
        let ctx = OpContext {
            thread: tid,
            core: core_id,
            home_core: self.threads[tid].home_core,
            object: op.object,
            object_key: self.objects.key_of(op.object),
            now: self.cores[core_idx].clock,
            kind: op.kind,
            machine: &self.machine,
        };
        self.policy.on_ct_end(&ctx, &delta);

        self.machine.counters_mut(core_id).operations_completed += 1;
        self.threads[tid].stats.ops_completed += 1;
        self.total_ops += 1;

        // Return to the home core when the runtime is configured to do so
        // (the paper's original design) or when a rehome command (e.g. from
        // a thread-clustering policy) arrived while the thread was running.
        let home = self.threads[tid].home_core;
        let rehome = self.threads[tid].rehome_pending;
        if (self.cfg.return_home_after_op || rehome)
            && self.cfg.migration_enabled
            && home != core_id
        {
            self.threads[tid].rehome_pending = false;
            if self.migrate(core_idx, tid, home).is_some() {
                self.threads[tid].stats.returns_home += 1;
            }
        } else if rehome && home == core_id {
            self.threads[tid].rehome_pending = false;
        }
        Ok(())
    }

    /// Moves thread `tid` (currently running on `core_idx`) to `dest`: saves
    /// the context, charges the transfer, and enqueues it in the
    /// destination's migration inbox.
    ///
    /// Over a fault-degraded interconnect the context message can be lost;
    /// the sender then retries with doubling backoff (charged as busy time
    /// on the source core) up to `migration_max_retries` attempts or the
    /// `migration_timeout_cycles` budget, whichever runs out first. An
    /// offlined destination is silently redirected to the next live core.
    /// Returns the core the thread actually landed on, or `None` if the
    /// migration was abandoned (the thread stays where it is).
    fn migrate(&mut self, core_idx: usize, tid: ThreadId, dest: CoreId) -> Option<CoreId> {
        let core_id = core_idx as CoreId;
        // Never deliver to a dead core: fall back to the next live one.
        let dest = if self.core_offline[dest as usize] {
            self.fallback_core(dest)
        } else {
            dest
        };
        if dest == core_id {
            return None;
        }

        // Resolve the wire transfer first: on a healthy link this is one
        // infallible send, exactly the pre-fault-plane behaviour.
        let mut wire = self.machine.try_migration_transfer(core_id, dest);
        if wire.is_none() {
            let mut backoff = self.cfg.migration_retry_backoff_cycles;
            let mut waited: Cycles = 0;
            for _ in 0..self.cfg.migration_max_retries {
                if waited.saturating_add(backoff) > self.cfg.migration_timeout_cycles {
                    break;
                }
                self.sched_stats.migration_retries += 1;
                // The backoff wait burns time on the source core.
                self.cores[core_idx].clock += backoff;
                self.machine.counters_mut(core_id).busy_cycles += backoff;
                self.threads[tid].stats.migration_cycles += backoff;
                waited += backoff;
                backoff = backoff.saturating_mul(2);
                self.machine.set_time_hint(self.cores[core_idx].clock);
                wire = self.machine.try_migration_transfer(core_id, dest);
                if wire.is_some() {
                    break;
                }
            }
        }
        let Some(wire) = wire else {
            // Retries exhausted or timed out: run the operation locally.
            self.sched_stats.migration_failures += 1;
            return None;
        };

        let save = self.scaled_cycles(core_idx, self.cfg.save_context_cycles);
        self.cores[core_idx].clock += save;
        self.machine.counters_mut(core_id).busy_cycles += save;
        self.machine.counters_mut(core_id).migrations_out += 1;

        // Average polling delay at the destination.
        let poll_wait = self.cfg.poll_interval_cycles / 2;
        let ready_at = self.cores[core_idx].clock + wire + poll_wait;

        let thread = &mut self.threads[tid];
        thread.state = ThreadState::Migrating;
        thread.stats.migration_cycles += save + wire + poll_wait;

        self.locations[tid] = Some(dest);
        self.cores[dest as usize].inbox.push(Incoming {
            thread: tid,
            ready_at,
        });
        self.cores[core_idx].current = None;
        // A migration arrival is a wake-up source for the (possibly
        // parked) destination core.
        self.wake_core(dest as usize, ready_at);
        Some(dest)
    }

    /// Fires policy epochs once the virtual-time frontier has crossed the
    /// next epoch boundary. The frontier is the wake cycle of the next
    /// pending event; parked cores sit at the frontier by definition and
    /// never delay an epoch. A single long action can carry the frontier
    /// across several boundaries at once, so this catches up in a loop —
    /// every boundary fires exactly once, in order.
    ///
    /// `limit` is the current run's cycle bound: in the old engine idle
    /// cores never advanced past the limit, so while any core is idle no
    /// boundary beyond the limit may fire (nor may idle clocks be settled
    /// past it).
    fn maybe_epoch(&mut self, limit: Cycles) {
        loop {
            match self.peek_valid_wake() {
                Some(frontier) if frontier >= self.next_epoch => {}
                _ => return,
            }
            if !self.fire_one_epoch(limit) {
                return;
            }
        }
    }

    /// The wheel loop's epoch catch-up: the frontier was already peeked,
    /// so boundaries fire against the passed value instead of re-peeking.
    /// Epoch commands can only create events *past* the frontier (a
    /// rehome's `ready_at` exceeds the involved cores' clocks, which are
    /// at or past the frontier), so the frontier is constant across the
    /// catch-up and re-peeking each iteration — what `maybe_epoch` does —
    /// would observe the same value.
    fn catch_up_epochs(&mut self, frontier: Cycles, limit: Cycles) {
        while frontier >= self.next_epoch {
            if !self.fire_one_epoch(limit) {
                return;
            }
        }
    }

    /// Fires the boundary at `next_epoch`, unless `limit` gates it.
    /// Returns whether it fired.
    fn fire_one_epoch(&mut self, limit: Cycles) -> bool {
        if self.next_epoch > limit
            && self
                .cores
                .iter()
                .any(|c| c.current.is_none() && c.run_queue.is_empty())
        {
            return false;
        }
        // Epoch boundaries are a wake-up source for idle accounting:
        // bring every parked core's clock (and idle counter) up to the
        // boundary so the policy's per-core deltas include their idle
        // time.
        self.settle_idle_cores(self.next_epoch.min(limit));
        let snapshot = self.machine.snapshot_counters();
        let deltas = snapshot.delta_since(&self.epoch_base);
        let view = EpochView {
            now: self.next_epoch,
            machine: &self.machine,
            deltas: &deltas,
        };
        let commands = self.policy.on_epoch(&view);
        self.epoch_base = snapshot;
        self.next_epoch += self.cfg.epoch_cycles;
        // Fills the cores found no idle gap for during the last epoch are
        // stale — the policy just re-planned from fresh counters.
        for core in &mut self.cores {
            core.fill_queue.clear();
        }
        for cmd in commands {
            self.apply_command(cmd);
        }
        true
    }

    /// Streams one queued background fill into `core_idx`'s caches: a
    /// plain read of the object's bytes through the normal memory system
    /// (so directory state, sharing downgrades and streaming discounts are
    /// all the real ones), charged to the core's clock. Only ever called
    /// when the core has nothing runnable, so the cost lands in what would
    /// have been an idle gap. Returns the core's advanced clock.
    fn run_one_fill(&mut self, core_idx: usize) -> Cycles {
        let core_id = core_idx as CoreId;
        // Invariant: the caller checked the queue is non-empty.
        let object = self.cores[core_idx]
            .fill_queue
            .pop_front()
            .expect("pending background fill");
        let desc = *self.objects.descriptor(object);
        if desc.size > 0 {
            self.machine.set_time_hint(self.cores[core_idx].clock);
            let cost = self
                .machine
                .access(core_id, desc.addr, desc.size, AccessKind::Read);
            let scaled = self.scaled_cycles(core_idx, cost);
            if scaled > cost {
                self.machine.counters_mut(core_id).busy_cycles += scaled - cost;
            }
            self.cores[core_idx].clock += scaled;
            self.sched_stats.replica_fills += 1;
            self.sched_stats.replica_fill_cycles += scaled;
        }
        self.cores[core_idx].clock
    }

    fn apply_command(&mut self, cmd: PolicyCommand) {
        match cmd {
            PolicyCommand::FillReplica { object, core } => {
                let idx = core as usize;
                if idx < self.cores.len()
                    && !self.core_offline[idx]
                    && (object as usize) < self.objects.len()
                {
                    self.cores[idx].fill_queue.push_back(object);
                    // A parked core whose next arrival leaves room can
                    // start filling right away.
                    if let Some(at) = self.core_next_wake(idx) {
                        self.wake_core(idx, at);
                    }
                }
            }
            PolicyCommand::RehomeThread { thread, core } => {
                if thread >= self.threads.len() || (core as usize) >= self.cores.len() {
                    return;
                }
                if self.threads[thread].is_done() {
                    return;
                }
                // A rehome onto an offlined core lands on its fallback.
                let core = if self.core_offline[core as usize] {
                    self.fallback_core(core)
                } else {
                    core
                };
                self.threads[thread].home_core = core;
                // If the thread is sitting in a run queue (not currently
                // running and not mid-migration), move it physically now;
                // otherwise it will move at its next ct_end.
                let loc = match self.locations[thread] {
                    Some(l) => l,
                    None => return,
                };
                if loc == core {
                    return;
                }
                let loc_idx = loc as usize;
                let running_there = self.cores[loc_idx].current == Some(thread);
                let queued_pos = self.cores[loc_idx]
                    .run_queue
                    .iter()
                    .position(|&t| t == thread);
                if !running_there {
                    if let Some(pos) = queued_pos {
                        self.cores[loc_idx].run_queue.remove(pos);
                        let ready_at = self.cores[loc_idx]
                            .clock
                            .max(self.cores[core as usize].clock)
                            + self.cfg.expected_migration_cycles();
                        self.threads[thread].state = ThreadState::Migrating;
                        self.locations[thread] = Some(core);
                        self.cores[core as usize]
                            .inbox
                            .push(Incoming { thread, ready_at });
                        self.wake_core(core as usize, ready_at);
                    }
                } else {
                    // The thread is running right now: move it at its next
                    // ct_end (the next point where its context is small).
                    self.threads[thread].rehome_pending = true;
                }
            }
        }
    }

    // ---- the fault plane ---------------------------------------------------

    /// The classic loop's post-dispatch fault check: a no-op single
    /// compare while no fault plan is installed (or all edges fired).
    fn maybe_faults(&mut self) {
        if self.next_fault_at == PARKED {
            return;
        }
        if let Some(frontier) = self.peek_valid_wake() {
            if frontier >= self.next_fault_at {
                self.apply_faults_up_to(frontier);
            }
        }
    }

    /// Applies every pending fault edge at or before `frontier`, in
    /// schedule order.
    fn apply_faults_up_to(&mut self, frontier: Cycles) {
        while self.next_fault_at <= frontier {
            let edge = self.fault_edges[self.next_fault_idx];
            self.next_fault_idx += 1;
            self.next_fault_at = self
                .fault_edges
                .get(self.next_fault_idx)
                .map_or(PARKED, |e| e.at);
            self.apply_fault(edge);
        }
    }

    fn apply_fault(&mut self, edge: FaultEdge) {
        self.sched_stats.faults_applied += 1;
        match edge.action {
            FaultAction::SlowStart { core, percent } => {
                if !self.core_offline[core] {
                    self.core_slowdown[core] = percent;
                    self.sched_stats.cores_slowed += 1;
                    self.policy.core_degraded(core as CoreId, percent);
                }
            }
            FaultAction::SlowEnd { core } => {
                if !self.core_offline[core] && self.core_slowdown[core] != 100 {
                    self.core_slowdown[core] = 100;
                    self.policy.core_degraded(core as CoreId, 100);
                }
            }
            FaultAction::Offline { core } => self.offline_core(core, edge.at),
            FaultAction::DegradeStart { deg } => {
                self.machine
                    .set_interconnect_degradation(Some(deg), self.fault_seed);
            }
            FaultAction::DegradeEnd => {
                self.machine
                    .set_interconnect_degradation(None, self.fault_seed);
            }
        }
    }

    /// The next live core after `core` in cyclic id order — where an
    /// offlined core's work goes. Falls back to `core` itself only if
    /// every other core is down (a state `FaultPlan::validate` rejects).
    fn fallback_core(&self, core: CoreId) -> CoreId {
        let n = self.cores.len();
        for step in 1..n {
            let c = (core as usize + step) % n;
            if !self.core_offline[c] {
                return c as CoreId;
            }
        }
        core
    }

    /// Takes a core permanently offline at virtual time `at`: notifies
    /// the policy (so placements stop targeting it), then drains its
    /// running thread, run queue, and in-flight inbox arrivals to the
    /// next live core, re-pins the homes of every thread homed there, and
    /// parks the core forever.
    fn offline_core(&mut self, core: usize, at: Cycles) {
        if self.core_offline[core] {
            return;
        }
        if self.core_offline.iter().filter(|&&down| !down).count() <= 1 {
            // The last live core cannot go down: the work has nowhere to
            // drain. (FaultPlan::validate rejects such plans up front.)
            return;
        }
        self.core_offline[core] = true;
        self.core_slowdown[core] = 100;
        self.sched_stats.cores_offlined += 1;
        // Policy first: CoreTime re-homes the dead core's objects before
        // any drained thread issues its next ct_start.
        self.policy.core_down(core as CoreId);

        let fallback = self.fallback_core(core as CoreId);
        let dest = fallback as usize;

        // Drain the runnable threads: current first, then queue order —
        // a deterministic order for the fallback core's inbox.
        let mut drained: Vec<ThreadId> = Vec::new();
        if let Some(cur) = self.cores[core].current.take() {
            drained.push(cur);
        }
        while let Some(t) = self.cores[core].run_queue.pop_front() {
            drained.push(t);
        }
        let in_flight: Vec<Incoming> = std::mem::take(&mut self.cores[core].inbox);

        let base = self.cores[core].clock.max(self.cores[dest].clock);
        let ready_at = base + self.cfg.expected_migration_cycles();
        let mut last_ready = at;
        for tid in drained {
            self.threads[tid].state = ThreadState::Migrating;
            self.threads[tid].home_core = fallback;
            self.locations[tid] = Some(fallback);
            self.cores[dest].inbox.push(Incoming {
                thread: tid,
                ready_at,
            });
            self.wake_core(dest, ready_at);
            self.sched_stats.threads_repinned += 1;
            last_ready = last_ready.max(ready_at);
        }
        for inc in in_flight {
            // An arrival already in transit is re-routed: it completes its
            // original transfer, then pays one more migration to reach the
            // fallback core.
            let rerouted = inc.ready_at.max(base) + self.cfg.expected_migration_cycles();
            self.locations[inc.thread] = Some(fallback);
            self.threads[inc.thread].home_core = fallback;
            self.cores[dest].inbox.push(Incoming {
                thread: inc.thread,
                ready_at: rerouted,
            });
            self.wake_core(dest, rerouted);
            self.sched_stats.threads_repinned += 1;
            last_ready = last_ready.max(rerouted);
        }
        // Sleepers finish their sleep in transit and land on the fallback
        // core one migration after their wake cycle.
        let sleeping: Vec<Sleeper> = std::mem::take(&mut self.cores[core].sleepers);
        for s in sleeping {
            let rerouted = s.wake_at.max(base) + self.cfg.expected_migration_cycles();
            self.threads[s.thread].state = ThreadState::Migrating;
            self.threads[s.thread].home_core = fallback;
            self.locations[s.thread] = Some(fallback);
            self.cores[dest].inbox.push(Incoming {
                thread: s.thread,
                ready_at: rerouted,
            });
            self.wake_core(dest, rerouted);
            self.sched_stats.threads_repinned += 1;
            last_ready = last_ready.max(rerouted);
        }
        // Threads homed on the dead core but currently elsewhere (blocked,
        // migrated out, or queued on another core) re-pin their homes; a
        // blocked thread's recorded location moves too, so a later lock
        // hand-off wakes a live core.
        for t in 0..self.threads.len() {
            if self.threads[t].is_done() {
                continue;
            }
            if self.threads[t].home_core == core as CoreId {
                self.threads[t].home_core = fallback;
            }
            if self.locations[t] == Some(core as CoreId) {
                self.locations[t] = Some(fallback);
            }
        }
        // The dead core never dispatches again.
        self.sched_wake[core] = PARKED;
        self.sched_stats.recovery_cycles += last_ready.saturating_sub(at);
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("policy", &self.policy.name())
            .field("threads", &self.threads.len())
            .field("live_threads", &self.live_threads)
            .field("total_ops", &self.total_ops)
            .field("max_clock", &self.max_clock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviour::{FixedBehaviour, OpBuilder, RepeatBehaviour};
    use crate::policy::{NullPolicy, StaticPolicy};
    use o2_sim::{ContentionModel, MachineConfig};

    fn machine() -> Machine {
        let mut cfg = MachineConfig::quad4();
        cfg.contention = ContentionModel::None;
        Machine::new(cfg)
    }

    fn engine(policy: Box<dyn SchedPolicy>) -> Engine {
        Engine::new(machine(), policy, RuntimeConfig::default())
    }

    #[test]
    fn compute_advances_the_clock() {
        let mut e = engine(Box::new(NullPolicy));
        e.spawn(
            0,
            Box::new(FixedBehaviour::new(vec![Action::Compute(1000)])),
        );
        e.run_until_cycles(10_000);
        assert!(e.core_clock(0) >= 1000);
        assert_eq!(e.live_threads(), 0);
        assert_eq!(e.machine().counters(0).busy_cycles, 1000);
    }

    #[test]
    fn memory_actions_go_through_the_machine() {
        let mut e = engine(Box::new(NullPolicy));
        let region = e.machine_mut().memory_mut().alloc(4096, 0);
        e.spawn(
            1,
            Box::new(FixedBehaviour::new(vec![
                Action::Read {
                    addr: region.addr,
                    len: 4096,
                },
                Action::Read {
                    addr: region.addr,
                    len: 4096,
                },
            ])),
        );
        e.run_until_cycles(1_000_000);
        let ctr = e.machine().counters(1);
        assert!(ctr.dram_loads > 0);
        assert!(ctr.l1_hits > 0);
        // The memory-system totals surface through the engine: the second
        // pass over the region is all L1 short-circuits.
        let ms = e.mem_stats();
        assert!(ms.l1_short_circuits >= 64);
        assert!(ms.directory_entries > 0);
    }

    #[test]
    fn annotated_ops_are_counted() {
        let mut e = engine(Box::new(NullPolicy));
        let op = OpBuilder::annotated(0x1000).compute(100).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, Some(5))));
        e.run_until_cycles(1_000_000);
        assert_eq!(e.total_ops(), 5);
        assert_eq!(e.thread_stats(0).ops_completed, 5);
        assert_eq!(e.machine().counters(0).operations_completed, 5);
    }

    #[test]
    fn run_until_ops_stops_at_target() {
        let mut e = engine(Box::new(NullPolicy));
        let op = OpBuilder::annotated(0x1000).compute(10).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
        e.run_until_ops(100);
        assert!(e.total_ops() >= 100);
        assert!(e.total_ops() < 110);
    }

    #[test]
    fn static_policy_migrates_operations_and_returns_home() {
        let mut cfg = RuntimeConfig::default();
        cfg.return_home_after_op = true;
        let mut e = Engine::new(
            machine(),
            Box::new({
                let mut p = StaticPolicy::new();
                p.assign(0x1000, 3);
                p
            }),
            cfg,
        );
        let op = OpBuilder::annotated(0x1000).compute(500).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, Some(4))));
        e.run_until_cycles(10_000_000);
        let stats = e.thread_stats(0);
        assert_eq!(stats.ops_completed, 4);
        assert_eq!(stats.migrations, 4);
        assert_eq!(stats.returns_home, 4);
        // The compute cycles of the operations landed on core 3.
        assert!(e.machine().counters(3).busy_cycles >= 4 * 500);
        assert_eq!(e.machine().counters(3).operations_completed, 4);
        assert_eq!(e.machine().counters(0).operations_completed, 0);
        assert!(e.machine().counters(0).migrations_out >= 4);
        assert!(e.machine().counters(3).migrations_in >= 4);
    }

    #[test]
    fn disabling_migration_keeps_operations_local() {
        let mut p = StaticPolicy::new();
        p.assign(0x1000, 3);
        let mut e = Engine::new(
            machine(),
            Box::new(p),
            RuntimeConfig::default().without_migration(),
        );
        let op = OpBuilder::annotated(0x1000).compute(500).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, Some(4))));
        e.run_until_cycles(10_000_000);
        assert_eq!(e.thread_stats(0).migrations, 0);
        assert_eq!(e.machine().counters(0).operations_completed, 4);
    }

    #[test]
    fn migration_cost_is_roughly_the_papers_2000_cycles() {
        // One op that migrates from core 0 to core 1 and back, with zero
        // compute: the migration cycles accounted by the runtime for the
        // round trip should land near the paper's measured 2000 cycles.
        let mut cfg = RuntimeConfig::default();
        cfg.return_home_after_op = true;
        let mut p = StaticPolicy::new();
        p.assign(0x1000, 1);
        let mut e = Engine::new(machine(), Box::new(p), cfg);
        let op = OpBuilder::annotated(0x1000).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, Some(1))));
        e.run_until_cycles(100_000);
        let stats = e.thread_stats(0);
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.returns_home, 1);
        let round_trip = stats.migration_cycles;
        assert!(
            (1400..=3000).contains(&round_trip),
            "round-trip migration cost {round_trip} outside the expected band"
        );
    }

    #[test]
    fn lock_contention_across_cores_spins() {
        let mut e = engine(Box::new(NullPolicy));
        let lock_region = e.machine_mut().memory_mut().alloc(64, 99);
        let lock = e.register_lock(lock_region.addr);
        // Two threads on different cores hammer the same lock.
        for core in 0..2 {
            let op = OpBuilder::new()
                .lock(lock)
                .compute(2000)
                .unlock(lock)
                .build();
            e.spawn(core, Box::new(RepeatBehaviour::new(op, Some(20))));
        }
        e.run_until_cycles(2_000_000);
        assert!(e.locks().total_contention() > 0);
        assert_eq!(e.locks().total_acquisitions(), 40);
        let waits: u64 = (0..2).map(|t| e.thread_stats(t).lock_wait_cycles).sum();
        assert!(waits > 0);
    }

    #[test]
    fn same_core_lock_contention_yields_instead_of_deadlocking() {
        let mut e = engine(Box::new(NullPolicy));
        let lock_region = e.machine_mut().memory_mut().alloc(64, 99);
        let lock = e.register_lock(lock_region.addr);
        // Two threads on the SAME core share a lock; cooperative scheduling
        // must interleave them rather than deadlock.
        for _ in 0..2 {
            let op = OpBuilder::new()
                .lock(lock)
                .compute(1000)
                .unlock(lock)
                .build();
            e.spawn(0, Box::new(RepeatBehaviour::new(op, Some(10))));
        }
        e.run_until_cycles(10_000_000);
        assert_eq!(e.live_threads(), 0, "threads must run to completion");
        assert_eq!(e.locks().total_acquisitions(), 20);
    }

    #[test]
    fn yield_rotates_threads_on_a_core() {
        let mut e = engine(Box::new(NullPolicy));
        let a = e.spawn(
            0,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(100), Action::Yield],
                Some(10),
            )),
        );
        let b = e.spawn(
            0,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(100), Action::Yield],
                Some(10),
            )),
        );
        e.run_until_cycles(1_000_000);
        assert_eq!(e.thread_stats(a).actions_executed, 21);
        assert_eq!(e.thread_stats(b).actions_executed, 21);
        assert_eq!(e.live_threads(), 0);
    }

    #[test]
    fn run_window_reports_throughput() {
        let mut e = engine(Box::new(NullPolicy));
        let op = OpBuilder::annotated(0x1000).compute(1000).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
        let w = e.run_window(1_000_000);
        // ~1000 ops in 1M cycles (one op per ~1000 cycles).
        assert!(w.ops > 800 && w.ops < 1100, "ops = {}", w.ops);
        assert!(w.kops_per_second() > 0.0);
        assert_eq!(w.per_core_ops.iter().sum::<u64>(), w.ops);
    }

    #[test]
    fn idle_cores_accumulate_idle_cycles() {
        let mut e = engine(Box::new(NullPolicy));
        let op = OpBuilder::annotated(0x1).compute(100).finish();
        e.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
        e.run_until_cycles(100_000);
        // Cores 1-3 had no threads: all their time is idle.
        for core in 1..4 {
            assert!(e.machine().counters(core).idle_cycles >= 90_000);
        }
        assert_eq!(e.machine().counters(0).idle_cycles, 0);
    }

    #[test]
    fn epoch_callback_fires() {
        struct EpochCounter {
            epochs: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl SchedPolicy for EpochCounter {
            fn name(&self) -> &'static str {
                "epoch-counter"
            }
            fn on_epoch(&mut self, _view: &EpochView<'_>) -> Vec<PolicyCommand> {
                self.epochs.set(self.epochs.get() + 1);
                Vec::new()
            }
        }
        let epochs = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut cfg = RuntimeConfig::default();
        cfg.epoch_cycles = 10_000;
        let mut e = Engine::new(
            machine(),
            Box::new(EpochCounter {
                epochs: epochs.clone(),
            }),
            cfg,
        );
        for core in 0..4 {
            e.spawn(
                core,
                Box::new(RepeatBehaviour::new(vec![Action::Compute(100)], None)),
            );
        }
        e.run_until_cycles(100_000);
        assert!(epochs.get() >= 8, "epochs fired: {}", epochs.get());
    }

    #[test]
    fn rehome_command_moves_queued_threads() {
        struct RehomeOnce {
            done: bool,
        }
        impl SchedPolicy for RehomeOnce {
            fn name(&self) -> &'static str {
                "rehome-once"
            }
            fn on_epoch(&mut self, _view: &EpochView<'_>) -> Vec<PolicyCommand> {
                if self.done {
                    Vec::new()
                } else {
                    self.done = true;
                    vec![PolicyCommand::RehomeThread { thread: 1, core: 2 }]
                }
            }
        }
        let mut cfg = RuntimeConfig::default();
        cfg.epoch_cycles = 5_000;
        let mut e = Engine::new(machine(), Box::new(RehomeOnce { done: false }), cfg);
        // Two threads on core 0; thread 1 gets rehomed to core 2.
        for _ in 0..2 {
            e.spawn(
                0,
                Box::new(RepeatBehaviour::new(
                    vec![Action::Compute(200), Action::Yield],
                    None,
                )),
            );
        }
        e.run_until_cycles(200_000);
        assert!(e.machine().counters(2).busy_cycles > 0);
        assert!(e.machine().counters(2).migrations_in >= 1);
    }

    #[test]
    #[should_panic(expected = "ct_end without ct_start")]
    fn ct_end_without_start_panics() {
        let mut e = engine(Box::new(NullPolicy));
        e.spawn(0, Box::new(FixedBehaviour::new(vec![Action::CtEnd])));
        e.run_until_cycles(10_000);
    }

    #[test]
    #[should_panic(expected = "ct_start inside an operation")]
    fn nested_ct_start_panics() {
        let mut e = engine(Box::new(NullPolicy));
        e.spawn(
            0,
            Box::new(FixedBehaviour::new(vec![
                Action::CtStart(1, AccessKind::Write),
                Action::CtStart(2, AccessKind::Write),
            ])),
        );
        e.run_until_cycles(10_000);
    }

    #[test]
    fn determinism_same_seeded_run_twice() {
        let run = || {
            let mut p = StaticPolicy::new();
            p.assign(0x1000, 2);
            p.assign(0x2000, 3);
            let mut e = engine(Box::new(p));
            for core in 0..4u32 {
                let obj = if core % 2 == 0 { 0x1000 } else { 0x2000 };
                let op = OpBuilder::annotated(obj).compute(300).finish();
                e.spawn(core, Box::new(RepeatBehaviour::new(op, Some(50))));
            }
            e.run_until_cycles(5_000_000);
            (
                e.total_ops(),
                e.max_clock(),
                e.machine().counters(2).busy_cycles,
                e.machine().counters(3).migrations_in,
            )
        };
        assert_eq!(run(), run());
    }

    /// Queues a background fill of object 0 into each listed core at
    /// every epoch boundary.
    struct FillEveryEpoch(Vec<CoreId>);

    impl SchedPolicy for FillEveryEpoch {
        fn name(&self) -> &'static str {
            "fill-every-epoch"
        }
        fn on_epoch(&mut self, _view: &EpochView<'_>) -> Vec<PolicyCommand> {
            self.0
                .iter()
                .map(|&core| PolicyCommand::FillReplica { object: 0, core })
                .collect()
        }
    }

    #[test]
    fn background_fills_run_on_idle_cores_and_never_on_busy_ones() {
        let mut e = Engine::new(
            machine(),
            Box::new(FillEveryEpoch(vec![0, 1])),
            RuntimeConfig::default(),
        );
        let region = e.machine_mut().memory_mut().alloc(4096, 0);
        e.register_object(ObjectDescriptor::new(0x1000, region.addr, region.size));
        // Core 0 never has a gap: an endless compute loop. Core 1 has no
        // thread at all, so only it can drain its fill queue.
        e.spawn(
            0,
            Box::new(RepeatBehaviour::new(vec![Action::Compute(1_000)], None)),
        );
        e.run_until_cycles(1_000_000);
        let ss = e.sched_stats();
        assert!(ss.replica_fills > 0, "idle core 1 never ran its fills");
        assert!(ss.replica_fill_cycles > 0);
        // The fill streamed the object through core 1's memory system and
        // was charged to core 1's clock.
        let c1 = e.machine().counters(1);
        assert!(c1.dram_loads + c1.l1_hits + c1.l2_hits > 0);
        // The saturated core never loaded a line: its queued fills were
        // discarded at each boundary, not squeezed in.
        let c0 = e.machine().counters(0);
        assert_eq!(c0.dram_loads, 0);
        assert_eq!(c0.l1_hits + c0.l2_hits + c0.l3_hits, 0);
    }

    /// A thread that sleeps `gap` cycles between tiny compute bursts —
    /// an open-loop stand-in with a controllable arrival gap.
    struct GapSleeper {
        gap: Cycles,
        rounds: u64,
    }

    impl crate::behaviour::OpGenerator for GapSleeper {
        fn next_op(&mut self, ctx: &crate::behaviour::BehaviourCtx) -> Vec<Action> {
            if self.rounds == 0 {
                return vec![];
            }
            self.rounds -= 1;
            vec![Action::IdleUntil(ctx.now + self.gap), Action::Compute(100)]
        }
    }

    #[test]
    fn fills_respect_the_gap_to_the_next_arrival() {
        // The fill estimate for a 4 KB object is size * 2 = 8192 cycles.
        // A thread waking every 3000 cycles never leaves room, so the
        // fill must stay queued; 50_000-cycle gaps fit it comfortably.
        let run = |gap: Cycles| {
            let mut e = Engine::new(
                machine(),
                Box::new(FillEveryEpoch(vec![0])),
                RuntimeConfig::default(),
            );
            let region = e.machine_mut().memory_mut().alloc(4096, 0);
            e.register_object(ObjectDescriptor::new(0x1000, region.addr, region.size));
            e.spawn(
                0,
                Box::new(crate::behaviour::OpBehaviour::new(GapSleeper {
                    gap,
                    rounds: 1_000,
                })),
            );
            e.run_until_cycles(600_000);
            e.sched_stats().replica_fills
        };
        assert_eq!(run(3_000), 0, "a fill ran in front of an imminent wake");
        assert!(run(50_000) > 0, "wide gaps never fit a fill");
    }
}
