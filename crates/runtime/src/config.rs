//! Runtime configuration: migration costs, polling, locking and epoch
//! parameters.

use crate::types::Cycles;

/// Which event core drives the engine's run loop.
///
/// All three produce bit-identical simulation results; they differ only
/// in speed and debuggability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventCoreKind {
    /// The hierarchical timing wheel with batched same-cycle dispatch —
    /// the fast default.
    #[default]
    Wheel,
    /// The previous `BinaryHeap` event queue. Kept so benchmarks can
    /// measure the wheel against the recorded baseline on the same host,
    /// and as a second implementation for equivalence tests.
    Heap,
    /// The synchronous *cycle box*: no queue at all — every step re-scans
    /// all cores' pending wakes and dispatches the earliest, advancing
    /// the machine in lockstep. O(cores) per event, but the scheduling
    /// order is directly readable from `sched_wake`, which makes it the
    /// reference implementation for deterministic debugging.
    CycleBox,
}

/// Tunable parameters of the cooperative runtime.
///
/// The defaults are calibrated so that a migrate-out/migrate-back round
/// trip (save context, transfer, destination poll delay, restore context,
/// twice) costs roughly the 2000 cycles the paper measured on the AMD
/// system; the `table_latency` harness verifies this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Cycles to save a thread context into the shared migration buffer.
    pub save_context_cycles: Cycles,
    /// Cycles to restore a thread context from the migration buffer.
    pub restore_context_cycles: Cycles,
    /// Interval at which a destination core polls its migration inbox; on
    /// average a migrating thread waits half of this on top of the
    /// save/transfer/restore costs.
    pub poll_interval_cycles: Cycles,
    /// Cycles burned per spin-lock retry while the lock is held by a thread
    /// on a *different* core.
    pub lock_spin_cycles: Cycles,
    /// Cycles charged for a successful lock acquire / release, in addition
    /// to the memory access on the lock word.
    pub lock_op_cycles: Cycles,
    /// Cycles charged for a voluntary yield.
    pub yield_cycles: Cycles,
    /// Whether `Placement::On` decisions are honoured. Disabling this turns
    /// any policy into the plain thread scheduler; it exists so experiments
    /// can hold everything else constant.
    pub migration_enabled: bool,
    /// Whether a migrated thread returns to its home core after `ct_end`.
    /// The paper's `ct_end` only marks the thread "ready to run on another
    /// core"; leaving it where it is until the next `ct_start` decides a
    /// destination saves one migration per operation, so this defaults to
    /// `false`.
    pub return_home_after_op: bool,
    /// Interval between policy epochs (rebalancing opportunities).
    pub epoch_cycles: Cycles,
    /// Round-robin quantum for threads sharing a core.
    pub quantum_cycles: Cycles,
    /// How far an idle core's clock advances per simulation step. Retained
    /// for configuration compatibility: the event-driven engine parks idle
    /// cores outright instead of stepping them, so this no longer affects
    /// results.
    pub idle_step_cycles: Cycles,
    /// When `true`, a thread that finds a lock held *blocks* (its core can
    /// park) and the holder's release wakes it, instead of the default
    /// paper-faithful spinning. Spinning burns cycles and coherence
    /// traffic; blocking models a runtime with sleeping mutexes.
    pub blocking_locks: bool,
    /// Which event core drives the run loop. All kinds are bit-identical
    /// in results; see [`EventCoreKind`].
    pub event_core: EventCoreKind,
    /// How many times a migration send is retried when the context message
    /// is lost on a degraded interconnect (fault injection). The first
    /// attempt is not a retry; zero means a single lossy send fails the
    /// migration outright.
    pub migration_max_retries: u32,
    /// Backoff charged on the source core before the first migration
    /// retry; doubles on each subsequent retry.
    pub migration_retry_backoff_cycles: Cycles,
    /// Total backoff budget for one migration: once the accumulated
    /// backoff reaches this, the migration times out and the operation
    /// runs where the thread already is.
    pub migration_timeout_cycles: Cycles,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            save_context_cycles: 400,
            restore_context_cycles: 400,
            poll_interval_cycles: 400,
            lock_spin_cycles: 60,
            lock_op_cycles: 20,
            yield_cycles: 20,
            migration_enabled: true,
            return_home_after_op: false,
            epoch_cycles: 200_000,
            quantum_cycles: 50_000,
            idle_step_cycles: 400,
            blocking_locks: false,
            event_core: EventCoreKind::default(),
            migration_max_retries: 4,
            migration_retry_backoff_cycles: 200,
            migration_timeout_cycles: 8_000,
        }
    }
}

impl RuntimeConfig {
    /// Expected one-way migration cost excluding the interconnect transfer:
    /// context save + average poll delay + context restore.
    pub fn expected_migration_cycles(&self) -> Cycles {
        self.save_context_cycles + self.poll_interval_cycles / 2 + self.restore_context_cycles
    }

    /// Scales every migration-related cost so that the expected one-way
    /// migration cost becomes approximately `target` cycles. Used by the
    /// migration-cost ablation (Section 6.1 discusses how hardware support
    /// such as active messages could reduce this cost).
    pub fn with_migration_cost(mut self, target: Cycles) -> Self {
        let current = self.expected_migration_cycles().max(1);
        let scale = target as f64 / current as f64;
        self.save_context_cycles = ((self.save_context_cycles as f64) * scale).round() as u64;
        self.restore_context_cycles = ((self.restore_context_cycles as f64) * scale).round() as u64;
        self.poll_interval_cycles =
            (((self.poll_interval_cycles as f64) * scale).round() as u64).max(2);
        self
    }

    /// Disables operation migration (turning any policy into the baseline
    /// thread scheduler).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    /// Makes contended locks block (and park their core) instead of
    /// spinning; the holder's release wakes the first waiter.
    pub fn with_blocking_locks(mut self) -> Self {
        self.blocking_locks = true;
        self
    }

    /// Selects the event core driving the run loop.
    pub fn with_event_core(mut self, kind: EventCoreKind) -> Self {
        self.event_core = kind;
        self
    }

    /// Selects the synchronous cycle-box event core: lockstep dispatch by
    /// an O(cores) scan, for deterministic debugging. Results are
    /// bit-identical to the default wheel; only speed differs.
    pub fn with_cycle_box(mut self) -> Self {
        self.event_core = EventCoreKind::CycleBox;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_cycles == 0 {
            return Err("epoch_cycles must be positive".into());
        }
        if self.quantum_cycles == 0 {
            return Err("quantum_cycles must be positive".into());
        }
        if self.idle_step_cycles == 0 {
            return Err("idle_step_cycles must be positive".into());
        }
        if self.poll_interval_cycles == 0 {
            return Err("poll_interval_cycles must be positive".into());
        }
        if self.migration_retry_backoff_cycles == 0 {
            return Err("migration_retry_backoff_cycles must be positive".into());
        }
        if self.migration_timeout_cycles < self.migration_retry_backoff_cycles {
            return Err("migration_timeout_cycles must cover at least one backoff".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_migration_round_trip_is_about_2000_cycles() {
        let cfg = RuntimeConfig::default();
        let one_way = cfg.expected_migration_cycles();
        assert!(
            (1500..=2500).contains(&(2 * one_way)),
            "expected ~2000 cycle round trip, got {}",
            2 * one_way
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn with_migration_cost_scales_towards_target() {
        let cfg = RuntimeConfig::default().with_migration_cost(8000);
        let c = cfg.expected_migration_cycles();
        assert!((7000..=9000).contains(&c), "got {c}");

        let cheap = RuntimeConfig::default().with_migration_cost(200);
        let c = cheap.expected_migration_cycles();
        assert!(c <= 400, "got {c}");
        cheap.validate().unwrap();
    }

    #[test]
    fn without_migration_disables_migration() {
        let cfg = RuntimeConfig::default().without_migration();
        assert!(!cfg.migration_enabled);
    }

    #[test]
    fn validate_rejects_zero_intervals() {
        let mut cfg = RuntimeConfig::default();
        cfg.epoch_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RuntimeConfig::default();
        cfg.quantum_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RuntimeConfig::default();
        cfg.idle_step_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RuntimeConfig::default();
        cfg.poll_interval_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RuntimeConfig::default();
        cfg.migration_retry_backoff_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RuntimeConfig::default();
        cfg.migration_timeout_cycles = cfg.migration_retry_backoff_cycles - 1;
        assert!(cfg.validate().is_err());
    }
}
