//! The "instruction set" of a runtime thread.
//!
//! Rust cannot suspend an arbitrary function mid-body without OS threads,
//! so workload threads are expressed as state machines that emit a stream
//! of [`Action`]s. The structure mirrors the paper's programming model
//! directly: compute, memory accesses, per-object locks, and the
//! `ct_start` / `ct_end` annotations that bracket an operation on an
//! object (Figure 3 of the paper).

use crate::types::{Cycles, LockId, ObjectId};
use o2_sim::{AccessKind, Addr};

/// A single step of a thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute `cycles` of pure computation (no memory traffic).
    Compute(u64),
    /// Read `len` bytes starting at `addr`.
    Read {
        /// Starting byte address.
        addr: Addr,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes starting at `addr`.
    Write {
        /// Starting byte address.
        addr: Addr,
        /// Length in bytes.
        len: u64,
    },
    /// Acquire a registered spin lock (retries until it succeeds).
    Lock(LockId),
    /// Release a registered spin lock.
    Unlock(LockId),
    /// `ct_start(object)`: begin an operation on an object, declaring
    /// whether the operation reads or mutates it. The scheduling policy may
    /// migrate the thread to the core caching the object; the access kind
    /// lets it serve reads from replicas and invalidate them on writes.
    CtStart(ObjectId, AccessKind),
    /// `ct_end()`: finish the current operation. If the thread migrated,
    /// it becomes ready to run on its home core again.
    CtEnd,
    /// Voluntarily yield the core to another runnable thread.
    Yield,
    /// Sleep until the core's clock reaches the given cycle, releasing the
    /// core to other runnable threads in the meantime. A target at or
    /// before the current clock is a no-op. Open-loop arrival processes
    /// use this to wait for the next request without burning busy cycles.
    IdleUntil(Cycles),
    /// Terminate the thread.
    Exit,
}

impl Action {
    /// Whether this action touches memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Action::Read { .. } | Action::Write { .. })
    }

    /// Whether this action is a scheduling annotation.
    pub fn is_annotation(&self) -> bool {
        matches!(self, Action::CtStart(..) | Action::CtEnd)
    }
}

/// Description of a schedulable object, supplied when the object is
/// registered with the runtime (and forwarded to the scheduling policy).
///
/// The paper's CoreTime learns object identity from the `ct_start`
/// argument and sizes/costs from event counters; the descriptor carries the
/// statically known part (address range) plus optional hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectDescriptor {
    /// The object's identity (its base address, as in the paper).
    pub id: ObjectId,
    /// First byte of the object's data.
    pub addr: Addr,
    /// Size of the object's data in bytes.
    pub size: u64,
    /// Hint: the object is read-mostly and could be replicated instead of
    /// partitioned (Section 6.2).
    pub read_mostly: bool,
    /// The spin lock guarding the object, if any.
    pub lock: Option<LockId>,
}

impl ObjectDescriptor {
    /// Creates a descriptor for an object spanning `[addr, addr + size)`.
    pub fn new(id: ObjectId, addr: Addr, size: u64) -> Self {
        Self {
            id,
            addr,
            size,
            read_mostly: false,
            lock: None,
        }
    }

    /// Marks the object as read-mostly.
    pub fn read_mostly(mut self, value: bool) -> Self {
        self.read_mostly = value;
        self
    }

    /// Associates a guarding lock.
    pub fn with_lock(mut self, lock: LockId) -> Self {
        self.lock = Some(lock);
        self
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.addr + self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(Action::Read { addr: 0, len: 64 }.is_memory());
        assert!(Action::Write { addr: 0, len: 64 }.is_memory());
        assert!(!Action::Compute(10).is_memory());
        assert!(Action::CtStart(1, AccessKind::Write).is_annotation());
        assert!(Action::CtStart(1, AccessKind::Read).is_annotation());
        assert!(Action::CtEnd.is_annotation());
        assert!(!Action::Yield.is_annotation());
    }

    #[test]
    fn descriptor_builder() {
        let d = ObjectDescriptor::new(0x1000, 0x1000, 4096)
            .read_mostly(true)
            .with_lock(3);
        assert_eq!(d.id, 0x1000);
        assert_eq!(d.end(), 0x2000);
        assert!(d.read_mostly);
        assert_eq!(d.lock, Some(3));
    }
}
