//! Run statistics and throughput computation.

use crate::types::Cycles;
use o2_metrics::LatencySummary;

/// Statistics of the event-driven scheduler loop.
///
/// The interesting property these expose: `events_processed` scales with
/// the amount of *work*, not with `cores × cycles` — a machine where 15 of
/// 16 cores are parked processes no more events than a single-core run of
/// the same workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events popped from the queue and dispatched to a core.
    pub events_processed: u64,
    /// Superseded heap entries discarded without dispatching.
    pub stale_events: u64,
    /// Dispatches that woke a core with no runnable thread (migration
    /// arrivals, lock hand-offs, spawns onto a parked core).
    pub park_wakeups: u64,
    /// Times a core was parked (left the event queue entirely).
    pub parks: u64,
    /// Blocked threads handed a lock and woken by a release.
    pub lock_wakeups: u64,
    /// High-water mark of events resident in the timing wheel at once.
    /// Zero unless the wheel event core is active (the default).
    pub wheel_occupancy_hwm: u64,
    /// Wheel entries re-filed to a finer level (or staged directly) when
    /// the cursor crossed a coarse slot or reached the overflow set.
    pub wheel_cascades: u64,
    /// Wheel insertions beyond the horizon, into the ordered overflow set.
    pub wheel_overflows: u64,
    /// Largest same-cycle dispatch batch the wheel staged at once.
    pub wheel_max_batch: u64,
    /// Fault-plan edges applied (window starts and ends each count once).
    pub faults_applied: u64,
    /// Cores taken permanently offline by the fault plan.
    pub cores_offlined: u64,
    /// Core slowdown windows opened by the fault plan.
    pub cores_slowed: u64,
    /// Migration sends retried after a loss on a degraded interconnect.
    pub migration_retries: u64,
    /// Migrations abandoned after the retry budget or timeout ran out.
    pub migration_failures: u64,
    /// Threads drained off an offlined core and re-pinned to a live one.
    pub threads_repinned: u64,
    /// Cycles between each offlining and the arrival of its last drained
    /// thread at the fallback core — how long recovery took.
    pub recovery_cycles: u64,
    /// Threads put to sleep by an [`Action::IdleUntil`](crate::Action)
    /// with a future target (open-loop arrival waits).
    pub sleeps: u64,
    /// Background replica fills completed: objects streamed into a core's
    /// caches while that core had nothing runnable (replica serving's
    /// idle-time data movement). Zero in any saturated run.
    pub replica_fills: u64,
    /// Cycles spent on background replica fills, charged to otherwise
    /// idle cores.
    pub replica_fill_cycles: u64,
    /// Streaming percentiles of per-operation service latency
    /// (`ct_start` → `ct_end`, in cycles on the executing core), from the
    /// engine's constant-memory quantile sketch.
    pub op_latency: LatencySummary,
}

/// Result of running the engine over a measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunWindow {
    /// Virtual time at the start of the window.
    pub start: Cycles,
    /// Virtual time at the end of the window.
    pub end: Cycles,
    /// Operations completed during the window (machine-wide).
    pub ops: u64,
    /// Operations completed during the window, per core.
    pub per_core_ops: Vec<u64>,
    /// Core clock frequency in GHz, used to convert cycles to seconds.
    pub clock_ghz: f64,
}

impl RunWindow {
    /// Length of the window in cycles.
    pub fn cycles(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }

    /// Window length in seconds of virtual time.
    pub fn seconds(&self) -> f64 {
        self.cycles() as f64 / (self.clock_ghz * 1e9)
    }

    /// Operations per second of virtual time.
    pub fn ops_per_second(&self) -> f64 {
        let s = self.seconds();
        if s <= 0.0 {
            0.0
        } else {
            self.ops as f64 / s
        }
    }

    /// Throughput in the units of Figure 4: thousands of resolutions per
    /// second.
    pub fn kops_per_second(&self) -> f64 {
        self.ops_per_second() / 1000.0
    }

    /// Average cycles per completed operation.
    pub fn cycles_per_op(&self) -> f64 {
        if self.ops == 0 {
            f64::INFINITY
        } else {
            self.cycles() as f64 / self.ops as f64
        }
    }

    /// Coefficient of variation of per-core operation counts: 0 means the
    /// load was perfectly balanced across cores.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.per_core_ops.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.per_core_ops.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_core_ops
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> RunWindow {
        RunWindow {
            start: 1_000,
            end: 2_001_000,
            ops: 4_000,
            per_core_ops: vec![1_000, 1_000, 1_000, 1_000],
            clock_ghz: 2.0,
        }
    }

    #[test]
    fn throughput_conversion() {
        let w = window();
        assert_eq!(w.cycles(), 2_000_000);
        // 2M cycles at 2 GHz = 1 ms; 4000 ops in 1 ms = 4M ops/s.
        assert!((w.seconds() - 0.001).abs() < 1e-12);
        assert!((w.ops_per_second() - 4.0e6).abs() < 1.0);
        assert!((w.kops_per_second() - 4000.0).abs() < 1e-6);
        assert!((w.cycles_per_op() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_balanced_load_has_zero_imbalance() {
        assert_eq!(window().load_imbalance(), 0.0);
    }

    #[test]
    fn imbalanced_load_is_detected() {
        let mut w = window();
        w.per_core_ops = vec![4000, 0, 0, 0];
        assert!(w.load_imbalance() > 1.0);
    }

    #[test]
    fn zero_ops_gives_infinite_cycles_per_op() {
        let mut w = window();
        w.ops = 0;
        assert!(w.cycles_per_op().is_infinite());
        assert_eq!(w.ops_per_second(), 0.0);
    }

    #[test]
    fn empty_window_is_safe() {
        let w = RunWindow {
            start: 10,
            end: 10,
            ops: 0,
            per_core_ops: vec![],
            clock_ghz: 2.0,
        };
        assert_eq!(w.cycles(), 0);
        assert_eq!(w.ops_per_second(), 0.0);
        assert_eq!(w.load_imbalance(), 0.0);
    }
}
