//! The object index: interns sparse object keys (addresses) into dense
//! ids and stores the descriptor slab.
//!
//! Every `ct_start` consults this table, so it uses the same recipe as the
//! simulator's flat coherence directory rather than `std::collections::HashMap`:
//! open addressing over a power-of-two slot array, Fibonacci hashing, and
//! linear probing, with all state inline in one allocation. Keys are never
//! removed (an object, once seen, keeps its dense id for the lifetime of
//! the engine), which keeps the table tombstone-free by construction.

use crate::action::ObjectDescriptor;
use crate::types::{DenseObjectId, ObjectId};

/// Sentinel for an empty slot. Object keys are addresses, so `u64::MAX`
/// is unreachable.
const EMPTY: ObjectId = ObjectId::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: ObjectId,
    dense: DenseObjectId,
}

const VACANT: Slot = Slot {
    key: EMPTY,
    dense: 0,
};

/// Interns object keys to dense ids and owns the descriptor slab.
#[derive(Debug, Clone)]
pub struct ObjectIndex {
    slots: Box<[Slot]>,
    mask: usize,
    /// Descriptor per dense id; synthesized (zero-sized, key-addressed)
    /// until the object is explicitly registered.
    descs: Vec<ObjectDescriptor>,
    /// Whether each dense id has been explicitly registered.
    registered: Vec<bool>,
}

impl Default for ObjectIndex {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl ObjectIndex {
    /// Creates an index with at least `cap` slots (rounded up to a power
    /// of two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(8);
        Self {
            slots: vec![VACANT; cap].into_boxed_slice(),
            mask: cap - 1,
            descs: Vec::new(),
            registered: Vec::new(),
        }
    }

    /// Number of distinct objects interned so far.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether no object has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    #[inline]
    fn home(&self, key: ObjectId) -> usize {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & self.mask
    }

    /// Dense id of `key`, interning it (with a synthesized descriptor) on
    /// first sight. Dense ids are assigned contiguously in first-touch
    /// order, so they index straight into the slabs kept by policies.
    #[inline]
    pub fn intern(&mut self, key: ObjectId) -> DenseObjectId {
        // A hard assert (not debug-only): `u64::MAX` is the vacant-slot
        // sentinel, and letting it through would silently alias the key
        // to whatever dense id sits in the first vacant slot probed.
        assert_ne!(key, EMPTY, "object key u64::MAX is reserved");
        if (self.descs.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let slot = self.slots[i];
            if slot.key == key {
                return slot.dense;
            }
            if slot.key == EMPTY {
                let dense = self.descs.len() as DenseObjectId;
                self.slots[i] = Slot { key, dense };
                self.descs.push(ObjectDescriptor::new(key, key, 0));
                self.registered.push(false);
                return dense;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Dense id of `key` if it has been seen before.
    #[inline]
    pub fn get(&self, key: ObjectId) -> Option<DenseObjectId> {
        if key == EMPTY {
            // The sentinel would "match" any vacant slot.
            return None;
        }
        let mut i = self.home(key);
        loop {
            let slot = self.slots[i];
            if slot.key == key {
                return Some(slot.dense);
            }
            if slot.key == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Interns `desc.id` and records the descriptor; returns the dense id.
    pub fn register(&mut self, desc: ObjectDescriptor) -> DenseObjectId {
        let dense = self.intern(desc.id);
        self.descs[dense as usize] = desc;
        self.registered[dense as usize] = true;
        dense
    }

    /// The descriptor of a dense id (synthesized if never registered).
    #[inline]
    pub fn descriptor(&self, dense: DenseObjectId) -> &ObjectDescriptor {
        &self.descs[dense as usize]
    }

    /// The external key of a dense id.
    #[inline]
    pub fn key_of(&self, dense: DenseObjectId) -> ObjectId {
        self.descs[dense as usize].id
    }

    /// Whether a dense id was explicitly registered (rather than
    /// auto-interned at `ct_start`).
    pub fn is_registered(&self, dense: DenseObjectId) -> bool {
        self.registered[dense as usize]
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap].into_boxed_slice());
        self.mask = new_cap - 1;
        for slot in old.iter().filter(|s| s.key != EMPTY) {
            let mut i = self.home(slot.key);
            loop {
                if self.slots[i].key == EMPTY {
                    self.slots[i] = *slot;
                    break;
                }
                i = (i + 1) & self.mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_dense_ids_in_first_touch_order() {
        let mut idx = ObjectIndex::default();
        assert_eq!(idx.intern(0x9000), 0);
        assert_eq!(idx.intern(0x1000), 1);
        assert_eq!(idx.intern(0x9000), 0, "stable on re-intern");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.key_of(0), 0x9000);
        assert_eq!(idx.key_of(1), 0x1000);
        assert_eq!(idx.get(0x1000), Some(1));
        assert_eq!(idx.get(0x2000), None);
    }

    #[test]
    fn register_overwrites_the_synthesized_descriptor() {
        let mut idx = ObjectIndex::default();
        let d = idx.intern(0x5000);
        assert!(!idx.is_registered(d));
        assert_eq!(idx.descriptor(d).size, 0);
        let d2 = idx.register(ObjectDescriptor::new(0x5000, 0x5000, 4096));
        assert_eq!(d, d2, "registration keeps the interned dense id");
        assert!(idx.is_registered(d));
        assert_eq!(idx.descriptor(d).size, 4096);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut idx = ObjectIndex::with_capacity(8);
        for key in 0..1000u64 {
            assert_eq!(idx.intern(key * 64), key as DenseObjectId);
        }
        assert_eq!(idx.len(), 1000);
        for key in 0..1000u64 {
            assert_eq!(idx.get(key * 64), Some(key as DenseObjectId), "key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn the_sentinel_key_is_rejected() {
        ObjectIndex::default().intern(u64::MAX);
    }

    #[test]
    fn get_of_the_sentinel_key_is_none() {
        let mut idx = ObjectIndex::default();
        idx.intern(1);
        assert_eq!(idx.get(u64::MAX), None);
    }

    #[test]
    fn colliding_keys_stay_distinct() {
        // Keys a multiple of the initial capacity apart collide in the
        // low bits; Fibonacci hashing plus probing must keep them apart.
        let mut idx = ObjectIndex::with_capacity(8);
        let keys: Vec<u64> = (1..=64u64).map(|i| i * 8).collect();
        for &k in &keys {
            idx.intern(k);
        }
        let mut seen: Vec<DenseObjectId> = keys.iter().map(|&k| idx.get(k).unwrap()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), keys.len());
    }
}
