//! The object index: interns sparse object keys (addresses) into dense
//! ids and stores the descriptor slab.
//!
//! Every `ct_start` consults this table, so it runs on the workspace's
//! shared flat recipe rather than `std::collections::HashMap`: an
//! [`o2_collections::Interner`] (open addressing over a power-of-two slot
//! array, Fibonacci hashing, linear probing, all state inline in one
//! allocation) paired with [`o2_collections::Slab`]s for the per-id
//! payloads. Keys are never removed (an object, once seen, keeps its
//! dense id for the lifetime of the engine), which keeps the table
//! tombstone-free by construction.

use o2_collections::{IdSpaceExhausted, Interner, Slab};

use crate::action::ObjectDescriptor;
use crate::types::{DenseObjectId, ObjectId};

/// Sentinel for an empty slot. Object keys are addresses, so `u64::MAX`
/// is unreachable.
const EMPTY: ObjectId = ObjectId::MAX;

/// Interns object keys to dense ids and owns the descriptor slab.
#[derive(Debug, Clone)]
pub struct ObjectIndex {
    interner: Interner,
    /// Descriptor per dense id; synthesized (zero-sized, key-addressed)
    /// until the object is explicitly registered.
    descs: Slab<ObjectDescriptor>,
    /// Whether each dense id has been explicitly registered.
    registered: Slab<bool>,
}

impl Default for ObjectIndex {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl ObjectIndex {
    /// Creates an index with at least `cap` slots (rounded up to a power
    /// of two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            interner: Interner::with_capacity(cap),
            descs: Slab::with_capacity(cap),
            registered: Slab::with_capacity(cap),
        }
    }

    /// Creates an index whose dense-id space is capped at `limit` ids
    /// (instead of the full `u32` range). Used by exhaustion tests; real
    /// engines keep the default limit.
    pub fn with_id_limit(cap: usize, limit: u32) -> Self {
        Self {
            interner: Interner::with_id_limit(cap, limit),
            descs: Slab::with_capacity(cap),
            registered: Slab::with_capacity(cap),
        }
    }

    /// Pre-sizes the index for `additional` more objects, so interning
    /// them triggers no rehash and no slab growth (the scale tier's
    /// allocation-free steady state).
    pub fn reserve(&mut self, additional: usize) {
        self.interner.reserve(additional);
        self.descs.reserve(additional);
        self.registered.reserve(additional);
    }

    /// Heap bytes held by the index: the interner's slot array plus both
    /// per-id slabs. Measured from capacities, so it is an upper bound on
    /// live data and exact for the pre-sized scale tier.
    pub fn footprint_bytes(&self) -> u64 {
        self.interner.footprint_bytes()
            + self.descs.footprint_bytes()
            + self.registered.footprint_bytes()
    }

    /// Number of distinct objects interned so far.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether no object has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Dense id of `key`, interning it (with a synthesized descriptor) on
    /// first sight. Dense ids are assigned contiguously in first-touch
    /// order, so they index straight into the slabs kept by policies.
    #[inline]
    pub fn intern(&mut self, key: ObjectId) -> DenseObjectId {
        self.try_intern(key)
            .unwrap_or_else(|e| panic!("object index: {e}"))
    }

    /// Fallible form of [`ObjectIndex::intern`]: a previously unseen key
    /// with no dense id left below the limit returns the typed
    /// [`IdSpaceExhausted`] error instead of panicking. Already-interned
    /// keys always resolve.
    #[inline]
    pub fn try_intern(&mut self, key: ObjectId) -> Result<DenseObjectId, IdSpaceExhausted> {
        // A hard assert (not debug-only): `u64::MAX` is the vacant-slot
        // sentinel, and letting it through would silently alias the key
        // to whatever dense id sits in the first vacant slot probed.
        assert_ne!(key, EMPTY, "object key u64::MAX is reserved");
        let (dense, new) = self.interner.try_intern(key)?;
        if new {
            self.descs.push(ObjectDescriptor::new(key, key, 0));
            self.registered.push(false);
        }
        Ok(dense)
    }

    /// Dense id of `key` if it has been seen before.
    #[inline]
    pub fn get(&self, key: ObjectId) -> Option<DenseObjectId> {
        self.interner.get(key)
    }

    /// Interns `desc.id` and records the descriptor; returns the dense id.
    pub fn register(&mut self, desc: ObjectDescriptor) -> DenseObjectId {
        let dense = self.intern(desc.id);
        self.descs[dense] = desc;
        self.registered[dense] = true;
        dense
    }

    /// The descriptor of a dense id (synthesized if never registered).
    #[inline]
    pub fn descriptor(&self, dense: DenseObjectId) -> &ObjectDescriptor {
        &self.descs[dense]
    }

    /// The external key of a dense id.
    #[inline]
    pub fn key_of(&self, dense: DenseObjectId) -> ObjectId {
        self.descs[dense].id
    }

    /// Whether a dense id was explicitly registered (rather than
    /// auto-interned at `ct_start`).
    pub fn is_registered(&self, dense: DenseObjectId) -> bool {
        self.registered[dense]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_dense_ids_in_first_touch_order() {
        let mut idx = ObjectIndex::default();
        assert_eq!(idx.intern(0x9000), 0);
        assert_eq!(idx.intern(0x1000), 1);
        assert_eq!(idx.intern(0x9000), 0, "stable on re-intern");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.key_of(0), 0x9000);
        assert_eq!(idx.key_of(1), 0x1000);
        assert_eq!(idx.get(0x1000), Some(1));
        assert_eq!(idx.get(0x2000), None);
    }

    #[test]
    fn register_overwrites_the_synthesized_descriptor() {
        let mut idx = ObjectIndex::default();
        let d = idx.intern(0x5000);
        assert!(!idx.is_registered(d));
        assert_eq!(idx.descriptor(d).size, 0);
        let d2 = idx.register(ObjectDescriptor::new(0x5000, 0x5000, 4096));
        assert_eq!(d, d2, "registration keeps the interned dense id");
        assert!(idx.is_registered(d));
        assert_eq!(idx.descriptor(d).size, 4096);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut idx = ObjectIndex::with_capacity(8);
        for key in 0..1000u64 {
            assert_eq!(idx.intern(key * 64), key as DenseObjectId);
        }
        assert_eq!(idx.len(), 1000);
        for key in 0..1000u64 {
            assert_eq!(idx.get(key * 64), Some(key as DenseObjectId), "key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn the_sentinel_key_is_rejected() {
        ObjectIndex::default().intern(u64::MAX);
    }

    #[test]
    fn exhaustion_is_a_typed_error_and_existing_keys_survive() {
        let mut idx = ObjectIndex::with_id_limit(8, 3);
        for key in 0..3u64 {
            assert_eq!(idx.try_intern(key * 64), Ok(key as DenseObjectId));
        }
        let err = idx.try_intern(0x9999).unwrap_err();
        assert_eq!(err.limit, 3);
        // At the limit, re-interning a known key still resolves.
        assert_eq!(idx.try_intern(64), Ok(1));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn reserve_presizes_and_footprint_is_reported() {
        let mut idx = ObjectIndex::with_capacity(8);
        idx.reserve(1000);
        let before = idx.footprint_bytes();
        assert!(before > 0);
        for key in 0..1000u64 {
            idx.intern((key + 1) * 64);
        }
        assert_eq!(
            idx.footprint_bytes(),
            before,
            "pre-sized interning must not grow the index"
        );
    }

    #[test]
    fn get_of_the_sentinel_key_is_none() {
        let mut idx = ObjectIndex::default();
        idx.intern(1);
        assert_eq!(idx.get(u64::MAX), None);
    }

    #[test]
    fn colliding_keys_stay_distinct() {
        // Keys a multiple of the initial capacity apart collide in the
        // low bits; Fibonacci hashing plus probing must keep them apart.
        let mut idx = ObjectIndex::with_capacity(8);
        let keys: Vec<u64> = (1..=64u64).map(|i| i * 8).collect();
        for &k in &keys {
            idx.intern(k);
        }
        let mut seen: Vec<DenseObjectId> = keys.iter().map(|&k| idx.get(k).unwrap()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), keys.len());
    }
}
