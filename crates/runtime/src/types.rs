//! Identifier types shared across the runtime.

/// Identifies a (virtual) core. Matches the simulator's core indices.
pub type CoreId = u32;

/// Identifies a runtime thread.
pub type ThreadId = usize;

/// Identifies a schedulable object by name.
///
/// As in the paper, an object is named by an address: `ct_start` takes
/// "one argument that specifies the address that identifies an object".
/// Internally the runtime interns every key it sees into a
/// [`DenseObjectId`]; the sparse key only appears at the API boundary
/// (actions, descriptors) and in reports.
pub type ObjectId = u64;

/// Dense object identifier: an index into the runtime's object slab,
/// assigned in first-touch order by [`crate::engine::Engine`]'s object
/// index. Policies receive dense ids so their tables can be flat arrays
/// instead of hash maps.
pub type DenseObjectId = u32;

/// Identifies a registered spin lock.
pub type LockId = usize;

/// Virtual time, in cycles.
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_plain_integers() {
        let c: CoreId = 3;
        let t: ThreadId = 7;
        let o: ObjectId = 0x1000;
        let l: LockId = 2;
        let cy: Cycles = 100;
        assert_eq!(c + 1, 4);
        assert_eq!(t + 1, 8);
        assert_eq!(o + 1, 0x1001);
        assert_eq!(l + 1, 3);
        assert_eq!(cy + 1, 101);
    }
}
