//! Thread behaviours: the code a thread "runs", expressed as an action
//! stream.

use std::collections::VecDeque;

use crate::action::Action;
use crate::types::{CoreId, Cycles, ThreadId};
use o2_sim::AccessKind;

/// Read-only context handed to a behaviour when it is asked for its next
/// action.
#[derive(Debug, Clone, Copy)]
pub struct BehaviourCtx {
    /// The thread's identifier.
    pub thread: ThreadId,
    /// The core the thread is currently executing on.
    pub core: CoreId,
    /// The thread's home core.
    pub home_core: CoreId,
    /// The executing core's local clock.
    pub now: Cycles,
    /// Operations this thread has completed so far.
    pub ops_completed: u64,
}

/// The code of a thread.
///
/// The engine repeatedly asks for the next [`Action`]; returning
/// [`Action::Exit`] terminates the thread.
pub trait ThreadBehaviour {
    /// Produces the thread's next action.
    fn next_action(&mut self, ctx: &BehaviourCtx) -> Action;
}

/// Generates one *operation* (a batch of actions, typically bracketed by
/// `CtStart`/`CtEnd`) at a time.
///
/// Most workloads are loops around a single operation — exactly the shape
/// of the directory-lookup pseudo-code in Figures 1 and 3 of the paper —
/// so this is the most convenient way to write them. Wrap a generator in
/// [`OpBehaviour`] to obtain a [`ThreadBehaviour`].
pub trait OpGenerator {
    /// Produces the actions of the next operation, or an empty vector to
    /// terminate the thread.
    fn next_op(&mut self, ctx: &BehaviourCtx) -> Vec<Action>;
}

impl OpGenerator for Box<dyn OpGenerator> {
    fn next_op(&mut self, ctx: &BehaviourCtx) -> Vec<Action> {
        (**self).next_op(ctx)
    }
}

/// Adapts an [`OpGenerator`] into a [`ThreadBehaviour`] by buffering one
/// operation at a time.
pub struct OpBehaviour<G> {
    generator: G,
    queue: VecDeque<Action>,
}

impl<G: OpGenerator> OpBehaviour<G> {
    /// Wraps a generator.
    pub fn new(generator: G) -> Self {
        Self {
            generator,
            queue: VecDeque::new(),
        }
    }

    /// Access to the wrapped generator.
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Mutable access to the wrapped generator.
    pub fn generator_mut(&mut self) -> &mut G {
        &mut self.generator
    }
}

impl<G: OpGenerator> ThreadBehaviour for OpBehaviour<G> {
    fn next_action(&mut self, ctx: &BehaviourCtx) -> Action {
        if let Some(a) = self.queue.pop_front() {
            return a;
        }
        let op = self.generator.next_op(ctx);
        if op.is_empty() {
            return Action::Exit;
        }
        self.queue = op.into();
        self.queue.pop_front().unwrap_or(Action::Exit)
    }
}

/// A behaviour that plays back a fixed list of actions and then exits.
/// Useful in tests.
#[derive(Debug, Clone)]
pub struct FixedBehaviour {
    actions: VecDeque<Action>,
}

impl FixedBehaviour {
    /// Creates a behaviour from a list of actions. An `Exit` is appended
    /// automatically if absent.
    pub fn new(actions: Vec<Action>) -> Self {
        let mut actions: VecDeque<Action> = actions.into();
        if actions.back() != Some(&Action::Exit) {
            actions.push_back(Action::Exit);
        }
        Self { actions }
    }
}

impl ThreadBehaviour for FixedBehaviour {
    fn next_action(&mut self, _ctx: &BehaviourCtx) -> Action {
        self.actions.pop_front().unwrap_or(Action::Exit)
    }
}

/// A behaviour that repeats a fixed operation a given number of times
/// (or forever when constructed with `None`). Useful in tests and
/// micro-benchmarks.
#[derive(Debug, Clone)]
pub struct RepeatBehaviour {
    op: Vec<Action>,
    remaining: Option<u64>,
    /// Replay position within `op`; starting past the end forces the
    /// repetition bookkeeping on the first call. Index replay keeps this
    /// allocation-free — it sits on the engine's hottest path (a
    /// compute+yield thread re-enters it every other action).
    pos: usize,
}

impl RepeatBehaviour {
    /// Repeats `op` `times` times (forever if `None`).
    pub fn new(op: Vec<Action>, times: Option<u64>) -> Self {
        let pos = op.len();
        Self {
            op,
            remaining: times,
            pos,
        }
    }
}

impl ThreadBehaviour for RepeatBehaviour {
    fn next_action(&mut self, _ctx: &BehaviourCtx) -> Action {
        if let Some(&a) = self.op.get(self.pos) {
            self.pos += 1;
            return a;
        }
        match self.remaining {
            Some(0) => return Action::Exit,
            Some(ref mut n) => *n -= 1,
            None => {}
        }
        if self.op.is_empty() {
            return Action::Exit;
        }
        self.pos = 1;
        self.op[0]
    }
}

/// Builder for the action list of one annotated operation, mirroring the
/// `ct_start` / body / `ct_end` structure of Figure 3.
#[derive(Debug, Default, Clone)]
pub struct OpBuilder {
    actions: Vec<Action>,
}

impl OpBuilder {
    /// Starts an empty operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts an operation annotated with `ct_start(object)`.
    ///
    /// The operation is declared as a *write* (the conservative default):
    /// a policy serving reads from replicas will route it to the primary
    /// copy and invalidate replicas. Use [`OpBuilder::annotated_read`] or
    /// [`OpBuilder::annotated_kind`] for read-only operations.
    pub fn annotated(object: u64) -> Self {
        Self::annotated_kind(object, AccessKind::Write)
    }

    /// Starts a read-only operation annotated with `ct_start(object)`:
    /// the policy may serve it from any replica of the object.
    pub fn annotated_read(object: u64) -> Self {
        Self::annotated_kind(object, AccessKind::Read)
    }

    /// Starts an operation annotated with `ct_start(object)` and an
    /// explicit access kind.
    pub fn annotated_kind(object: u64, kind: AccessKind) -> Self {
        Self {
            actions: vec![Action::CtStart(object, kind)],
        }
    }

    /// Appends a lock acquisition.
    pub fn lock(mut self, lock: usize) -> Self {
        self.actions.push(Action::Lock(lock));
        self
    }

    /// Appends a lock release.
    pub fn unlock(mut self, lock: usize) -> Self {
        self.actions.push(Action::Unlock(lock));
        self
    }

    /// Appends a read.
    pub fn read(mut self, addr: u64, len: u64) -> Self {
        self.actions.push(Action::Read { addr, len });
        self
    }

    /// Appends a write.
    pub fn write(mut self, addr: u64, len: u64) -> Self {
        self.actions.push(Action::Write { addr, len });
        self
    }

    /// Appends pure computation.
    pub fn compute(mut self, cycles: u64) -> Self {
        self.actions.push(Action::Compute(cycles));
        self
    }

    /// Appends an arbitrary action.
    pub fn push(mut self, action: Action) -> Self {
        self.actions.push(action);
        self
    }

    /// Finishes the operation with `ct_end()` (only if it was annotated).
    pub fn finish(mut self) -> Vec<Action> {
        if matches!(self.actions.first(), Some(Action::CtStart(..))) {
            self.actions.push(Action::CtEnd);
        }
        self.actions
    }

    /// Returns the actions without appending `ct_end`.
    pub fn build(self) -> Vec<Action> {
        self.actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BehaviourCtx {
        BehaviourCtx {
            thread: 0,
            core: 0,
            home_core: 0,
            now: 0,
            ops_completed: 0,
        }
    }

    #[test]
    fn fixed_behaviour_appends_exit() {
        let mut b = FixedBehaviour::new(vec![Action::Compute(5)]);
        assert_eq!(b.next_action(&ctx()), Action::Compute(5));
        assert_eq!(b.next_action(&ctx()), Action::Exit);
        assert_eq!(b.next_action(&ctx()), Action::Exit);
    }

    #[test]
    fn repeat_behaviour_counts_repetitions() {
        let mut b = RepeatBehaviour::new(vec![Action::Compute(1), Action::Yield], Some(2));
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(b.next_action(&ctx()));
        }
        assert_eq!(
            seen,
            vec![
                Action::Compute(1),
                Action::Yield,
                Action::Compute(1),
                Action::Yield,
                Action::Exit,
                Action::Exit
            ]
        );
    }

    #[test]
    fn repeat_behaviour_with_empty_op_exits() {
        let mut b = RepeatBehaviour::new(vec![], Some(5));
        assert_eq!(b.next_action(&ctx()), Action::Exit);
    }

    #[test]
    fn op_builder_brackets_annotated_ops() {
        let op = OpBuilder::annotated(0x42)
            .lock(1)
            .read(0x42, 128)
            .compute(10)
            .unlock(1)
            .finish();
        assert_eq!(op.first(), Some(&Action::CtStart(0x42, AccessKind::Write)));
        assert_eq!(op.last(), Some(&Action::CtEnd));
        assert_eq!(op.len(), 6);
    }

    #[test]
    fn op_builder_read_annotation_carries_the_kind() {
        let op = OpBuilder::annotated_read(0x42).read(0x42, 128).finish();
        assert_eq!(op.first(), Some(&Action::CtStart(0x42, AccessKind::Read)));
        assert_eq!(op.last(), Some(&Action::CtEnd));
        let op = OpBuilder::annotated_kind(0x43, AccessKind::Write).finish();
        assert_eq!(op.first(), Some(&Action::CtStart(0x43, AccessKind::Write)));
    }

    #[test]
    fn op_builder_unannotated_has_no_ct_end() {
        let op = OpBuilder::new().read(0x100, 64).finish();
        assert_eq!(
            op,
            vec![Action::Read {
                addr: 0x100,
                len: 64
            }]
        );
    }

    struct CountedGen {
        ops: u64,
    }

    impl OpGenerator for CountedGen {
        fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
            if self.ops == 0 {
                return vec![];
            }
            self.ops -= 1;
            OpBuilder::annotated(7).compute(3).finish()
        }
    }

    #[test]
    fn op_behaviour_drains_generator_then_exits() {
        let mut b = OpBehaviour::new(CountedGen { ops: 2 });
        let mut actions = Vec::new();
        loop {
            let a = b.next_action(&ctx());
            actions.push(a);
            if a == Action::Exit {
                break;
            }
        }
        let ct_starts = actions
            .iter()
            .filter(|a| matches!(a, Action::CtStart(..)))
            .count();
        let ct_ends = actions
            .iter()
            .filter(|a| matches!(a, Action::CtEnd))
            .count();
        assert_eq!(ct_starts, 2);
        assert_eq!(ct_ends, 2);
        assert_eq!(actions.last(), Some(&Action::Exit));
    }
}
