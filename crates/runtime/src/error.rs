//! Typed errors for the execution engine.
//!
//! The engine's fallible paths — misuse of the `ct_start`/`ct_end`
//! annotations and lock misuse by a thread behaviour — surface as
//! [`EngineError`] through the `try_run_*` entry points. The plain
//! `run_until_*` entry points panic with the same message text
//! ([`EngineError`]'s `Display`), preserving the original behaviour for
//! callers that treat behaviour bugs as programming errors.

use crate::sync::LockError;
use crate::types::{LockId, ThreadId};

/// An error raised while executing thread behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A thread issued `Lock`/`Unlock` on a lock id that was never
    /// registered with the engine.
    UnregisteredLock {
        /// The offending thread.
        thread: ThreadId,
        /// The unknown lock id.
        lock: LockId,
    },
    /// A thread released a lock it did not hold (or an unknown lock).
    LockReleaseFailed {
        /// The offending thread.
        thread: ThreadId,
        /// The lock id.
        lock: LockId,
        /// The underlying registry error.
        error: LockError,
    },
    /// A thread issued `ct_end` without a preceding `ct_start`.
    CtEndWithoutCtStart {
        /// The offending thread.
        thread: ThreadId,
    },
    /// A thread issued `ct_start` while already inside an operation.
    NestedCtStart {
        /// The offending thread.
        thread: ThreadId,
    },
    /// A `ct_start` named a previously unseen object key but every dense
    /// id below the index's limit is already assigned (u32 id-space
    /// exhaustion). Operations on already-interned objects still work.
    ObjectIdsExhausted {
        /// The thread whose `ct_start` hit the limit.
        thread: ThreadId,
        /// The dense-id limit of the object index.
        limit: u32,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnregisteredLock { thread, lock } => {
                write!(f, "thread {thread} used unregistered lock {lock}")
            }
            EngineError::LockReleaseFailed {
                thread,
                lock,
                error,
            } => {
                write!(
                    f,
                    "thread {thread} failed to release lock {lock}: {error:?}"
                )
            }
            EngineError::CtEndWithoutCtStart { thread } => {
                write!(f, "thread {thread}: ct_end without ct_start")
            }
            EngineError::NestedCtStart { thread } => {
                write!(f, "thread {thread}: ct_start inside an operation")
            }
            EngineError::ObjectIdsExhausted { thread, limit } => {
                write!(
                    f,
                    "thread {thread}: object dense-id space exhausted (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_legacy_panic_messages() {
        assert_eq!(
            EngineError::UnregisteredLock { thread: 3, lock: 7 }.to_string(),
            "thread 3 used unregistered lock 7"
        );
        assert_eq!(
            EngineError::LockReleaseFailed {
                thread: 1,
                lock: 2,
                error: LockError::NotHolder,
            }
            .to_string(),
            "thread 1 failed to release lock 2: NotHolder"
        );
        assert_eq!(
            EngineError::CtEndWithoutCtStart { thread: 0 }.to_string(),
            "thread 0: ct_end without ct_start"
        );
        assert_eq!(
            EngineError::NestedCtStart { thread: 9 }.to_string(),
            "thread 9: ct_start inside an operation"
        );
    }
}
