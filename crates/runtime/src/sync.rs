//! Spin locks, registered with the runtime so that lock words live in the
//! simulated address space and lock contention generates real coherence
//! traffic.
//!
//! The paper's benchmark adds "per-directory spin locks"; at small working
//! sets lock contention is what limits both schedulers (the dip at the far
//! left of Figure 4a).

use crate::types::{LockId, ThreadId};
use o2_sim::Addr;

/// State of one registered spin lock.
#[derive(Debug, Clone, Copy)]
pub struct LockInfo {
    /// Address of the lock word in simulated memory.
    pub addr: Addr,
    /// Thread currently holding the lock, if any.
    pub holder: Option<ThreadId>,
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisition attempts that found the lock held.
    pub contended_attempts: u64,
}

/// Errors from lock operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The lock id is not registered.
    UnknownLock,
    /// Release attempted by a thread that does not hold the lock.
    NotHolder,
}

/// All locks known to the runtime.
#[derive(Debug, Default, Clone)]
pub struct LockRegistry {
    locks: Vec<LockInfo>,
    /// FIFO queues of threads blocked on each lock (used only when the
    /// runtime runs with `blocking_locks`; spinning waiters never enqueue).
    waiters: Vec<std::collections::VecDeque<ThreadId>>,
}

impl LockRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a lock whose word lives at `addr`, returning its id.
    pub fn register(&mut self, addr: Addr) -> LockId {
        self.locks.push(LockInfo {
            addr,
            holder: None,
            acquisitions: 0,
            contended_attempts: 0,
        });
        self.waiters.push(std::collections::VecDeque::new());
        self.locks.len() - 1
    }

    /// Enqueues a thread blocked on `lock` (FIFO hand-off order).
    pub fn push_waiter(&mut self, lock: LockId, thread: ThreadId) {
        self.waiters[lock].push_back(thread);
    }

    /// Dequeues the longest-waiting blocked thread, if any.
    pub fn pop_waiter(&mut self, lock: LockId) -> Option<ThreadId> {
        self.waiters.get_mut(lock)?.pop_front()
    }

    /// Number of threads currently blocked on `lock`.
    pub fn waiter_count(&self, lock: LockId) -> usize {
        self.waiters.get(lock).map_or(0, |w| w.len())
    }

    /// Number of registered locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no locks are registered.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Lock metadata.
    pub fn info(&self, lock: LockId) -> Option<&LockInfo> {
        self.locks.get(lock)
    }

    /// The thread currently holding a lock.
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks.get(lock).and_then(|l| l.holder)
    }

    /// Attempts to acquire; returns `Ok(true)` on success, `Ok(false)` if
    /// the lock is held by another thread.
    pub fn try_acquire(&mut self, lock: LockId, thread: ThreadId) -> Result<bool, LockError> {
        let info = self.locks.get_mut(lock).ok_or(LockError::UnknownLock)?;
        match info.holder {
            None => {
                info.holder = Some(thread);
                info.acquisitions += 1;
                Ok(true)
            }
            Some(h) if h == thread => {
                // Re-acquisition by the holder is treated as a no-op success
                // (the workloads never do this, but it keeps the model safe).
                Ok(true)
            }
            Some(_) => {
                info.contended_attempts += 1;
                Ok(false)
            }
        }
    }

    /// Releases a lock held by `thread`.
    pub fn release(&mut self, lock: LockId, thread: ThreadId) -> Result<(), LockError> {
        let info = self.locks.get_mut(lock).ok_or(LockError::UnknownLock)?;
        match info.holder {
            Some(h) if h == thread => {
                info.holder = None;
                Ok(())
            }
            _ => Err(LockError::NotHolder),
        }
    }

    /// Total contended acquisition attempts across all locks.
    pub fn total_contention(&self) -> u64 {
        self.locks.iter().map(|l| l.contended_attempts).sum()
    }

    /// Total successful acquisitions across all locks.
    pub fn total_acquisitions(&self) -> u64 {
        self.locks.iter().map(|l| l.acquisitions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_acquire_release() {
        let mut reg = LockRegistry::new();
        let l = reg.register(0x1000);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert_eq!(reg.holder(l), None);
        assert_eq!(reg.try_acquire(l, 1), Ok(true));
        assert_eq!(reg.holder(l), Some(1));
        assert_eq!(reg.release(l, 1), Ok(()));
        assert_eq!(reg.holder(l), None);
    }

    #[test]
    fn contention_is_counted() {
        let mut reg = LockRegistry::new();
        let l = reg.register(0x1000);
        reg.try_acquire(l, 1).unwrap();
        assert_eq!(reg.try_acquire(l, 2), Ok(false));
        assert_eq!(reg.try_acquire(l, 3), Ok(false));
        assert_eq!(reg.total_contention(), 2);
        assert_eq!(reg.total_acquisitions(), 1);
        assert_eq!(reg.info(l).unwrap().contended_attempts, 2);
    }

    #[test]
    fn reacquisition_by_holder_is_idempotent() {
        let mut reg = LockRegistry::new();
        let l = reg.register(0x2000);
        reg.try_acquire(l, 5).unwrap();
        assert_eq!(reg.try_acquire(l, 5), Ok(true));
        assert_eq!(reg.total_acquisitions(), 1);
    }

    #[test]
    fn release_by_non_holder_fails() {
        let mut reg = LockRegistry::new();
        let l = reg.register(0x2000);
        assert_eq!(reg.release(l, 1), Err(LockError::NotHolder));
        reg.try_acquire(l, 1).unwrap();
        assert_eq!(reg.release(l, 2), Err(LockError::NotHolder));
        assert_eq!(reg.release(l, 1), Ok(()));
    }

    #[test]
    fn unknown_lock_is_an_error() {
        let mut reg = LockRegistry::new();
        assert_eq!(reg.try_acquire(9, 0), Err(LockError::UnknownLock));
        assert_eq!(reg.release(9, 0), Err(LockError::UnknownLock));
        assert_eq!(reg.info(9).map(|_| ()), None);
    }

    #[test]
    fn locks_are_independent() {
        let mut reg = LockRegistry::new();
        let a = reg.register(0x1000);
        let b = reg.register(0x2000);
        reg.try_acquire(a, 1).unwrap();
        assert_eq!(reg.try_acquire(b, 2), Ok(true));
        assert_eq!(reg.holder(a), Some(1));
        assert_eq!(reg.holder(b), Some(2));
    }
}
