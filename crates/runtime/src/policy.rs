//! The scheduling-policy interface.
//!
//! The engine is policy-agnostic: at every `ct_start` it asks the installed
//! [`SchedPolicy`] where the operation should run, at every `ct_end` it
//! reports the event-counter delta observed during the operation, and at
//! every epoch boundary it hands the policy a machine-wide counter view so
//! the policy can rebalance. CoreTime (`o2-core`) and the baselines
//! (`o2-baseline`) are both implementations of this trait, so any measured
//! difference between them is purely the scheduling policy — exactly the
//! comparison the paper makes.

use crate::action::ObjectDescriptor;
use crate::types::{CoreId, Cycles, DenseObjectId, ObjectId, ThreadId};
use o2_sim::{AccessKind, CounterDelta, Machine};

/// Where an operation should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on the core the thread is already running on.
    Local,
    /// Migrate the thread to the given core for the duration of the
    /// operation.
    On(CoreId),
}

/// Context handed to the policy at `ct_start` and `ct_end`.
pub struct OpContext<'a> {
    /// The thread performing the operation.
    pub thread: ThreadId,
    /// The core the thread is currently on.
    pub core: CoreId,
    /// The thread's home core.
    pub home_core: CoreId,
    /// The object named by `ct_start`, as a dense id assigned by the
    /// engine's object index in first-touch order. Policies index their
    /// tables directly with this.
    pub object: DenseObjectId,
    /// The external key (address) the operation named. Only needed for
    /// reporting and for deterministic tie-breaking; the hot path uses
    /// [`OpContext::object`].
    pub object_key: ObjectId,
    /// The acting core's local clock.
    pub now: Cycles,
    /// Whether the operation reads the object or mutates it, as declared
    /// by `ct_start`. Policies serving reads from replicas use this to
    /// route reads to any copy and writes to the primary (invalidating
    /// replicas first).
    pub kind: AccessKind,
    /// Read-only view of the machine (configuration, counters, occupancy).
    pub machine: &'a Machine,
}

/// Machine-wide view handed to the policy at each epoch boundary.
pub struct EpochView<'a> {
    /// Virtual time of the epoch boundary.
    pub now: Cycles,
    /// Read-only view of the machine.
    pub machine: &'a Machine,
    /// Per-core counter deltas since the previous epoch.
    pub deltas: &'a [CounterDelta],
}

/// Commands a policy can issue at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyCommand {
    /// Change a thread's home core (used by thread-clustering baselines;
    /// takes effect the next time the thread is runnable on its home core).
    RehomeThread {
        /// The thread to move.
        thread: ThreadId,
        /// Its new home core.
        core: CoreId,
    },
    /// Stream an object's bytes into a core's caches the next time that
    /// core has nothing runnable (replica serving's idle-time data
    /// movement). The engine queues the fill per core and drains it only
    /// in idle gaps, so a saturated run never pays for it; pending fills
    /// are dropped at the next epoch boundary in favour of the fresh
    /// plan.
    FillReplica {
        /// The object whose copy should be warmed.
        object: DenseObjectId,
        /// The core holding (or about to hold) the copy.
        core: CoreId,
    },
}

/// Fault-handling counters a policy exposes through
/// [`SchedPolicy::fault_stats`]. The defaults are all zero; policies that
/// ignore faults (and rely on the engine's fallback re-pinning) report
/// zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyFaultStats {
    /// `core_down` notifications received.
    pub core_down_events: u64,
    /// Objects (or static pins) moved off a dead core onto live ones.
    pub objects_rehomed: u64,
    /// Objects that could not be re-placed after an offlining and fell
    /// back to hardware management.
    pub objects_stranded: u64,
    /// Migrations the policy skipped because the target core was degraded
    /// (the "migration flips to data movement" path).
    pub degraded_avoids: u64,
}

/// Replica-serving counters a policy exposes through
/// [`SchedPolicy::replication_stats`]. The defaults are all zero; policies
/// without a replication plane report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyReplicationStats {
    /// Replica copies created by epoch-driven promotion.
    pub promotions: u64,
    /// Replica copies dropped because the object's read fraction fell.
    pub demotions: u64,
    /// First-write invalidation events (a write to a replicated object
    /// dropping every non-primary copy at `ct_start`).
    pub invalidations: u64,
    /// Read operations served from a non-primary replica copy.
    pub replica_served: u64,
}

/// A scheduling policy.
///
/// All methods have defaults equivalent to a traditional thread scheduler:
/// never migrate, ignore monitoring data. This is deliberately the paper's
/// baseline ("Without CoreTime").
pub trait SchedPolicy {
    /// Human-readable policy name, used in reports.
    fn name(&self) -> &'static str;

    /// Called when an object is registered with the runtime. `id` is the
    /// dense id the engine's object index assigned to `object.id`; it is
    /// the same id later operations on the object carry in
    /// [`OpContext::object`].
    fn register_object(&mut self, _id: DenseObjectId, _object: &ObjectDescriptor) {}

    /// Hint that roughly `n` more objects are about to be registered, so
    /// the policy can pre-size its per-object tables and stay
    /// allocation-free while they stream in. The default does nothing.
    fn reserve_objects(&mut self, _n: usize) {}

    /// Heap bytes held by the policy's per-object state, for the scale
    /// tier's bytes-per-object audit. Policies without such state (the
    /// default) report zero.
    fn footprint_bytes(&self) -> u64 {
        0
    }

    /// Called at `ct_start`; returns where the operation should run.
    fn on_ct_start(&mut self, _ctx: &OpContext<'_>) -> Placement {
        Placement::Local
    }

    /// Called at `ct_end` with the counter delta observed on the core that
    /// executed the operation (the paper counts "the number of cache misses
    /// that occur between a pair of CoreTime annotations").
    fn on_ct_end(&mut self, _ctx: &OpContext<'_>, _delta: &CounterDelta) {}

    /// Called at every epoch boundary with per-core counter deltas;
    /// returns commands for the engine to apply.
    fn on_epoch(&mut self, _view: &EpochView<'_>) -> Vec<PolicyCommand> {
        Vec::new()
    }

    /// Called when the fault plan takes a core permanently offline,
    /// *before* the engine drains the core's threads — so the policy can
    /// stop placing work there immediately. The default does nothing; the
    /// engine's fallback (re-pin to the next live core) covers policies
    /// that ignore this.
    fn core_down(&mut self, _core: CoreId) {}

    /// Called when a core's effective speed changes: `slowdown_percent`
    /// is the new cost multiplier in percent of nominal (400 = 4x
    /// slower); 100 means the core recovered. Also fired for an offlined
    /// core's slowdown window ending, if any.
    fn core_degraded(&mut self, _core: CoreId, _slowdown_percent: u32) {}

    /// Fault-handling counters, for diagnostics and experiments.
    fn fault_stats(&self) -> PolicyFaultStats {
        PolicyFaultStats::default()
    }

    /// Replica-serving counters, for diagnostics and experiments.
    fn replication_stats(&self) -> PolicyReplicationStats {
        PolicyReplicationStats::default()
    }
}

/// The trivial policy: never migrate anything. This is the traditional
/// thread scheduler the paper compares against ("Without CoreTime").
#[derive(Debug, Default, Clone)]
pub struct NullPolicy;

impl SchedPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "thread-scheduler"
    }
}

/// A policy with a fixed object→core table, useful for tests and for
/// oracle/static-placement ablations.
#[derive(Debug, Default, Clone)]
pub struct StaticPolicy {
    assignments: std::collections::HashMap<ObjectId, CoreId>,
}

impl StaticPolicy {
    /// Creates an empty static policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns an object to a core.
    pub fn assign(&mut self, object: ObjectId, core: CoreId) {
        self.assignments.insert(object, core);
    }

    /// Number of assigned objects.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no objects are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

impl SchedPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static-placement"
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        // Static tables are keyed by the user-facing object key, so tests
        // and ablations can set them up without knowing intern order.
        match self.assignments.get(&ctx.object_key) {
            Some(&core) if core != ctx.core => Placement::On(core),
            _ => Placement::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::quad4())
    }

    fn ctx<'a>(machine: &'a Machine, object: ObjectId, core: CoreId) -> OpContext<'a> {
        OpContext {
            thread: 0,
            core,
            home_core: core,
            object: 0,
            object_key: object,
            now: 0,
            kind: AccessKind::Write,
            machine,
        }
    }

    #[test]
    fn null_policy_never_migrates() {
        let m = machine();
        let mut p = NullPolicy;
        assert_eq!(p.name(), "thread-scheduler");
        assert_eq!(p.on_ct_start(&ctx(&m, 0x1000, 2)), Placement::Local);
        assert!(p
            .on_epoch(&EpochView {
                now: 0,
                machine: &m,
                deltas: &[]
            })
            .is_empty());
    }

    #[test]
    fn static_policy_follows_its_table() {
        let m = machine();
        let mut p = StaticPolicy::new();
        assert!(p.is_empty());
        p.assign(0x1000, 3);
        assert_eq!(p.len(), 1);
        assert_eq!(p.on_ct_start(&ctx(&m, 0x1000, 0)), Placement::On(3));
        // Already on the right core: no migration.
        assert_eq!(p.on_ct_start(&ctx(&m, 0x1000, 3)), Placement::Local);
        // Unknown object: run locally.
        assert_eq!(p.on_ct_start(&ctx(&m, 0x2000, 0)), Placement::Local);
    }
}
