//! The in-memory FAT volume used by the benchmarks.
//!
//! The paper modified EFSL "to use an in-memory image rather than disk
//! operations, to not use a buffer cache, and to have a higher-performance
//! inner loop for file name lookup". This module builds exactly that: a
//! byte-for-byte FAT-style volume held in memory, whose directories can be
//! mapped into the simulated physical address space so that searches
//! generate cache traffic on the simulated machine.

use o2_sim::{Addr, SimMemory};

use crate::dirent::{synthetic_name, DirEntry, DIRENT_SIZE};
use crate::fat::{Fat, FatError};

/// Geometry of the volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeGeometry {
    /// Bytes per cluster.
    pub bytes_per_cluster: u32,
    /// Total data clusters available.
    pub data_clusters: u32,
}

impl Default for VolumeGeometry {
    fn default() -> Self {
        Self {
            bytes_per_cluster: 4096,
            data_clusters: 16_384, // 64 MB of data clusters by default
        }
    }
}

/// A directory created on the volume.
#[derive(Debug, Clone)]
pub struct DirectoryHandle {
    /// Index of the directory (0-based creation order).
    pub index: u32,
    /// First cluster of the directory's entry data.
    pub first_cluster: u16,
    /// Number of 32-byte entries.
    pub entry_count: u32,
    /// Offset of the directory's first byte within the volume image.
    pub image_offset: usize,
    /// Bytes occupied by the directory's entries.
    pub byte_len: usize,
    /// Simulated address of the directory data (set by
    /// [`Volume::map_into`]; zero until then).
    pub sim_addr: Addr,
    /// Simulated address of the directory's spin-lock word (set by
    /// [`Volume::map_into`]; zero until then).
    pub lock_addr: Addr,
}

impl DirectoryHandle {
    /// The object identifier used for CoreTime annotations: the simulated
    /// address of the directory data, as in the paper where an object is
    /// identified by address.
    pub fn object_id(&self) -> u64 {
        self.sim_addr
    }

    /// Simulated address of entry `i`.
    pub fn entry_addr(&self, i: u32) -> Addr {
        self.sim_addr + u64::from(i) * DIRENT_SIZE as u64
    }
}

/// Errors from volume construction and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// The FAT ran out of clusters.
    Fat(FatError),
    /// A directory index was out of range.
    NoSuchDirectory,
}

impl From<FatError> for VolumeError {
    fn from(e: FatError) -> Self {
        VolumeError::Fat(e)
    }
}

/// The in-memory volume.
#[derive(Debug, Clone)]
pub struct Volume {
    geometry: VolumeGeometry,
    fat: Fat,
    /// The data area (cluster 2 starts at offset 0).
    image: Vec<u8>,
    directories: Vec<DirectoryHandle>,
}

impl Volume {
    /// Creates an empty volume.
    pub fn new(geometry: VolumeGeometry) -> Self {
        let clusters = geometry.data_clusters as usize + 2;
        Self {
            geometry,
            fat: Fat::new(clusters),
            image: vec![0u8; geometry.data_clusters as usize * geometry.bytes_per_cluster as usize],
            directories: Vec::new(),
        }
    }

    /// Builds the paper's benchmark volume: `n_dirs` directories with
    /// `files_per_dir` 32-byte entries each (1,000 in the paper).
    pub fn build_benchmark(n_dirs: u32, files_per_dir: u32) -> Result<Self, VolumeError> {
        let mut geometry = VolumeGeometry::default();
        // Make sure the data area is large enough for the requested layout.
        let bytes_per_dir = (files_per_dir as usize * DIRENT_SIZE)
            .div_ceil(geometry.bytes_per_cluster as usize)
            * geometry.bytes_per_cluster as usize;
        let needed_clusters =
            (n_dirs as usize * bytes_per_dir) / geometry.bytes_per_cluster as usize + 8;
        geometry.data_clusters = geometry.data_clusters.max(needed_clusters as u32);
        let mut v = Self::new(geometry);
        for _ in 0..n_dirs {
            v.create_directory(files_per_dir)?;
        }
        Ok(v)
    }

    /// The volume geometry.
    pub fn geometry(&self) -> VolumeGeometry {
        self.geometry
    }

    /// The directories created so far.
    pub fn directories(&self) -> &[DirectoryHandle] {
        &self.directories
    }

    /// A directory by index.
    pub fn directory(&self, index: u32) -> Result<&DirectoryHandle, VolumeError> {
        self.directories
            .get(index as usize)
            .ok_or(VolumeError::NoSuchDirectory)
    }

    /// Total bytes of directory data (the paper's "total data size" x-axis).
    pub fn total_directory_bytes(&self) -> u64 {
        self.directories.iter().map(|d| d.byte_len as u64).sum()
    }

    /// Creates a directory populated with `files` synthetic entries and
    /// returns its index.
    pub fn create_directory(&mut self, files: u32) -> Result<u32, VolumeError> {
        let bytes = files as usize * DIRENT_SIZE;
        let clusters = bytes
            .div_ceil(self.geometry.bytes_per_cluster as usize)
            .max(1);
        let first_cluster = self.fat.alloc_chain(clusters)?;
        let chain = self.fat.chain(first_cluster)?;
        let image_offset = self.cluster_offset(chain[0]);

        // Write the entries. Chains from a fresh FAT are contiguous, so the
        // directory occupies a contiguous byte range of the image; assert
        // that invariant because the lookup path relies on it.
        for (i, w) in chain.windows(2).enumerate() {
            debug_assert_eq!(w[1], w[0] + 1, "cluster chain not contiguous at {i}");
        }
        for i in 0..files {
            let entry = DirEntry::file(&synthetic_name(i), first_cluster, 64);
            let off = image_offset + i as usize * DIRENT_SIZE;
            self.image[off..off + DIRENT_SIZE].copy_from_slice(&entry.encode());
        }

        let index = self.directories.len() as u32;
        self.directories.push(DirectoryHandle {
            index,
            first_cluster,
            entry_count: files,
            image_offset,
            byte_len: bytes,
            sim_addr: 0,
            lock_addr: 0,
        });
        Ok(index)
    }

    /// Reads entry `i` of directory `dir` from the image.
    pub fn read_entry(&self, dir: u32, i: u32) -> Result<DirEntry, VolumeError> {
        let d = self.directory(dir)?;
        if i >= d.entry_count {
            return Err(VolumeError::NoSuchDirectory);
        }
        let off = d.image_offset + i as usize * DIRENT_SIZE;
        Ok(DirEntry::decode(&self.image[off..off + DIRENT_SIZE]).expect("entry in bounds"))
    }

    /// Linear search of directory `dir` for `name`, exactly like the
    /// benchmark's inner loop. Returns the entry index and the number of
    /// entries examined.
    pub fn search(&self, dir: u32, name: &str) -> Result<Option<(u32, u32)>, VolumeError> {
        let d = self.directory(dir)?;
        for i in 0..d.entry_count {
            let e = self.read_entry(dir, i)?;
            if e.matches(name) {
                return Ok(Some((i, i + 1)));
            }
        }
        Ok(None)
    }

    /// Maps every directory (and a per-directory lock word) into the
    /// simulated address space. Each directory becomes its own region,
    /// labelled with the directory index, with DRAM homes spread round-robin
    /// across chips — the natural layout for interleaved shared data.
    pub fn map_into(&mut self, memory: &mut SimMemory) {
        for d in &mut self.directories {
            let region = memory.alloc(d.byte_len as u64, u64::from(d.index));
            d.sim_addr = region.addr;
            let lock_region = memory.alloc(64, 0xF000_0000 + u64::from(d.index));
            d.lock_addr = lock_region.addr;
        }
    }

    /// Whether [`Volume::map_into`] has been called.
    pub fn is_mapped(&self) -> bool {
        self.directories.iter().all(|d| d.sim_addr != 0)
    }

    fn cluster_offset(&self, cluster: u16) -> usize {
        (cluster as usize - 2) * self.geometry.bytes_per_cluster as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_volume_matches_paper_parameters() {
        let v = Volume::build_benchmark(20, 1000).unwrap();
        assert_eq!(v.directories().len(), 20);
        for d in v.directories() {
            assert_eq!(d.entry_count, 1000);
            assert_eq!(d.byte_len, 32_000);
        }
        assert_eq!(v.total_directory_bytes(), 20 * 32_000);
    }

    #[test]
    fn entries_round_trip_through_the_image() {
        let v = Volume::build_benchmark(3, 100).unwrap();
        let e = v.read_entry(2, 57).unwrap();
        assert!(e.matches(&synthetic_name(57)));
        assert_eq!(v.read_entry(0, 0).unwrap().display_name(), "F0000000.DAT");
        assert!(v.read_entry(0, 100).is_err());
        assert!(v.read_entry(9, 0).is_err());
    }

    #[test]
    fn search_finds_files_and_counts_examined_entries() {
        let v = Volume::build_benchmark(2, 500).unwrap();
        let (idx, examined) = v.search(1, &synthetic_name(123)).unwrap().unwrap();
        assert_eq!(idx, 123);
        assert_eq!(examined, 124);
        assert_eq!(v.search(1, "MISSING.TXT").unwrap(), None);
    }

    #[test]
    fn directories_occupy_disjoint_image_ranges() {
        let v = Volume::build_benchmark(4, 1000).unwrap();
        let dirs = v.directories();
        for a in 0..dirs.len() {
            for b in (a + 1)..dirs.len() {
                let (da, db) = (&dirs[a], &dirs[b]);
                let a_range = da.image_offset..da.image_offset + da.byte_len;
                assert!(
                    !a_range.contains(&db.image_offset),
                    "directories {a} and {b} overlap"
                );
            }
        }
    }

    #[test]
    fn map_into_assigns_simulated_addresses_and_locks() {
        let mut v = Volume::build_benchmark(4, 100).unwrap();
        assert!(!v.is_mapped());
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        assert!(v.is_mapped());
        let addrs: Vec<u64> = v.directories().iter().map(|d| d.sim_addr).collect();
        let mut unique = addrs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), addrs.len());
        for d in v.directories() {
            assert_ne!(d.lock_addr, 0);
            assert_ne!(d.lock_addr, d.sim_addr);
            assert_eq!(d.object_id(), d.sim_addr);
            assert_eq!(d.entry_addr(2), d.sim_addr + 64);
        }
        // Directory regions are labelled with their index for Figure-2
        // style occupancy snapshots.
        let labels: Vec<u64> = mem
            .regions()
            .filter(|r| r.label < 0xF000_0000)
            .map(|r| r.label)
            .collect();
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn create_directory_errors_when_full() {
        let mut v = Volume::new(VolumeGeometry {
            bytes_per_cluster: 4096,
            data_clusters: 4,
        });
        v.create_directory(400).unwrap();
        assert!(matches!(
            v.create_directory(400),
            Err(VolumeError::Fat(FatError::OutOfSpace))
        ));
    }
}
