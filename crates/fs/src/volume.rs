//! The in-memory FAT volume used by the benchmarks.
//!
//! The paper modified EFSL "to use an in-memory image rather than disk
//! operations, to not use a buffer cache, and to have a higher-performance
//! inner loop for file name lookup". This module builds exactly that: a
//! byte-for-byte FAT-style volume held in memory, whose directories can be
//! mapped into the simulated physical address space so that searches
//! generate cache traffic on the simulated machine.
//!
//! ## Host-side bookkeeping vs. modeled cost
//!
//! Directory *contents* are resolved two ways, and the distinction
//! matters. The **modeled** cost of a lookup — the per-entry compare
//! cycles the simulated machine pays in `lookup.rs`, exactly the paper's
//! Figure-3 inner loop — is untouched. The **host-side** bookkeeping
//! (which entry does this name live in? is this name taken? which slot is
//! free?) used to be the same linear scan run natively; it now goes
//! through a per-directory flat name index (an
//! [`o2_collections::FlatTable`] from canonical 8.3 [`NameKey`]s to entry
//! slots), so create / rename / unlink churn probes and backward-shifts a
//! flat table instead of rescanning the image. The old linear scan
//! survives as [`Volume::search_linear`], kept as an executable
//! specification and as the baseline for `bench_fs`.
//!
//! ## The handle table
//!
//! Directories are identified by dense [`DirId`]s handed out
//! lowest-free-first. Since [`Volume::remove_directory`] reclaims ids
//! (and FAT clusters), the id space is no longer append-only: the live
//! set is a [`FlatTable`] from `DirId` to a storage slot in a slab of
//! handles — the workspace's fourth deletion-bearing flat-table user,
//! alongside the coherence directory, the CoreTime pair table and the
//! per-directory name indexes. Ids and storage slots are allocated from
//! separate free pools (ids lowest-first so reuse is deterministic,
//! slots LIFO), so after interleaved removals the id → slot map is not
//! the identity and the table genuinely resolves it.

use o2_collections::FlatTable;
use o2_sim::{Addr, SimMemory};

use crate::dirent::{split_8_3, synthetic_name, DirEntry, NameKey, DIRENT_SIZE};
use crate::fat::{Fat, FatError};

/// Dense directory identifier: the creation-order index of the directory
/// in its volume's handle slab.
pub type DirId = u32;

/// FAT's deleted-entry marker: the first name byte of an unlinked entry.
pub const DELETED_MARKER: u8 = 0xE5;

/// Geometry of the volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeGeometry {
    /// Bytes per cluster.
    pub bytes_per_cluster: u32,
    /// Total data clusters available.
    pub data_clusters: u32,
}

impl Default for VolumeGeometry {
    fn default() -> Self {
        Self {
            bytes_per_cluster: 4096,
            data_clusters: 16_384, // 64 MB of data clusters by default
        }
    }
}

/// A directory created on the volume.
#[derive(Debug, Clone)]
pub struct DirectoryHandle {
    /// Dense id of the directory (0-based creation order).
    pub index: DirId,
    /// First cluster of the directory's entry data.
    pub first_cluster: u16,
    /// Number of 32-byte entry slots (live entries plus free slots).
    pub entry_count: u32,
    /// Offset of the directory's first byte within the volume image.
    pub image_offset: usize,
    /// Bytes occupied by the directory's entry slots.
    pub byte_len: usize,
    /// Simulated address of the directory data (set by
    /// [`Volume::map_into`]; zero until then).
    pub sim_addr: Addr,
    /// Simulated address of the directory's spin-lock word (set by
    /// [`Volume::map_into`]; zero until then).
    pub lock_addr: Addr,
}

impl DirectoryHandle {
    /// The object identifier used for CoreTime annotations: the simulated
    /// address of the directory data, as in the paper where an object is
    /// identified by address.
    pub fn object_id(&self) -> u64 {
        self.sim_addr
    }

    /// Simulated address of entry `i`.
    pub fn entry_addr(&self, i: u32) -> Addr {
        self.sim_addr + u64::from(i) * DIRENT_SIZE as u64
    }
}

/// Errors from volume construction, lookups and metadata operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// The FAT ran out of clusters.
    Fat(FatError),
    /// A directory index was out of range.
    NoSuchDirectory,
    /// An entry with the same (canonicalised 8.3) name already exists in
    /// the directory.
    DuplicateName,
    /// The named entry does not exist in the directory.
    NoSuchEntry,
    /// The directory has no free entry slot left.
    DirectoryFull,
    /// The directory still holds live entries and cannot be removed.
    DirectoryNotEmpty,
}

impl From<FatError> for VolumeError {
    fn from(e: FatError) -> Self {
        VolumeError::Fat(e)
    }
}

/// Host-side bookkeeping of one directory: the flat name index plus the
/// free-slot pool.
#[derive(Debug, Clone, Default)]
struct DirIndex {
    /// Canonical 8.3 name → entry slot.
    names: FlatTable<NameKey, u32>,
    /// Free entry slots, kept sorted descending so `pop()` yields the
    /// lowest slot — first-fit, exactly where a linear scan for a free
    /// entry would land.
    free: Vec<u32>,
}

impl DirIndex {
    /// Returns a free slot to the pool, keeping it sorted descending.
    fn release_slot(&mut self, slot: u32) {
        let at = self.free.partition_point(|&s| s > slot);
        self.free.insert(at, slot);
    }
}

/// One live directory's storage: the handle plus its host-side index.
#[derive(Debug, Clone)]
struct DirSlot {
    handle: DirectoryHandle,
    index: DirIndex,
}

/// The in-memory volume.
#[derive(Debug, Clone)]
pub struct Volume {
    geometry: VolumeGeometry,
    fat: Fat,
    /// The data area (cluster 2 starts at offset 0).
    image: Vec<u8>,
    /// Live [`DirId`] → storage slot in `slots` (see "The handle table"
    /// in the module docs).
    ids: FlatTable<u64, u32>,
    /// Handle storage; retired slots are `None` until reused.
    slots: Vec<Option<DirSlot>>,
    /// Retired storage slots, reused LIFO.
    spare_slots: Vec<u32>,
    /// Reclaimed directory ids, kept sorted descending so `pop()` hands
    /// out the lowest id first (deterministic reuse).
    spare_ids: Vec<DirId>,
    /// The first id never handed out yet.
    next_id: DirId,
}

impl Volume {
    /// Creates an empty volume.
    pub fn new(geometry: VolumeGeometry) -> Self {
        let clusters = geometry.data_clusters as usize + 2;
        Self {
            geometry,
            fat: Fat::new(clusters),
            image: vec![0u8; geometry.data_clusters as usize * geometry.bytes_per_cluster as usize],
            ids: FlatTable::default(),
            slots: Vec::new(),
            spare_slots: Vec::new(),
            spare_ids: Vec::new(),
            next_id: 0,
        }
    }

    /// Builds the paper's benchmark volume: `n_dirs` directories with
    /// `files_per_dir` 32-byte entries each (1,000 in the paper).
    pub fn build_benchmark(n_dirs: u32, files_per_dir: u32) -> Result<Self, VolumeError> {
        let mut geometry = VolumeGeometry::default();
        // Make sure the data area is large enough for the requested layout.
        let bytes_per_dir = (files_per_dir as usize * DIRENT_SIZE)
            .div_ceil(geometry.bytes_per_cluster as usize)
            * geometry.bytes_per_cluster as usize;
        let needed_clusters =
            (n_dirs as usize * bytes_per_dir) / geometry.bytes_per_cluster as usize + 8;
        geometry.data_clusters = geometry.data_clusters.max(needed_clusters as u32);
        let mut v = Self::new(geometry);
        for _ in 0..n_dirs {
            v.create_directory(files_per_dir)?;
        }
        Ok(v)
    }

    /// The volume geometry.
    pub fn geometry(&self) -> VolumeGeometry {
        self.geometry
    }

    /// Storage slot of a live directory id.
    fn slot_of(&self, dir: DirId) -> Result<usize, VolumeError> {
        self.ids
            .peek(u64::from(dir))
            .map(|&s| s as usize)
            .ok_or(VolumeError::NoSuchDirectory)
    }

    fn dir_slot(&self, dir: DirId) -> Result<&DirSlot, VolumeError> {
        let slot = self.slot_of(dir)?;
        Ok(self.slots[slot].as_ref().expect("live slot"))
    }

    fn dir_slot_mut(&mut self, dir: DirId) -> Result<&mut DirSlot, VolumeError> {
        let slot = self.slot_of(dir)?;
        Ok(self.slots[slot].as_mut().expect("live slot"))
    }

    /// The live directories, in id order.
    pub fn directories(&self) -> impl Iterator<Item = &DirectoryHandle> + '_ {
        (0..self.next_id).filter_map(move |id| {
            self.ids.peek(u64::from(id)).map(|&slot| {
                &self.slots[slot as usize]
                    .as_ref()
                    .expect("live slot")
                    .handle
            })
        })
    }

    /// Number of live directories.
    pub fn dir_count(&self) -> usize {
        self.ids.len()
    }

    /// A directory by dense id.
    pub fn directory(&self, index: DirId) -> Result<&DirectoryHandle, VolumeError> {
        self.dir_slot(index).map(|s| &s.handle)
    }

    /// Total bytes of directory data (the paper's "total data size" x-axis).
    pub fn total_directory_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.handle.byte_len as u64)
            .sum()
    }

    /// Creates a directory populated with `files` synthetic entries and
    /// returns its dense id. Every slot is live; use
    /// [`Volume::create_directory_with_capacity`] for churn workloads
    /// that need headroom.
    pub fn create_directory(&mut self, files: u32) -> Result<DirId, VolumeError> {
        self.create_directory_with_capacity(files, files)
    }

    /// Creates a directory with `capacity` entry slots of which the first
    /// `live` hold synthetic entries; the rest are free for
    /// [`Volume::create_entry`]. Returns the dense id — the lowest
    /// reclaimed id if any directory was removed, the next fresh one
    /// otherwise.
    pub fn create_directory_with_capacity(
        &mut self,
        live: u32,
        capacity: u32,
    ) -> Result<DirId, VolumeError> {
        let live = live.min(capacity);
        let bytes = capacity as usize * DIRENT_SIZE;
        let clusters = bytes
            .div_ceil(self.geometry.bytes_per_cluster as usize)
            .max(1);
        let first_cluster = self.fat.alloc_chain(clusters)?;
        let chain = self.fat.chain(first_cluster)?;
        let image_offset = self.cluster_offset(chain[0]);

        // Write the entries. Chains from a fresh FAT are contiguous, so the
        // directory occupies a contiguous byte range of the image; assert
        // that invariant because the lookup path relies on it.
        for (i, w) in chain.windows(2).enumerate() {
            debug_assert_eq!(w[1], w[0] + 1, "cluster chain not contiguous at {i}");
        }
        // The clusters may have belonged to a removed directory; start
        // from a clean byte range.
        self.image[image_offset..image_offset + bytes].fill(0);
        let mut index = DirIndex {
            names: FlatTable::with_capacity(capacity as usize * 8 / 7 + 1),
            free: (live..capacity).rev().collect(),
        };
        for i in 0..live {
            let name = synthetic_name(i);
            let entry = DirEntry::file(&name, first_cluster, 64);
            let off = image_offset + i as usize * DIRENT_SIZE;
            self.image[off..off + DIRENT_SIZE].copy_from_slice(&entry.encode());
            index.names.insert(NameKey::new(&name), i);
        }

        let id = self.spare_ids.pop().unwrap_or_else(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        });
        let slot = match self.spare_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[slot] = Some(DirSlot {
            handle: DirectoryHandle {
                index: id,
                first_cluster,
                entry_count: capacity,
                image_offset,
                byte_len: bytes,
                sim_addr: 0,
                lock_addr: 0,
            },
            index,
        });
        self.ids.insert(u64::from(id), slot as u32);
        Ok(id)
    }

    /// Removes an *empty* directory: frees its FAT cluster chain and
    /// reclaims its [`DirId`] for the next [`Volume::create_directory`].
    /// Errors with [`VolumeError::DirectoryNotEmpty`] while any live
    /// entry remains (unlink them first) and
    /// [`VolumeError::NoSuchDirectory`] for unknown or already-removed
    /// ids.
    pub fn remove_directory(&mut self, dir: DirId) -> Result<(), VolumeError> {
        let slot = self.slot_of(dir)?;
        if !self.slots[slot]
            .as_ref()
            .expect("live slot")
            .index
            .names
            .is_empty()
        {
            return Err(VolumeError::DirectoryNotEmpty);
        }
        let s = self.slots[slot].take().expect("live slot");
        self.fat
            .free_chain(s.handle.first_cluster)
            .expect("live directory has a valid chain");
        self.ids.remove(u64::from(dir));
        let at = self.spare_ids.partition_point(|&i| i > dir);
        self.spare_ids.insert(at, dir);
        self.spare_slots.push(slot as u32);
        Ok(())
    }

    /// Reads entry `i` of directory `dir` from the image.
    pub fn read_entry(&self, dir: DirId, i: u32) -> Result<DirEntry, VolumeError> {
        let d = self.directory(dir)?;
        if i >= d.entry_count {
            return Err(VolumeError::NoSuchDirectory);
        }
        let off = d.image_offset + i as usize * DIRENT_SIZE;
        Ok(DirEntry::decode(&self.image[off..off + DIRENT_SIZE]).expect("entry in bounds"))
    }

    /// Entry slot holding `name` in directory `dir`, resolved through the
    /// flat name index (host-side, O(1) expected).
    pub fn find_entry(&self, dir: DirId, name: &str) -> Result<Option<u32>, VolumeError> {
        Ok(self
            .dir_slot(dir)?
            .index
            .names
            .peek(NameKey::new(name))
            .copied())
    }

    /// Live entries (slots holding a name) in directory `dir`.
    pub fn live_entries(&self, dir: DirId) -> Result<u32, VolumeError> {
        Ok(self.dir_slot(dir)?.index.names.len() as u32)
    }

    /// Free entry slots left in directory `dir`.
    pub fn free_slots(&self, dir: DirId) -> Result<u32, VolumeError> {
        Ok(self.dir_slot(dir)?.index.free.len() as u32)
    }

    /// Creates a file entry named `name` in directory `dir`, taking the
    /// lowest free slot (first-fit, as a linear scan would). Errors with
    /// [`VolumeError::DuplicateName`] if the (canonicalised) name already
    /// exists and [`VolumeError::DirectoryFull`] if no slot is free.
    pub fn create_entry(&mut self, dir: DirId, name: &str, size: u32) -> Result<u32, VolumeError> {
        let key = NameKey::new(name);
        let s = self.dir_slot_mut(dir)?;
        let (image_offset, first_cluster) = (s.handle.image_offset, s.handle.first_cluster);
        if s.index.names.peek(key).is_some() {
            return Err(VolumeError::DuplicateName);
        }
        let slot = s.index.free.pop().ok_or(VolumeError::DirectoryFull)?;
        s.index.names.insert(key, slot);
        let entry = DirEntry::file(name, first_cluster, size);
        let off = image_offset + slot as usize * DIRENT_SIZE;
        self.image[off..off + DIRENT_SIZE].copy_from_slice(&entry.encode());
        Ok(slot)
    }

    /// Removes the entry named `name` from directory `dir`, marking its
    /// slot with the FAT deleted marker (`0xE5`) and returning the slot to
    /// the free pool. Errors with [`VolumeError::NoSuchEntry`] if the name
    /// is not present.
    pub fn unlink(&mut self, dir: DirId, name: &str) -> Result<u32, VolumeError> {
        let s = self.dir_slot_mut(dir)?;
        let image_offset = s.handle.image_offset;
        let slot = s
            .index
            .names
            .remove(NameKey::new(name))
            .ok_or(VolumeError::NoSuchEntry)?;
        s.index.release_slot(slot);
        self.image[image_offset + slot as usize * DIRENT_SIZE] = DELETED_MARKER;
        Ok(slot)
    }

    /// Renames the entry `old` in directory `dir` to `new`, in place (the
    /// entry keeps its slot, cluster and size). Errors with
    /// [`VolumeError::NoSuchEntry`] if `old` is absent and
    /// [`VolumeError::DuplicateName`] if `new` is taken by *another*
    /// entry; renaming to a canonically equal name is a no-op success,
    /// as on a real FAT volume.
    pub fn rename(&mut self, dir: DirId, old: &str, new: &str) -> Result<u32, VolumeError> {
        let (old_key, new_key) = (NameKey::new(old), NameKey::new(new));
        let s = self.dir_slot_mut(dir)?;
        let image_offset = s.handle.image_offset;
        let Some(&slot) = s.index.names.peek(old_key) else {
            return Err(VolumeError::NoSuchEntry);
        };
        if old_key == new_key {
            // Canonically the same name: the stored bytes already match.
            return Ok(slot);
        }
        if s.index.names.peek(new_key).is_some() {
            return Err(VolumeError::DuplicateName);
        }
        let slot = s.index.names.remove(old_key).expect("checked above");
        s.index.names.insert(new_key, slot);
        let (n, e) = split_8_3(new);
        let off = image_offset + slot as usize * DIRENT_SIZE;
        self.image[off..off + 8].copy_from_slice(&n);
        self.image[off + 8..off + 11].copy_from_slice(&e);
        Ok(slot)
    }

    /// Search of directory `dir` for `name`: the entry slot and the number
    /// of entries the benchmark's inner loop would examine to find it
    /// (slot + 1 — the modeled cost charged by `lookup.rs` is unchanged).
    /// Host-side the resolution goes through the flat name index;
    /// [`Volume::search_linear`] is the scan it replaced.
    pub fn search(&self, dir: DirId, name: &str) -> Result<Option<(u32, u32)>, VolumeError> {
        Ok(self.find_entry(dir, name)?.map(|i| (i, i + 1)))
    }

    /// Linear search of directory `dir` for `name`, exactly like the
    /// benchmark's inner loop: kept as the executable specification of
    /// [`Volume::search`] and as the pre-refactor baseline for
    /// `bench_fs`.
    pub fn search_linear(&self, dir: DirId, name: &str) -> Result<Option<(u32, u32)>, VolumeError> {
        let d = self.directory(dir)?;
        for i in 0..d.entry_count {
            let e = self.read_entry(dir, i)?;
            if e.matches(name) {
                return Ok(Some((i, i + 1)));
            }
        }
        Ok(None)
    }

    /// Maps every directory (and a per-directory lock word) into the
    /// simulated address space. Each directory becomes its own region,
    /// labelled with the directory index, with DRAM homes spread round-robin
    /// across chips — the natural layout for interleaved shared data.
    pub fn map_into(&mut self, memory: &mut SimMemory) {
        // Iterate in id order (not slot order) so region allocation stays
        // a pure function of the directory set.
        for id in 0..self.next_id {
            let Some(&slot) = self.ids.peek(u64::from(id)) else {
                continue;
            };
            let d = &mut self.slots[slot as usize]
                .as_mut()
                .expect("live slot")
                .handle;
            let region = memory.alloc(d.byte_len as u64, u64::from(d.index));
            d.sim_addr = region.addr;
            let lock_region = memory.alloc(64, 0xF000_0000 + u64::from(d.index));
            d.lock_addr = lock_region.addr;
        }
    }

    /// Whether [`Volume::map_into`] has been called.
    pub fn is_mapped(&self) -> bool {
        self.directories().all(|d| d.sim_addr != 0)
    }

    fn cluster_offset(&self, cluster: u16) -> usize {
        (cluster as usize - 2) * self.geometry.bytes_per_cluster as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_volume_matches_paper_parameters() {
        let v = Volume::build_benchmark(20, 1000).unwrap();
        assert_eq!(v.dir_count(), 20);
        for d in v.directories() {
            assert_eq!(d.entry_count, 1000);
            assert_eq!(d.byte_len, 32_000);
        }
        assert_eq!(v.total_directory_bytes(), 20 * 32_000);
    }

    #[test]
    fn entries_round_trip_through_the_image() {
        let v = Volume::build_benchmark(3, 100).unwrap();
        let e = v.read_entry(2, 57).unwrap();
        assert!(e.matches(&synthetic_name(57)));
        assert_eq!(v.read_entry(0, 0).unwrap().display_name(), "F0000000.DAT");
        assert!(v.read_entry(0, 100).is_err());
        assert!(v.read_entry(9, 0).is_err());
    }

    #[test]
    fn search_finds_files_and_counts_examined_entries() {
        let v = Volume::build_benchmark(2, 500).unwrap();
        let (idx, examined) = v.search(1, &synthetic_name(123)).unwrap().unwrap();
        assert_eq!(idx, 123);
        assert_eq!(examined, 124);
        assert_eq!(v.search(1, "MISSING.TXT").unwrap(), None);
    }

    #[test]
    fn search_agrees_with_the_linear_scan_it_replaced() {
        let mut v = Volume::build_benchmark(2, 200).unwrap();
        for i in (0..200).step_by(3) {
            v.unlink(0, &synthetic_name(i)).unwrap();
        }
        v.create_entry(0, "FRESH.TXT", 64).unwrap();
        v.rename(0, &synthetic_name(7), "MOVED.TXT").unwrap();
        let names: Vec<String> = (0..200)
            .map(synthetic_name)
            .chain(["FRESH.TXT".into(), "MOVED.TXT".into(), "NOPE.TXT".into()])
            .collect();
        for name in &names {
            assert_eq!(
                v.search(0, name).unwrap(),
                v.search_linear(0, name).unwrap(),
                "index and linear scan diverge on {name}"
            );
        }
    }

    #[test]
    fn directories_occupy_disjoint_image_ranges() {
        let v = Volume::build_benchmark(4, 1000).unwrap();
        let dirs: Vec<&DirectoryHandle> = v.directories().collect();
        for a in 0..dirs.len() {
            for b in (a + 1)..dirs.len() {
                let (da, db) = (&dirs[a], &dirs[b]);
                let a_range = da.image_offset..da.image_offset + da.byte_len;
                assert!(
                    !a_range.contains(&db.image_offset),
                    "directories {a} and {b} overlap"
                );
            }
        }
    }

    #[test]
    fn map_into_assigns_simulated_addresses_and_locks() {
        let mut v = Volume::build_benchmark(4, 100).unwrap();
        assert!(!v.is_mapped());
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        assert!(v.is_mapped());
        let addrs: Vec<u64> = v.directories().map(|d| d.sim_addr).collect();
        let mut unique = addrs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), addrs.len());
        for d in v.directories() {
            assert_ne!(d.lock_addr, 0);
            assert_ne!(d.lock_addr, d.sim_addr);
            assert_eq!(d.object_id(), d.sim_addr);
            assert_eq!(d.entry_addr(2), d.sim_addr + 64);
        }
        // Directory regions are labelled with their index for Figure-2
        // style occupancy snapshots.
        let labels: Vec<u64> = mem
            .regions()
            .filter(|r| r.label < 0xF000_0000)
            .map(|r| r.label)
            .collect();
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn create_directory_errors_when_full() {
        let mut v = Volume::new(VolumeGeometry {
            bytes_per_cluster: 4096,
            data_clusters: 4,
        });
        v.create_directory(400).unwrap();
        assert!(matches!(
            v.create_directory(400),
            Err(VolumeError::Fat(FatError::OutOfSpace))
        ));
    }

    #[test]
    fn capacity_directories_start_with_free_slots() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory_with_capacity(3, 8).unwrap();
        assert_eq!(v.live_entries(d).unwrap(), 3);
        assert_eq!(v.free_slots(d).unwrap(), 5);
        assert_eq!(v.directory(d).unwrap().entry_count, 8);
        // First-fit: the next create takes the lowest free slot.
        assert_eq!(v.create_entry(d, "NEW.DAT", 64).unwrap(), 3);
        assert_eq!(v.find_entry(d, "NEW.DAT").unwrap(), Some(3));
    }

    #[test]
    fn duplicate_name_create_is_rejected() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory_with_capacity(2, 8).unwrap();
        // Synthetic entry 0 exists; creating it again (in any case
        // spelling) is a duplicate, and the volume is unchanged.
        assert_eq!(
            v.create_entry(d, &synthetic_name(0), 64),
            Err(VolumeError::DuplicateName)
        );
        assert_eq!(
            v.create_entry(d, "f0000000.dat", 64),
            Err(VolumeError::DuplicateName)
        );
        assert_eq!(v.live_entries(d).unwrap(), 2);
        assert_eq!(v.free_slots(d).unwrap(), 6);
        // A fresh name still works, then immediately collides.
        v.create_entry(d, "A.TXT", 64).unwrap();
        assert_eq!(
            v.create_entry(d, "A.TXT", 64),
            Err(VolumeError::DuplicateName)
        );
    }

    #[test]
    fn unlink_of_missing_entry_is_rejected() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory_with_capacity(2, 4).unwrap();
        assert_eq!(v.unlink(d, "GHOST.TXT"), Err(VolumeError::NoSuchEntry));
        // Unlinking twice: the first succeeds, the second is missing.
        let slot = v.unlink(d, &synthetic_name(1)).unwrap();
        assert_eq!(slot, 1);
        assert_eq!(
            v.unlink(d, &synthetic_name(1)),
            Err(VolumeError::NoSuchEntry)
        );
        assert_eq!(v.live_entries(d).unwrap(), 1);
        // The freed slot carries the FAT deleted marker in the image.
        let off = v.directory(d).unwrap().image_offset + DIRENT_SIZE;
        assert_eq!(v.image[off], DELETED_MARKER);
        // Out-of-range directories error the same way as elsewhere.
        assert_eq!(v.unlink(99, "X.TXT"), Err(VolumeError::NoSuchDirectory));
    }

    #[test]
    fn unlinked_slots_are_reused_first_fit() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory(6).unwrap();
        assert_eq!(
            v.create_entry(d, "FULL.TXT", 1),
            Err(VolumeError::DirectoryFull)
        );
        v.unlink(d, &synthetic_name(4)).unwrap();
        v.unlink(d, &synthetic_name(2)).unwrap();
        // Lowest freed slot first, regardless of unlink order.
        assert_eq!(v.create_entry(d, "A.TXT", 1).unwrap(), 2);
        assert_eq!(v.create_entry(d, "B.TXT", 1).unwrap(), 4);
        assert_eq!(
            v.create_entry(d, "C.TXT", 1),
            Err(VolumeError::DirectoryFull)
        );
    }

    #[test]
    fn rename_moves_the_name_but_keeps_the_slot() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory(4).unwrap();
        let slot = v.rename(d, &synthetic_name(2), "NEW.DAT").unwrap();
        assert_eq!(slot, 2);
        assert_eq!(v.find_entry(d, "NEW.DAT").unwrap(), Some(2));
        assert_eq!(v.find_entry(d, &synthetic_name(2)).unwrap(), None);
        let e = v.read_entry(d, 2).unwrap();
        assert_eq!(e.display_name(), "NEW.DAT");
        assert_eq!(e.size, 64, "rename keeps the entry payload");
        // Error paths: missing source, taken destination.
        assert_eq!(
            v.rename(d, "GHOST.TXT", "X.TXT"),
            Err(VolumeError::NoSuchEntry)
        );
        assert_eq!(
            v.rename(d, &synthetic_name(1), "NEW.DAT"),
            Err(VolumeError::DuplicateName)
        );
        // Rename to a canonically equal name is a no-op success.
        assert_eq!(v.rename(d, "NEW.DAT", "new.dat"), Ok(2));
        assert_eq!(v.find_entry(d, "NEW.DAT").unwrap(), Some(2));
        assert_eq!(v.live_entries(d).unwrap(), 4);
    }

    /// Empties directory `d` by unlinking its synthetic entries `0..n`.
    fn drain(v: &mut Volume, d: DirId, n: u32) {
        for i in 0..n {
            v.unlink(d, &synthetic_name(i)).unwrap();
        }
    }

    #[test]
    fn remove_directory_rejects_non_empty_and_missing() {
        let mut v = Volume::new(VolumeGeometry::default());
        let d = v.create_directory(3).unwrap();
        assert_eq!(v.remove_directory(d), Err(VolumeError::DirectoryNotEmpty));
        assert_eq!(v.remove_directory(99), Err(VolumeError::NoSuchDirectory));
        drain(&mut v, d, 3);
        assert_eq!(v.remove_directory(d), Ok(()));
        // Gone: every per-directory operation reports NoSuchDirectory,
        // and removing twice fails the same way.
        assert_eq!(v.remove_directory(d), Err(VolumeError::NoSuchDirectory));
        assert_eq!(v.live_entries(d), Err(VolumeError::NoSuchDirectory));
        assert_eq!(v.search(d, "X.TXT"), Err(VolumeError::NoSuchDirectory));
        assert_eq!(
            v.create_entry(d, "X.TXT", 1),
            Err(VolumeError::NoSuchDirectory)
        );
        assert_eq!(v.dir_count(), 0);
    }

    #[test]
    fn remove_directory_reclaims_clusters_and_the_id() {
        let mut v = Volume::new(VolumeGeometry {
            bytes_per_cluster: 4096,
            data_clusters: 4,
        });
        let a = v.create_directory(400).unwrap(); // 12.5 KB -> 4 clusters
        let offset_a = v.directory(a).unwrap().image_offset;
        assert!(matches!(
            v.create_directory(400),
            Err(VolumeError::Fat(FatError::OutOfSpace))
        ));
        drain(&mut v, a, 400);
        v.remove_directory(a).unwrap();
        // Both the clusters and the DirId come back; the freed clusters
        // are the lowest free ones, so the image range is reused too.
        let b = v.create_directory(400).unwrap();
        assert_eq!(b, a);
        assert_eq!(v.directory(b).unwrap().image_offset, offset_a);
        assert_eq!(v.live_entries(b).unwrap(), 400);
        // The reused image range was wiped: entry 0 is the fresh
        // synthetic entry, not stale bytes.
        assert!(v.read_entry(b, 0).unwrap().matches(&synthetic_name(0)));
    }

    #[test]
    fn reclaimed_ids_are_reused_lowest_first_and_ids_diverge_from_slots() {
        let mut v = Volume::new(VolumeGeometry::default());
        for _ in 0..4 {
            v.create_directory(2).unwrap();
        }
        drain(&mut v, 1, 2);
        v.remove_directory(1).unwrap();
        drain(&mut v, 3, 2);
        v.remove_directory(3).unwrap();
        assert_eq!(v.dir_count(), 2);
        assert_eq!(
            v.directories().map(|d| d.index).collect::<Vec<_>>(),
            vec![0, 2]
        );
        // Lowest reclaimed id first: 1, then 3, then a fresh 4 — while
        // storage slots come back LIFO, so id 1 lands in slot 3's storage
        // and the id -> slot map is not the identity.
        assert_eq!(v.create_directory(2).unwrap(), 1);
        assert_eq!(v.create_directory(2).unwrap(), 3);
        assert_eq!(v.create_directory(2).unwrap(), 4);
        assert_eq!(
            v.directories().map(|d| d.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        for d in 0..5 {
            assert_eq!(v.live_entries(d).unwrap(), 2, "dir {d}");
            assert_eq!(v.find_entry(d, &synthetic_name(0)).unwrap(), Some(0));
        }
    }
}
