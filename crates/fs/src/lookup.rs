//! Annotated directory-lookup operations.
//!
//! This is the bridge between the file system and the runtime: given a
//! directory and a target file, it produces the action sequence of one
//! benchmark operation — `ct_start(dir)`, take the directory's spin lock,
//! scan the entries up to the match, pay the name-comparison cost, unlock,
//! `ct_end()` — mirroring Figure 3 of the paper.

use o2_runtime::{AccessKind, Action, LockId, ObjectDescriptor, OpBuilder};

use crate::dirent::DIRENT_SIZE;
use crate::volume::{DirectoryHandle, Volume, VolumeError};

/// Cost model for the lookup inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupCost {
    /// Cycles of computation per entry examined (name comparison and loop
    /// overhead). The paper's EFSL-derived lookup has a
    /// "higher-performance inner loop"; an 8.3 comparison is two 8-byte
    /// compares plus loop overhead, ~8 cycles per entry, which also
    /// reproduces the paper's absolute throughput range on the default
    /// machine.
    pub compare_cycles_per_entry: u64,
    /// Fixed per-operation overhead (random number generation, call
    /// overhead) charged once per lookup.
    pub fixed_overhead_cycles: u64,
}

impl Default for LookupCost {
    fn default() -> Self {
        Self {
            compare_cycles_per_entry: 8,
            fixed_overhead_cycles: 120,
        }
    }
}

/// A fully described lookup operation, ready to be turned into actions.
#[derive(Debug, Clone, Copy)]
pub struct LookupOp {
    /// Directory index within the volume.
    pub dir_index: u32,
    /// Index of the entry being looked up.
    pub entry_index: u32,
    /// Entries that will be examined (entry_index + 1 for a hit).
    pub entries_examined: u32,
}

/// Builds the annotated action sequence for one lookup, using the
/// directory's registered lock.
///
/// The object named in the annotation is the directory's simulated address
/// (its [`DirectoryHandle::object_id`]); the read covers exactly the bytes
/// the linear search touches.
pub fn lookup_actions(
    dir: &DirectoryHandle,
    lock: LockId,
    entry_index: u32,
    cost: &LookupCost,
) -> Vec<Action> {
    lookup_actions_kind(dir, lock, entry_index, cost, AccessKind::Write)
}

/// Like [`lookup_actions`] but with an explicit access kind.
///
/// A read-kind lookup tells the policy the operation will not mutate the
/// directory, so it may be served from any replica; a write-kind lookup
/// must run against the primary copy. `lookup_actions` defaults to
/// [`AccessKind::Write`], the conservative choice that reproduces the
/// original single-copy behaviour.
pub fn lookup_actions_kind(
    dir: &DirectoryHandle,
    lock: LockId,
    entry_index: u32,
    cost: &LookupCost,
    kind: AccessKind,
) -> Vec<Action> {
    let examined = entry_index.min(dir.entry_count.saturating_sub(1)) + 1;
    let bytes = u64::from(examined) * DIRENT_SIZE as u64;
    OpBuilder::annotated_kind(dir.object_id(), kind)
        .compute(cost.fixed_overhead_cycles)
        .lock(lock)
        .read(dir.sim_addr, bytes)
        .compute(u64::from(examined) * cost.compare_cycles_per_entry)
        .unlock(lock)
        .finish()
}

/// Builds the action sequence for an *unannotated* lookup (no
/// `ct_start`/`ct_end`). Used to show that the baseline's behaviour is not
/// an artifact of the annotations themselves.
pub fn lookup_actions_unannotated(
    dir: &DirectoryHandle,
    lock: LockId,
    entry_index: u32,
    cost: &LookupCost,
) -> Vec<Action> {
    let examined = entry_index.min(dir.entry_count.saturating_sub(1)) + 1;
    let bytes = u64::from(examined) * DIRENT_SIZE as u64;
    OpBuilder::new()
        .compute(cost.fixed_overhead_cycles)
        .lock(lock)
        .read(dir.sim_addr, bytes)
        .compute(u64::from(examined) * cost.compare_cycles_per_entry)
        .unlock(lock)
        .build()
}

/// Performs the lookup against the actual volume image (functional check,
/// independent of the simulation) and returns the operation description.
pub fn resolve(
    volume: &Volume,
    dir_index: u32,
    name: &str,
) -> Result<Option<LookupOp>, VolumeError> {
    match volume.search(dir_index, name)? {
        Some((entry_index, examined)) => Ok(Some(LookupOp {
            dir_index,
            entry_index,
            entries_examined: examined,
        })),
        None => Ok(None),
    }
}

/// The object descriptor for a directory, for registration with the
/// runtime and the scheduling policy.
pub fn directory_descriptor(dir: &DirectoryHandle, lock: LockId) -> ObjectDescriptor {
    ObjectDescriptor::new(dir.object_id(), dir.sim_addr, dir.byte_len as u64)
        .read_mostly(true)
        .with_lock(lock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirent::synthetic_name;
    use o2_sim::SimMemory;

    fn mapped_volume() -> Volume {
        let mut v = Volume::build_benchmark(2, 100).unwrap();
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        v
    }

    #[test]
    fn actions_cover_exactly_the_scanned_bytes() {
        let v = mapped_volume();
        let dir = v.directory(0).unwrap();
        let cost = LookupCost::default();
        let actions = lookup_actions(dir, 3, 9, &cost);
        // ct_start, fixed compute, lock, read, compare compute, unlock, ct_end
        assert_eq!(actions.len(), 7);
        assert_eq!(
            actions[0],
            Action::CtStart(dir.object_id(), o2_runtime::AccessKind::Write)
        );
        assert_eq!(actions[6], Action::CtEnd);
        match actions[3] {
            Action::Read { addr, len } => {
                assert_eq!(addr, dir.sim_addr);
                assert_eq!(len, 10 * 32);
            }
            ref other => panic!("expected read, got {other:?}"),
        }
        match actions[4] {
            Action::Compute(c) => assert_eq!(c, 10 * cost.compare_cycles_per_entry),
            ref other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn kind_aware_lookup_changes_only_the_annotation() {
        let v = mapped_volume();
        let dir = v.directory(0).unwrap();
        let cost = LookupCost::default();
        let write = lookup_actions(dir, 3, 9, &cost);
        let read = lookup_actions_kind(dir, 3, 9, &cost, AccessKind::Read);
        assert_eq!(read[0], Action::CtStart(dir.object_id(), AccessKind::Read));
        // Everything after the ct_start is identical to the write form.
        assert_eq!(read[1..], write[1..]);
    }

    #[test]
    fn unannotated_actions_have_no_ct_markers() {
        let v = mapped_volume();
        let dir = v.directory(1).unwrap();
        let actions = lookup_actions_unannotated(dir, 0, 5, &LookupCost::default());
        assert!(actions.iter().all(|a| !a.is_annotation()));
        assert_eq!(actions.len(), 5);
    }

    #[test]
    fn entry_index_is_clamped_to_the_directory() {
        let v = mapped_volume();
        let dir = v.directory(0).unwrap();
        let actions = lookup_actions(dir, 0, 10_000, &LookupCost::default());
        match actions[3] {
            Action::Read { len, .. } => assert_eq!(len, 100 * 32),
            ref other => panic!("expected read, got {other:?}"),
        }
    }

    #[test]
    fn resolve_checks_the_real_image() {
        let v = mapped_volume();
        let op = resolve(&v, 1, &synthetic_name(42)).unwrap().unwrap();
        assert_eq!(op.entry_index, 42);
        assert_eq!(op.entries_examined, 43);
        assert_eq!(op.dir_index, 1);
        assert!(resolve(&v, 1, "NOPE.TXT").unwrap().is_none());
        assert!(resolve(&v, 9, "X").is_err());
    }

    #[test]
    fn descriptor_reflects_the_directory() {
        let v = mapped_volume();
        let dir = v.directory(0).unwrap();
        let d = directory_descriptor(dir, 7);
        assert_eq!(d.id, dir.object_id());
        assert_eq!(d.size, dir.byte_len as u64);
        assert_eq!(d.lock, Some(7));
        assert!(d.read_mostly);
    }
}
