//! FAT directory entries.
//!
//! The paper's benchmark file system is derived from the EFSL FAT
//! implementation: "Each directory contains 1,000 entries, and each entry
//! uses 32 bytes of memory." This module implements the classic 32-byte
//! FAT directory entry with 8.3 names.

use o2_collections::{FlatKey, FIB_MULT};

/// Size of one directory entry in bytes.
pub const DIRENT_SIZE: usize = 32;

/// Attribute flag: entry is a subdirectory.
pub const ATTR_DIRECTORY: u8 = 0x10;
/// Attribute flag: plain file (archive bit).
pub const ATTR_ARCHIVE: u8 = 0x20;

/// A 32-byte FAT directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// File name, space padded (8 bytes).
    pub name: [u8; 8],
    /// Extension, space padded (3 bytes).
    pub ext: [u8; 3],
    /// Attribute bits.
    pub attr: u8,
    /// First cluster of the file's data.
    pub first_cluster: u16,
    /// File size in bytes.
    pub size: u32,
}

impl DirEntry {
    /// Creates a file entry from a `NAME.EXT` style name.
    pub fn file(name: &str, first_cluster: u16, size: u32) -> Self {
        let (n, e) = split_8_3(name);
        Self {
            name: n,
            ext: e,
            attr: ATTR_ARCHIVE,
            first_cluster,
            size,
        }
    }

    /// Creates a subdirectory entry.
    pub fn directory(name: &str, first_cluster: u16) -> Self {
        let (n, e) = split_8_3(name);
        Self {
            name: n,
            ext: e,
            attr: ATTR_DIRECTORY,
            first_cluster,
            size: 0,
        }
    }

    /// Whether the entry is a subdirectory.
    pub fn is_directory(&self) -> bool {
        self.attr & ATTR_DIRECTORY != 0
    }

    /// The entry's name in `NAME.EXT` form (trailing spaces stripped).
    pub fn display_name(&self) -> String {
        let name = String::from_utf8_lossy(&self.name).trim_end().to_string();
        let ext = String::from_utf8_lossy(&self.ext).trim_end().to_string();
        if ext.is_empty() {
            name
        } else {
            format!("{name}.{ext}")
        }
    }

    /// Whether the entry matches a `NAME.EXT` style name (case-insensitive,
    /// as FAT names are stored upper-case).
    pub fn matches(&self, name: &str) -> bool {
        let (n, e) = split_8_3(name);
        self.name == n && self.ext == e
    }

    /// Serializes the entry into its 32-byte on-disk form.
    pub fn encode(&self) -> [u8; DIRENT_SIZE] {
        let mut out = [0u8; DIRENT_SIZE];
        out[0..8].copy_from_slice(&self.name);
        out[8..11].copy_from_slice(&self.ext);
        out[11] = self.attr;
        // Bytes 12..26 are reserved / timestamps; left zero.
        out[26..28].copy_from_slice(&self.first_cluster.to_le_bytes());
        out[28..32].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Parses a 32-byte on-disk entry.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < DIRENT_SIZE {
            return None;
        }
        let mut name = [0u8; 8];
        let mut ext = [0u8; 3];
        name.copy_from_slice(&bytes[0..8]);
        ext.copy_from_slice(&bytes[8..11]);
        Some(Self {
            name,
            ext,
            attr: bytes[11],
            first_cluster: u16::from_le_bytes([bytes[26], bytes[27]]),
            size: u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]),
        })
    }
}

/// An 8.3 name as a flat-table key: the 11 canonical bytes (space-padded,
/// upper-cased name then extension, the exact bytes stored in a
/// [`DirEntry`]), so two names are equal exactly when [`DirEntry::matches`]
/// would say so. The vacant-slot sentinel is all `0xFF` bytes, which can
/// never appear in a canonicalised name (they are ASCII or spaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameKey([u8; 11]);

impl NameKey {
    /// Canonicalises a `NAME.EXT` style string into a key.
    pub fn new(name: &str) -> Self {
        let (n, e) = split_8_3(name);
        let mut bytes = [0u8; 11];
        bytes[..8].copy_from_slice(&n);
        bytes[8..].copy_from_slice(&e);
        Self(bytes)
    }
}

impl FlatKey for NameKey {
    const EMPTY: Self = NameKey([0xFF; 11]);

    /// FNV-1a over the 11 name bytes, finished with the shared Fibonacci
    /// multiply so the high bits (which the table indexes by) are mixed.
    fn hash(self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.0 {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h.wrapping_mul(FIB_MULT)
    }
}

impl From<&DirEntry> for NameKey {
    fn from(e: &DirEntry) -> Self {
        let mut bytes = [0u8; 11];
        bytes[..8].copy_from_slice(&e.name);
        bytes[8..].copy_from_slice(&e.ext);
        Self(bytes)
    }
}

/// Splits a `NAME.EXT` string into space-padded, upper-cased 8.3 fields,
/// truncating over-long components.
pub fn split_8_3(name: &str) -> ([u8; 8], [u8; 3]) {
    let mut n = [b' '; 8];
    let mut e = [b' '; 3];
    let (base, ext) = match name.rsplit_once('.') {
        Some((b, x)) => (b, x),
        None => (name, ""),
    };
    for (i, c) in base.bytes().take(8).enumerate() {
        n[i] = c.to_ascii_uppercase();
    }
    for (i, c) in ext.bytes().take(3).enumerate() {
        e[i] = c.to_ascii_uppercase();
    }
    (n, e)
}

/// Generates the deterministic name of the `i`-th synthetic file in a
/// benchmark directory (e.g. `F0000042.DAT`).
pub fn synthetic_name(i: u32) -> String {
    format!("F{i:07}.DAT")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_exactly_32_bytes() {
        let e = DirEntry::file("HELLO.TXT", 7, 1234);
        assert_eq!(e.encode().len(), DIRENT_SIZE);
    }

    #[test]
    fn encode_decode_round_trip() {
        let e = DirEntry::file("readme.md", 42, 9_999);
        let d = DirEntry::decode(&e.encode()).unwrap();
        assert_eq!(e, d);
        assert_eq!(d.display_name(), "README.MD");
        assert!(!d.is_directory());
    }

    #[test]
    fn directory_entries_have_the_attribute() {
        let e = DirEntry::directory("SUBDIR", 3);
        assert!(e.is_directory());
        assert_eq!(e.display_name(), "SUBDIR");
        let d = DirEntry::decode(&e.encode()).unwrap();
        assert!(d.is_directory());
    }

    #[test]
    fn split_8_3_pads_truncates_and_uppercases() {
        let (n, e) = split_8_3("abc.t");
        assert_eq!(&n, b"ABC     ");
        assert_eq!(&e, b"T  ");
        let (n, e) = split_8_3("averylongname.text");
        assert_eq!(&n, b"AVERYLON");
        assert_eq!(&e, b"TEX");
        let (n, e) = split_8_3("noext");
        assert_eq!(&n, b"NOEXT   ");
        assert_eq!(&e, b"   ");
    }

    #[test]
    fn matches_is_case_insensitive() {
        let e = DirEntry::file("File.Dat", 0, 0);
        assert!(e.matches("FILE.DAT"));
        assert!(e.matches("file.dat"));
        assert!(!e.matches("OTHER.DAT"));
    }

    #[test]
    fn name_keys_match_entry_equivalence() {
        // Two spellings that `matches` treats as equal map to one key.
        assert_eq!(NameKey::new("file.dat"), NameKey::new("FILE.DAT"));
        assert_ne!(NameKey::new("FILE.DAT"), NameKey::new("OTHER.DAT"));
        let e = DirEntry::file("File.Dat", 0, 0);
        assert_eq!(NameKey::from(&e), NameKey::new("FILE.DAT"));
        // The sentinel never equals a real name.
        assert_ne!(NameKey::new("FILE.DAT"), NameKey::EMPTY);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(DirEntry::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn synthetic_names_are_unique_and_valid() {
        let a = synthetic_name(1);
        let b = synthetic_name(999_999);
        assert_ne!(a, b);
        let e = DirEntry::file(&a, 0, 0);
        assert!(e.matches(&a));
        let e = DirEntry::file(&b, 0, 0);
        assert!(e.matches(&b));
    }
}
