//! The file allocation table: cluster chains.

/// Marker for a free cluster.
pub const FAT_FREE: u16 = 0x0000;
/// End-of-chain marker.
pub const FAT_EOC: u16 = 0xFFFF;
/// First usable data cluster (clusters 0 and 1 are reserved, as in FAT16).
pub const FIRST_DATA_CLUSTER: u16 = 2;

/// A FAT16-style allocation table.
#[derive(Debug, Clone)]
pub struct Fat {
    entries: Vec<u16>,
}

/// Errors from FAT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatError {
    /// Not enough free clusters to satisfy an allocation.
    OutOfSpace,
    /// A cluster index outside the table (or a reserved cluster) was used.
    InvalidCluster,
}

impl Fat {
    /// Creates a table with `clusters` total clusters (including the two
    /// reserved ones).
    pub fn new(clusters: usize) -> Self {
        let mut entries = vec![FAT_FREE; clusters.max(FIRST_DATA_CLUSTER as usize)];
        // Reserved clusters carry media/EOC markers, as on a real volume.
        entries[0] = 0xFFF8;
        entries[1] = FAT_EOC;
        Self { entries }
    }

    /// Total clusters in the table.
    pub fn total_clusters(&self) -> usize {
        self.entries.len()
    }

    /// Number of free data clusters.
    pub fn free_clusters(&self) -> usize {
        self.entries[FIRST_DATA_CLUSTER as usize..]
            .iter()
            .filter(|&&e| e == FAT_FREE)
            .count()
    }

    /// Allocates a chain of `count` clusters and returns the first cluster.
    /// The clusters are linked in allocation order and terminated with an
    /// end-of-chain marker.
    pub fn alloc_chain(&mut self, count: usize) -> Result<u16, FatError> {
        if count == 0 {
            return Err(FatError::InvalidCluster);
        }
        let free: Vec<u16> = (FIRST_DATA_CLUSTER..self.entries.len() as u16)
            .filter(|&c| self.entries[c as usize] == FAT_FREE)
            .take(count)
            .collect();
        if free.len() < count {
            return Err(FatError::OutOfSpace);
        }
        for w in free.windows(2) {
            self.entries[w[0] as usize] = w[1];
        }
        self.entries[*free.last().expect("non-empty") as usize] = FAT_EOC;
        Ok(free[0])
    }

    /// Follows a chain from `first`, returning every cluster in order.
    pub fn chain(&self, first: u16) -> Result<Vec<u16>, FatError> {
        let mut out = Vec::new();
        let mut cur = first;
        loop {
            if cur < FIRST_DATA_CLUSTER || (cur as usize) >= self.entries.len() {
                return Err(FatError::InvalidCluster);
            }
            if out.contains(&cur) {
                // A cycle indicates corruption; report it as invalid.
                return Err(FatError::InvalidCluster);
            }
            out.push(cur);
            let next = self.entries[cur as usize];
            if next == FAT_EOC {
                break;
            }
            if next == FAT_FREE {
                return Err(FatError::InvalidCluster);
            }
            cur = next;
        }
        Ok(out)
    }

    /// Frees an entire chain starting at `first`.
    pub fn free_chain(&mut self, first: u16) -> Result<usize, FatError> {
        let chain = self.chain(first)?;
        let n = chain.len();
        for c in chain {
            self.entries[c as usize] = FAT_FREE;
        }
        Ok(n)
    }

    /// Raw FAT entry for a cluster (for tests and image serialization).
    pub fn entry(&self, cluster: u16) -> Option<u16> {
        self.entries.get(cluster as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_reserves_two_clusters() {
        let fat = Fat::new(16);
        assert_eq!(fat.total_clusters(), 16);
        assert_eq!(fat.free_clusters(), 14);
        assert_ne!(fat.entry(0), Some(FAT_FREE));
        assert_ne!(fat.entry(1), Some(FAT_FREE));
    }

    #[test]
    fn alloc_chain_links_clusters_in_order() {
        let mut fat = Fat::new(16);
        let first = fat.alloc_chain(3).unwrap();
        let chain = fat.chain(first).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0], first);
        assert_eq!(fat.free_clusters(), 11);
        // Consecutive allocation returns consecutive clusters on a fresh
        // volume (which keeps directory data contiguous, as the benchmark
        // assumes).
        assert_eq!(chain, vec![first, first + 1, first + 2]);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut fat = Fat::new(32);
        let a = fat.alloc_chain(5).unwrap();
        let b = fat.alloc_chain(5).unwrap();
        let ca = fat.chain(a).unwrap();
        let cb = fat.chain(b).unwrap();
        assert!(ca.iter().all(|c| !cb.contains(c)));
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut fat = Fat::new(8);
        assert_eq!(fat.alloc_chain(100), Err(FatError::OutOfSpace));
        assert_eq!(fat.alloc_chain(0), Err(FatError::InvalidCluster));
    }

    #[test]
    fn free_chain_releases_clusters() {
        let mut fat = Fat::new(16);
        let first = fat.alloc_chain(4).unwrap();
        assert_eq!(fat.free_clusters(), 10);
        assert_eq!(fat.free_chain(first), Ok(4));
        assert_eq!(fat.free_clusters(), 14);
        assert_eq!(fat.chain(first), Err(FatError::InvalidCluster));
    }

    #[test]
    fn chain_rejects_reserved_and_out_of_range_clusters() {
        let fat = Fat::new(16);
        assert_eq!(fat.chain(0), Err(FatError::InvalidCluster));
        assert_eq!(fat.chain(1), Err(FatError::InvalidCluster));
        assert_eq!(fat.chain(999), Err(FatError::InvalidCluster));
    }
}
