//! # o2-fs — an EFSL-style in-memory FAT file system
//!
//! The paper's evaluation (Section 5) benchmarks directory lookups over a
//! file system "derived from the EFSL FAT implementation", modified to use
//! an in-memory image, no buffer cache, a fast lookup inner loop and
//! per-directory spin locks. This crate rebuilds that substrate:
//!
//! * classic 32-byte FAT directory entries with 8.3 names ([`dirent`]),
//! * a FAT16-style allocation table with cluster chains ([`fat`]),
//! * an in-memory volume whose benchmark directories (1,000 entries of
//!   32 bytes each, as in the paper) can be mapped into the simulated
//!   physical address space ([`volume`]),
//! * annotated lookup operations — `ct_start(dir)`, lock, scan, unlock,
//!   `ct_end()` — exactly as in Figure 3 of the paper ([`lookup`]).
//!
//! ```
//! use o2_fs::{Volume, synthetic_name};
//!
//! let volume = Volume::build_benchmark(4, 1000).unwrap();
//! assert_eq!(volume.total_directory_bytes(), 4 * 32_000);
//! let (idx, examined) = volume.search(2, &synthetic_name(10)).unwrap().unwrap();
//! assert_eq!((idx, examined), (10, 11));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dirent;
pub mod fat;
pub mod lookup;
pub mod volume;

pub use dirent::{
    split_8_3, synthetic_name, DirEntry, NameKey, ATTR_ARCHIVE, ATTR_DIRECTORY, DIRENT_SIZE,
};
pub use fat::{Fat, FatError, FAT_EOC, FAT_FREE, FIRST_DATA_CLUSTER};
pub use lookup::{
    directory_descriptor, lookup_actions, lookup_actions_kind, lookup_actions_unannotated, resolve,
    LookupCost, LookupOp,
};
pub use volume::{DirId, DirectoryHandle, Volume, VolumeError, VolumeGeometry, DELETED_MARKER};
