//! Micro-benchmarks for the building blocks:
//!
//! * simulator access-path throughput (cache hit and DRAM miss),
//! * the greedy cache-packing algorithm at several object counts
//!   (Section 4 claims Θ(n·log n)),
//! * the FAT directory search,
//! * one end-to-end simulated lookup experiment under both schedulers.
//!
//! This is a plain `harness = false` timing harness (the workspace builds
//! offline, so criterion is unavailable): each benchmark runs a calibrated
//! number of iterations and reports ns/iter on stdout.

use std::time::Instant;

use o2_core::{pack, PackItem};
use o2_fs::{synthetic_name, Volume};
use o2_sim::{AccessKind, ContentionModel, Machine, MachineConfig};
use o2_workloads::{Experiment, WorkloadSpec};

/// Times `iters` runs of `f` and prints a criterion-style line.
fn bench<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) {
    // One warm-up pass so lazy initialisation is not measured.
    let _ = f();
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {iters:>9} iters   {ns:>12.1} ns/iter");
}

fn bench_machine_access() {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut m = Machine::new(cfg);
    let r = m.memory_mut().alloc(64, 0);
    m.access(0, r.addr, 64, AccessKind::Read);
    bench("sim_access/l1_hit", 1_000_000, || {
        m.access(0, r.addr, 64, AccessKind::Read)
    });

    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut m = Machine::new(cfg);
    let r = m.memory_mut().alloc(64 * 1024 * 1024, 0);
    let mut offset = 0u64;
    bench("sim_access/dram_stream_4kb", 20_000, || {
        let addr = r.addr + (offset % (63 * 1024 * 1024));
        offset += 4096;
        m.access(0, addr, 4096, AccessKind::Read)
    });
}

fn bench_cache_packing() {
    for n in [64u32, 512, 4096] {
        let items: Vec<PackItem> = (0..n)
            .map(|i| PackItem {
                object: i,
                size: 32_000,
                expense: (i % 97) as f64,
            })
            .collect();
        let capacities = vec![944 * 1024u64; 16];
        let iters = u64::from(200_000 / n).max(10);
        bench(&format!("cache_packing/{n}"), iters, || {
            pack(&items, &capacities)
        });
    }
}

fn bench_fs_lookup() {
    let volume = Volume::build_benchmark(8, 1000).unwrap();
    let name = synthetic_name(999);
    // The linear image scan, so the series stays comparable with
    // pre-flat-index captures of this benchmark.
    bench("fat_directory_search_1000_entries", 20_000, || {
        volume.search_linear(3, &name).unwrap()
    });
    bench("fat_directory_index_1000_entries", 2_000_000, || {
        volume.search(3, &name).unwrap()
    });
}

fn bench_end_to_end() {
    for (label, kind) in [
        ("without_coretime", o2_bench::PolicyKind::ThreadScheduler),
        ("with_coretime", o2_bench::PolicyKind::CoreTime),
    ] {
        bench(&format!("simulated_lookups/{label}"), 3, || {
            let mut spec = WorkloadSpec::for_total_kb(2048);
            spec.warmup_ops = 200;
            spec.measure_cycles = 500_000;
            let mut exp = Experiment::build(spec.clone(), kind.build(&spec.machine));
            exp.run().window.ops
        });
    }
}

fn main() {
    bench_machine_access();
    bench_cache_packing();
    bench_fs_lookup();
    bench_end_to_end();
}
