//! Criterion micro-benchmarks for the building blocks:
//!
//! * simulator access-path throughput (cache hit and DRAM miss),
//! * the greedy cache-packing algorithm at several object counts
//!   (Section 4 claims Θ(n·log n)),
//! * the FAT directory search,
//! * one end-to-end simulated lookup experiment under both schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use o2_core::{pack, PackItem};
use o2_fs::{synthetic_name, Volume};
use o2_sim::{AccessKind, Machine, MachineConfig};
use o2_workloads::{Experiment, WorkloadSpec};

fn bench_machine_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_access");
    group.bench_function("l1_hit", |b| {
        let mut cfg = MachineConfig::amd16();
        cfg.contention = o2_sim::ContentionModel::None;
        let mut m = Machine::new(cfg);
        let r = m.memory_mut().alloc(64, 0);
        m.access(0, r.addr, 64, AccessKind::Read);
        b.iter(|| m.access(0, r.addr, 64, AccessKind::Read));
    });
    group.bench_function("dram_stream_4kb", |b| {
        let mut cfg = MachineConfig::amd16();
        cfg.contention = o2_sim::ContentionModel::None;
        let mut m = Machine::new(cfg);
        let r = m.memory_mut().alloc(64 * 1024 * 1024, 0);
        let mut offset = 0u64;
        b.iter(|| {
            let addr = r.addr + (offset % (63 * 1024 * 1024));
            offset += 4096;
            m.access(0, addr, 4096, AccessKind::Read)
        });
    });
    group.finish();
}

fn bench_cache_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_packing");
    for n in [64u64, 512, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let items: Vec<PackItem> = (0..n)
                .map(|i| PackItem {
                    object: i,
                    size: 32_000,
                    expense: (i % 97) as f64,
                })
                .collect();
            let capacities = vec![944 * 1024u64; 16];
            b.iter(|| pack(&items, &capacities));
        });
    }
    group.finish();
}

fn bench_fs_lookup(c: &mut Criterion) {
    let volume = Volume::build_benchmark(8, 1000).unwrap();
    c.bench_function("fat_directory_search_1000_entries", |b| {
        let name = synthetic_name(999);
        b.iter(|| volume.search(3, &name).unwrap())
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_lookups");
    group.sample_size(10);
    for (label, kind) in [
        ("without_coretime", o2_bench::PolicyKind::ThreadScheduler),
        ("with_coretime", o2_bench::PolicyKind::CoreTime),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut spec = WorkloadSpec::for_total_kb(2048);
                spec.warmup_ops = 200;
                spec.measure_cycles = 500_000;
                let mut exp = Experiment::build(spec.clone(), kind.build(&spec));
                exp.run().window.ops
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_access,
    bench_cache_packing,
    bench_fs_lookup,
    bench_end_to_end
);
criterion_main!(benches);
