//! # o2-bench — the experiment harness
//!
//! One binary per figure/table of the paper plus ablations; this library
//! holds the shared plumbing: policy construction, size sweeps, and series
//! assembly. See DESIGN.md and README.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use o2_baseline::{StaticPartition, ThreadClustering, ThreadScheduler};
use o2_core::{CoreTime, CoreTimeConfig};
use o2_metrics::{Series, SeriesTable};
use o2_runtime::SchedPolicy;
use o2_workloads::{Experiment, Measurement, WorkloadSpec};

/// Which scheduling policy to construct for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// CoreTime with the default configuration ("With CoreTime").
    CoreTime,
    /// CoreTime with every Section-6.2 extension enabled.
    CoreTimeExtensions,
    /// The traditional thread scheduler ("Without CoreTime").
    ThreadScheduler,
    /// Sharing-aware thread clustering (Tam et al.).
    ThreadClustering,
    /// Static round-robin object partitioning.
    StaticPartition,
}

impl PolicyKind {
    /// Human-readable label used in series names (matches the paper's
    /// figure legends where applicable).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::CoreTime => "With CoreTime",
            PolicyKind::CoreTimeExtensions => "With CoreTime (+extensions)",
            PolicyKind::ThreadScheduler => "Without CoreTime",
            PolicyKind::ThreadClustering => "Thread clustering",
            PolicyKind::StaticPartition => "Static partition",
        }
    }

    /// Builds the policy for a given workload specification.
    pub fn build(&self, spec: &WorkloadSpec) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::CoreTime => CoreTime::policy(&spec.machine),
            PolicyKind::CoreTimeExtensions => CoreTime::policy_with_extensions(&spec.machine),
            PolicyKind::ThreadScheduler => Box::new(ThreadScheduler::new()),
            PolicyKind::ThreadClustering => Box::new(ThreadClustering::new(
                spec.machine.chips,
                spec.machine.cores_per_chip,
            )),
            PolicyKind::StaticPartition => {
                Box::new(StaticPartition::new(spec.machine.total_cores()))
            }
        }
    }

    /// Builds a CoreTime policy with an explicit configuration (for
    /// ablations); other kinds ignore the configuration.
    pub fn build_with_coretime_config(
        &self,
        spec: &WorkloadSpec,
        cfg: CoreTimeConfig,
    ) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::CoreTime | PolicyKind::CoreTimeExtensions => {
                CoreTime::policy_with(&spec.machine, cfg)
            }
            other => other.build(spec),
        }
    }
}

/// Runs one (spec, policy) point and returns its measurement.
pub fn run_point(spec: &WorkloadSpec, policy: PolicyKind) -> Measurement {
    let p = policy.build(spec);
    Experiment::build(spec.clone(), p).run()
}

/// The total-data-size sweep of Figure 4 (kilobytes). The paper's x-axis
/// runs from a few hundred kilobytes to 20 MB.
pub fn fig4_sizes_kb() -> Vec<u64> {
    vec![
        64, 128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 20480,
    ]
}

/// A reduced sweep for quick runs (set `O2_QUICK=1`).
pub fn fig4_sizes_kb_quick() -> Vec<u64> {
    vec![128, 512, 2048, 8192, 16384]
}

/// Returns the sweep honouring the `O2_QUICK` environment variable.
pub fn fig4_sweep() -> Vec<u64> {
    if quick_mode() {
        fig4_sizes_kb_quick()
    } else {
        fig4_sizes_kb()
    }
}

/// Whether quick mode was requested via the `O2_QUICK` environment
/// variable.
pub fn quick_mode() -> bool {
    std::env::var("O2_QUICK")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// Sweeps total data size for a set of policies and returns one series per
/// policy, in the units of Figure 4 (x = total KB, y = thousands of
/// resolutions per second).
pub fn sweep_sizes<F>(sizes_kb: &[u64], policies: &[PolicyKind], mut make_spec: F) -> SeriesTable
where
    F: FnMut(u64) -> WorkloadSpec,
{
    let mut table = SeriesTable::new("Total data size (KB)");
    for &policy in policies {
        let mut series = Series::new(policy.label());
        for &kb in sizes_kb {
            let spec = make_spec(kb);
            let m = run_point(&spec, policy);
            series.push(m.total_kb(), m.kres_per_sec());
        }
        table.add(series);
    }
    table
}

/// Prints a table and, when `O2_CSV=1`, its CSV form as well.
pub fn print_table(table: &SeriesTable) {
    println!("{}", table.render_text());
    if std::env::var("O2_CSV").map(|v| v == "1").unwrap_or(false) {
        println!("{}", table.render_csv());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_papers_legends() {
        assert_eq!(PolicyKind::CoreTime.label(), "With CoreTime");
        assert_eq!(PolicyKind::ThreadScheduler.label(), "Without CoreTime");
    }

    #[test]
    fn policies_can_be_built_for_the_default_spec() {
        let spec = WorkloadSpec::paper_default(4);
        for kind in [
            PolicyKind::CoreTime,
            PolicyKind::CoreTimeExtensions,
            PolicyKind::ThreadScheduler,
            PolicyKind::ThreadClustering,
            PolicyKind::StaticPartition,
        ] {
            let p = kind.build(&spec);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn sweep_sizes_produces_one_series_per_policy() {
        let mut spec = WorkloadSpec::paper_default(2);
        spec.machine = o2_sim::MachineConfig::quad4();
        spec.warmup_ops = 50;
        spec.measure_cycles = 200_000;
        let table = sweep_sizes(&[64], &[PolicyKind::ThreadScheduler], |_| spec.clone());
        assert_eq!(table.series.len(), 1);
        assert_eq!(table.series[0].points.len(), 1);
        assert!(table.series[0].points[0].1 > 0.0);
    }

    #[test]
    fn fig4_sweeps_are_sorted_and_cover_20mb() {
        let s = fig4_sizes_kb();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), 20480);
        assert!(fig4_sizes_kb_quick().len() < s.len());
    }
}
