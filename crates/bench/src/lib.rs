//! # o2-bench — the experiment harness binaries
//!
//! Every paper figure, table and ablation lives in the
//! [`o2_experiments`] scenario registry and runs through the single
//! `o2` umbrella binary (`o2 --list`, `o2 --run <scenario> --jobs N`).
//! The `bench_*` binaries remain as host-side performance benchmarks of
//! individual subsystems (engine loop, memory system, scheduler
//! decision path, fs bookkeeping), and `diag` as the calibration
//! diagnostic.
//!
//! This crate re-exports `o2-experiments` so the binaries (and older
//! call sites) keep one import path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use o2_experiments::*;
