//! Section 5 hardware parameters: measures the simulator's memory-access
//! latencies and the runtime's migration cost, and prints them next to the
//! numbers the paper reports for the AMD system.
//!
//! Run with `cargo run --release -p o2-bench --bin table_latency`.

use o2_metrics::{Series, SeriesTable};
use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig, StaticPolicy};
use o2_sim::{AccessKind, AccessOutcome, Machine, MachineConfig};

/// Measures the cost of one access class by constructing the corresponding
/// cache state explicitly.
fn measured_latency(outcome_wanted: &str) -> u64 {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = o2_sim::ContentionModel::None;
    let mut m = Machine::new(cfg);
    let r = m.memory_mut().alloc_on(64, 0, 0);
    let line = m.line_of(r.addr);
    match outcome_wanted {
        "l1" => {
            m.access_line(0, line, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert_eq!(o, AccessOutcome::L1Hit);
            c
        }
        "l2" => {
            m.access_line(0, line, AccessKind::Read);
            // Evict from L1 by touching enough conflicting lines, then
            // re-touch: simpler to probe the L2 directly via a fresh fill of
            // the L1 with other data.
            let filler = m.memory_mut().alloc_on(128 * 1024, 0, 1);
            m.access(0, filler.addr, filler.size, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            // The line may have been displaced to the L3 victim cache by the
            // filler; report whichever private-hierarchy cost was observed.
            assert!(matches!(o, AccessOutcome::L2Hit | AccessOutcome::L3Hit));
            c
        }
        "l3" => {
            m.access_line(0, line, AccessKind::Read);
            // Push the line out of the private caches into the chip L3.
            let filler = m.memory_mut().alloc_on(1024 * 1024, 0, 1);
            m.access(0, filler.addr, filler.size, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert!(o.is_private_miss());
            c
        }
        "remote_same_chip" => {
            m.access_line(1, line, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert!(matches!(o, AccessOutcome::RemoteCache { hops: 0, .. }));
            c
        }
        "dram_far" => {
            // Home chip 0; access from a core on the diagonally opposite
            // chip so the fill crosses two hops.
            let far = m.memory_mut().alloc_on(64, 0, 2);
            let far_line = m.line_of(far.addr);
            let (c, o) = m.access_line(12, far_line, AccessKind::Read);
            assert!(o.is_dram());
            c
        }
        other => panic!("unknown access class {other}"),
    }
}

/// Measures the end-to-end cost of migrating a thread out and back by
/// running one empty annotated operation assigned to a remote core.
fn measured_migration_round_trip() -> u64 {
    let mut mcfg = MachineConfig::amd16();
    mcfg.contention = o2_sim::ContentionModel::None;
    let machine = Machine::new(mcfg);
    let mut rcfg = RuntimeConfig::default();
    rcfg.return_home_after_op = true;
    let mut policy = StaticPolicy::new();
    policy.assign(0x1000, 1);
    let mut engine = Engine::new(machine, Box::new(policy), rcfg);
    let op = OpBuilder::annotated(0x1000).finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(1))));
    engine.run_until_cycles(1_000_000);
    engine.thread_stats(0).migration_cycles
}

fn main() {
    println!("Section 5 hardware parameters: paper vs simulator\n");
    let mut paper = Series::new("Paper (cycles)");
    let mut measured = Series::new("Measured (cycles)");
    let rows: Vec<(&str, f64, u64)> = vec![
        ("1: L1 hit", 3.0, measured_latency("l1")),
        ("2: L2 hit", 14.0, measured_latency("l2")),
        ("3: L3 hit", 75.0, measured_latency("l3")),
        (
            "4: remote cache, same chip",
            127.0,
            measured_latency("remote_same_chip"),
        ),
        ("5: most distant DRAM", 336.0, measured_latency("dram_far")),
        (
            "6: thread migration (round trip)",
            2000.0,
            measured_migration_round_trip(),
        ),
    ];
    for (i, (label, paper_cycles, measured_cycles)) in rows.iter().enumerate() {
        println!(
            "  [{}] {label}: paper {paper_cycles}, measured {measured_cycles}",
            i + 1
        );
        paper.push((i + 1) as f64, *paper_cycles);
        measured.push((i + 1) as f64, *measured_cycles as f64);
    }
    let mut table = SeriesTable::new("Access class");
    table.add(paper);
    table.add(measured);
    println!("\n{}", table.render_text());
    println!("Rows 1-5 are the memory-system latencies quoted in Section 5; row 6 is");
    println!("the measured cost of migrating a thread to another core and back.");
}
