//! Memory-system throughput benchmark → `BENCH_memory.json`.
//!
//! Drives `Machine::access` / `Machine::access_line` directly (no engine,
//! no policy) so the numbers isolate the memory-system hot path: cache
//! probes, the coherence directory, and invalidation traffic. Three
//! fixed-pattern scenarios on the paper's 16-core AMD machine:
//!
//! * `read_heavy` — every core re-reads a private L1-resident working set:
//!   the L1-hit regime the short-circuit exists for, and the memory-bound
//!   scenario the ISSUE's ≥2× target is measured on.
//! * `write_shared` — cores read and write a handful of shared lines:
//!   directory lookups, invalidation broadcasts, ping-ponging ownership.
//! * `capacity_thrash` — sequential sweeps over a working set far larger
//!   than the private caches: fills, evictions, L3 victim traffic.
//!
//! The `baseline_*` fields are the same scenarios measured on the
//! pre-refactor model (`HashMap` directory, `Vec<Vec<Way>>` caches,
//! modulo indexing) on the same host, captured immediately before the
//! fast-path refactor landed.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_sim::{AccessKind, ContentionModel, Machine, MachineConfig};

/// Pre-refactor throughput on the same host, one value per scenario.
/// Captured from the `HashMap`-directory / nested-`Vec` cache model right
/// before the flat fast path replaced it (see DESIGN.md).
const BASELINE_OPS_PER_SEC: [(&str, f64); 3] = [
    ("read_heavy", 113_332_738.0),
    ("write_shared", 4_632_080.0),
    ("capacity_thrash", 1_042_262.0),
];

struct Outcome {
    name: &'static str,
    line_accesses: u64,
    simulated_cycles: u64,
    wall_seconds: f64,
}

impl Outcome {
    fn ops_per_sec(&self) -> f64 {
        self.line_accesses as f64 / self.wall_seconds
    }

    fn baseline(&self) -> f64 {
        BASELINE_OPS_PER_SEC
            .iter()
            .find(|(n, _)| *n == self.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    fn json(&self) -> String {
        let base = self.baseline();
        let speedup = if base > 0.0 {
            self.ops_per_sec() / base
        } else {
            0.0
        };
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"line_accesses\": {},\n",
                "      \"simulated_cycles\": {},\n",
                "      \"wall_seconds\": {:.6},\n",
                "      \"sim_ops_per_wall_second\": {:.0},\n",
                "      \"baseline_sim_ops_per_wall_second\": {:.0},\n",
                "      \"speedup_vs_baseline\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.line_accesses,
            self.simulated_cycles,
            self.wall_seconds,
            self.ops_per_sec(),
            base,
            speedup,
        )
    }
}

fn machine() -> Machine {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    Machine::new(cfg)
}

fn finish(name: &'static str, m: &Machine, line_accesses: u64, start: Instant) -> Outcome {
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let simulated_cycles = m.snapshot_counters().aggregate().busy_cycles;
    let o = Outcome {
        name,
        line_accesses,
        simulated_cycles,
        wall_seconds,
    };
    println!(
        "{name:<16} {line_accesses:>10} line accesses in {wall_seconds:.3}s ({:.0} sim-ops/s)",
        o.ops_per_sec()
    );
    let ms = m.mem_stats();
    println!(
        "{:<16} dir_probes={} dir_entries={} l1_short_circuits={} evictions={}",
        "", ms.directory_probes, ms.directory_entries, ms.l1_short_circuits, ms.evictions
    );
    o
}

/// Every core loops over a private 16 KB working set (fits L1): after the
/// first lap everything is an L1 hit.
fn read_heavy(iters: u64) -> Outcome {
    let mut m = machine();
    let regions: Vec<_> = (0..16u32)
        .map(|c| m.memory_mut().alloc(16 * 1024, u64::from(c)))
        .collect();
    let lines_per_set = 16 * 1024 / 64;
    let start = Instant::now();
    let mut n = 0u64;
    for i in 0..iters {
        for core in 0..16u32 {
            let r = &regions[core as usize];
            let line = r.addr / 64 + (i % lines_per_set);
            m.access_line(core, line, AccessKind::Read);
            n += 1;
        }
    }
    finish("read_heavy", &m, n, start)
}

/// Cores take turns reading and writing 64 shared lines: the coherence
/// directory and the invalidation path dominate.
fn write_shared(iters: u64) -> Outcome {
    let mut m = machine();
    let shared = m.memory_mut().alloc(64 * 64, 0);
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    let start = Instant::now();
    let mut n = 0u64;
    for _ in 0..iters {
        let core = rng.gen_range(0..16u32);
        let line = shared.addr / 64 + rng.gen_range(0..64u64);
        let kind = if rng.gen_range(0..4u8) == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        m.access_line(core, line, kind);
        n += 1;
    }
    finish("write_shared", &m, n, start)
}

/// Sequential 4 KB sweeps over a 8 MB set: far larger than L1+L2, so the
/// fill/evict/spill path and the directory churn constantly.
fn capacity_thrash(iters: u64) -> Outcome {
    let mut m = machine();
    let big = m.memory_mut().alloc(8 * 1024 * 1024, 0);
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    let start = Instant::now();
    let mut n = 0u64;
    for _ in 0..iters {
        let core = rng.gen_range(0..16u32);
        let off = rng.gen_range(0..big.size - 4096);
        m.access(core, big.addr + off, 4096, AccessKind::Read);
        n += 4096 / 64;
    }
    finish("capacity_thrash", &m, n, start)
}

fn main() {
    let outcomes = [
        read_heavy(1_000_000),
        write_shared(1_000_000),
        capacity_thrash(40_000),
    ];
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"memory_system\",\n",
            "  \"machine\": \"amd16\",\n",
            "  \"model\": \"flat directory + flat set-associative caches + L1 short-circuit\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body
    );
    std::fs::write("BENCH_memory.json", &json).expect("write BENCH_memory.json");
    println!("wrote BENCH_memory.json");
}
