//! Ablation E (Section 6.2): working sets larger than the total on-chip
//! memory, with and without frequency-based replacement.
//!
//! With a Zipf-skewed popularity and more directory data than the 16 MB of
//! aggregate on-chip cache, an O2 scheduler should keep the most frequently
//! accessed directories on-chip and leave the cold tail off-chip.
//!
//! Run with `cargo run --release -p o2-bench --bin ablation_replacement`.

use o2_bench::{quick_mode, run_point, PolicyKind};
use o2_metrics::{Report, Series, SeriesTable};
use o2_workloads::{Popularity, WorkloadSpec};

fn main() {
    let sizes_kb: Vec<u64> = if quick_mode() {
        vec![20480]
    } else {
        vec![16384, 20480, 24576]
    };

    let mut baseline = Series::new("Without CoreTime");
    let mut plain = Series::new("With CoreTime");
    let mut with_replacement = Series::new("With CoreTime + frequency replacement");
    for &kb in &sizes_kb {
        let make =
            || WorkloadSpec::for_total_kb(kb).with_popularity(Popularity::Zipf { exponent: 0.9 });
        baseline.push(
            kb as f64,
            run_point(&make(), PolicyKind::ThreadScheduler).kres_per_sec(),
        );
        plain.push(
            kb as f64,
            run_point(&make(), PolicyKind::CoreTime).kres_per_sec(),
        );
        with_replacement.push(
            kb as f64,
            run_point(&make(), PolicyKind::CoreTimeExtensions).kres_per_sec(),
        );
    }

    let mut table = SeriesTable::new("Total data size (KB)");
    table.add(baseline);
    table.add(plain);
    table.add(with_replacement);
    let report = Report::new(
        "Ablation E: working sets beyond aggregate on-chip memory (Zipf popularity)",
        table,
    )
    .param("popularity", "Zipf, exponent 0.9")
    .param("aggregate on-chip memory", "16 MB")
    .note(
        "Frequency-based replacement keeps the hot head of the Zipf distribution assigned \
         on-chip once the total working set no longer fits (Section 6.2).",
    );
    println!("{}", report.render_text());
}
