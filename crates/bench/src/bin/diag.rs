//! Diagnostic harness: prints detailed per-core and policy statistics for
//! a single Figure-4 point. Useful when calibrating the simulator.
//!
//! `cargo run --release -p o2-bench --bin diag -- [total_kb] [coretime|baseline] [storm]`
//!
//! The optional third argument `storm` injects a seeded fault storm (one
//! slowdown window, one interconnect-degradation window, one offlining)
//! so the fault-plane telemetry below has something to show.

use o2_bench::PolicyKind;
use o2_sim::FaultPlan;
use o2_workloads::{Experiment, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_kb: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8192);
    let policy = match args.get(2).map(|s| s.as_str()) {
        Some("baseline") => PolicyKind::ThreadScheduler,
        _ => PolicyKind::CoreTime,
    };
    let mut spec = WorkloadSpec::for_total_kb(total_kb);
    if args.get(3).map(|s| s.as_str()) == Some("storm") {
        spec.fault_plan =
            FaultPlan::seeded_storm(0xD1A6, spec.machine.total_cores(), 1_000_000, 800_000);
    }
    let boxed = policy.build(&spec.machine);
    let mut exp = Experiment::build(spec.clone(), boxed);

    let m = exp.run();
    let engine = exp.engine();
    let machine = engine.machine();
    println!("policy            : {}", m.policy);
    println!("dirs              : {}", spec.n_dirs);
    println!("total KB          : {:.0}", m.total_kb());
    println!("window ops        : {}", m.window.ops);
    println!("window cycles     : {}", m.window.cycles());
    println!("kres/s            : {:.1}", m.kres_per_sec());
    println!("cycles/op         : {:.0}", m.window.cycles_per_op());
    println!("load imbalance    : {:.3}", m.window.load_imbalance());
    println!("lock contention   : {}", m.lock_contention);
    println!("migrations (in)   : {}", m.migrations);
    println!("interconnect      : {:?}", m.interconnect);
    let mut total_idle = 0.0;
    for core in 0..spec.machine.total_cores() {
        let c = machine.counters(core);
        let idle_frac = c.idle_fraction();
        total_idle += idle_frac;
        if core < 4 || core == spec.machine.total_cores() - 1 {
            println!(
                "core {core:>2}: busy={:>12} idle={:>12} ({:>5.1}%) l1h={} l2h={} l3h={} rem={} dram={} ops={}",
                c.busy_cycles,
                c.idle_cycles,
                idle_frac * 100.0,
                c.l1_hits,
                c.l2_hits,
                c.l3_hits,
                c.remote_cache_loads,
                c.dram_loads,
                c.operations_completed
            );
        }
    }
    println!(
        "mean idle fraction: {:.1}%",
        total_idle * 100.0 / spec.machine.total_cores() as f64
    );
    let thread_migrations: u64 = (0..spec.total_threads() as usize)
        .map(|t| engine.thread_stats(t).migrations)
        .sum();
    let migration_cycles: u64 = (0..spec.total_threads() as usize)
        .map(|t| engine.thread_stats(t).migration_cycles)
        .sum();
    let lock_wait: u64 = (0..spec.total_threads() as usize)
        .map(|t| engine.thread_stats(t).lock_wait_cycles)
        .sum();
    println!("thread migrations : {thread_migrations}");
    println!("migration cycles  : {migration_cycles}");
    println!("lock wait cycles  : {lock_wait}");
    println!("total ops (all)   : {}", engine.total_ops());

    let s = engine.sched_stats();
    println!("-- event core --");
    println!("events processed  : {}", s.events_processed);
    println!("stale events      : {}", s.stale_events);
    println!("park wakeups      : {}", s.park_wakeups);
    println!("parks             : {}", s.parks);
    println!("lock wakeups      : {}", s.lock_wakeups);
    println!(
        "wheel occupancy   : {} (high-water mark)",
        s.wheel_occupancy_hwm
    );
    println!("wheel cascades    : {}", s.wheel_cascades);
    println!("wheel overflows   : {}", s.wheel_overflows);
    println!("wheel max batch   : {}", s.wheel_max_batch);

    let f = engine.policy().fault_stats();
    println!("-- fault plane --");
    println!("faults applied    : {}", s.faults_applied);
    println!("cores offlined    : {}", s.cores_offlined);
    println!("cores slowed      : {}", s.cores_slowed);
    println!("migration retries : {}", s.migration_retries);
    println!("migration failures: {}", s.migration_failures);
    println!("threads re-pinned : {}", s.threads_repinned);
    println!("recovery cycles   : {}", s.recovery_cycles);
    println!("policy core-downs : {}", f.core_down_events);
    println!("objects re-homed  : {}", f.objects_rehomed);
    println!("objects stranded  : {}", f.objects_stranded);
    println!("degraded avoids   : {}", f.degraded_avoids);

    let r = engine.policy().replication_stats();
    println!("-- replica serving --");
    println!("promotions        : {}", r.promotions);
    println!("demotions         : {}", r.demotions);
    println!("invalidations     : {}", r.invalidations);
    println!("replica-served ops: {}", r.replica_served);
    println!("background fills  : {}", s.replica_fills);
    println!("fill cycles       : {}", s.replica_fill_cycles);
}
