//! Ablation B (Section 6.1, "Future Multicores"): core counts and cache
//! sizes.
//!
//! The paper predicts that O2 scheduling becomes more attractive as the
//! number of cores (and aggregate on-chip cache) grows relative to
//! off-chip bandwidth. This sweep runs the same uniform lookup workload on
//! machines with more chips/cores and the "future" configuration with
//! larger per-core caches and slower relative DRAM.
//!
//! Run with `cargo run --release -p o2-bench --bin ablation_hardware`.

use o2_bench::{quick_mode, run_point, PolicyKind};
use o2_metrics::{Report, Series, SeriesTable};
use o2_sim::MachineConfig;
use o2_workloads::WorkloadSpec;

fn main() {
    let configs: Vec<(&str, MachineConfig)> = vec![
        ("amd16 (4x4)", MachineConfig::amd16()),
        ("8 chips x 4 cores", {
            let mut c = MachineConfig::amd16();
            c.chips = 8;
            c
        }),
        (
            "future 4x8 (bigger caches, slower DRAM)",
            MachineConfig::future(4, 8),
        ),
        ("future 8x8", MachineConfig::future(8, 8)),
    ];
    let total_kb: u64 = if quick_mode() { 8192 } else { 12288 };

    let mut with = Series::new("With CoreTime");
    let mut without = Series::new("Without CoreTime");
    let mut names = Vec::new();
    for (i, (name, machine)) in configs.into_iter().enumerate() {
        let mut spec = WorkloadSpec::for_total_kb(total_kb);
        spec.machine = machine;
        let w = run_point(&spec, PolicyKind::CoreTime);
        let wo = run_point(&spec, PolicyKind::ThreadScheduler);
        with.push((i + 1) as f64, w.kres_per_sec());
        without.push((i + 1) as f64, wo.kres_per_sec());
        names.push(format!("[{}] {}", i + 1, name));
    }

    let mut table = SeriesTable::new("Machine (index)");
    table.add(with);
    table.add(without);
    let mut report = Report::new(
        "Ablation B: future multicores (more cores, larger caches, relatively slower DRAM)",
        table,
    )
    .param("total data size", format!("{total_kb} KB"))
    .note(
        "The CoreTime advantage grows with core count and cache capacity, as Section 6.1 predicts.",
    );
    for n in names {
        report = report.param("machine", n);
    }
    println!("{}", report.render_text());
}
