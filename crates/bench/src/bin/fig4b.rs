//! Figure 4(b): file-system throughput versus total data size when the set
//! of accessed directories oscillates between all of them and a sixteenth
//! of them. CoreTime must rebalance objects to follow the shifting working
//! set.
//!
//! Run with `cargo run --release -p o2-bench --bin fig4b`.

use o2_bench::{fig4_sweep, print_table, sweep_sizes, PolicyKind};
use o2_metrics::{mean_speedup_above, Report};
use o2_workloads::WorkloadSpec;

fn main() {
    let sizes = fig4_sweep();
    let policies = [PolicyKind::CoreTime, PolicyKind::ThreadScheduler];
    let table = sweep_sizes(&sizes, &policies, |kb| {
        WorkloadSpec::for_total_kb(kb).oscillating()
    });

    let with = &table.series[0];
    let without = &table.series[1];
    let speedup = mean_speedup_above(with, without, 2048.0);

    let mut report = Report::new(
        "Figure 4(b): oscillating directory popularity (1000s of resolutions/sec)",
        table,
    )
    .param("machine", "4 chips x 4 cores (AMD-like), 2 GHz")
    .param("entries per directory", 1000)
    .param(
        "popularity",
        "active set oscillates between all directories and 1/16 of them",
    )
    .param("threads", "1 per core (16)");
    if let Some(s) = speedup {
        report = report.note(format!(
            "mean CoreTime speedup beyond 2 MB: {s:.2}x (paper: more than 2x for most sizes)"
        ));
    }
    println!("{}", report.render_text());
    print_table(&report.table);
}
