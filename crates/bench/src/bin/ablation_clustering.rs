//! Ablation D (Section 6.2): object clustering, and the related-work claim
//! that *thread* clustering does not help this workload.
//!
//! Run with `cargo run --release -p o2-bench --bin ablation_clustering`.

use o2_bench::{run_point, PolicyKind};
use o2_metrics::{Report, Series, SeriesTable};
use o2_workloads::WorkloadSpec;

fn main() {
    let total_kb = 8192;
    let spec = WorkloadSpec::for_total_kb(total_kb);

    let baseline = run_point(&spec, PolicyKind::ThreadScheduler);
    let clustering = run_point(&spec, PolicyKind::ThreadClustering);
    let coretime = run_point(&spec, PolicyKind::CoreTime);
    let static_partition = run_point(&spec, PolicyKind::StaticPartition);

    let mut series = Series::new("1000s of resolutions/sec");
    series.push(1.0, baseline.kres_per_sec());
    series.push(2.0, clustering.kres_per_sec());
    series.push(3.0, static_partition.kres_per_sec());
    series.push(4.0, coretime.kres_per_sec());
    let mut table = SeriesTable::new(
        "Scheduler (1=thread, 2=thread clustering, 3=static partition, 4=CoreTime)",
    );
    table.add(series);

    let report = Report::new(
        "Ablation D: thread clustering vs object scheduling (uniform lookups, 8 MB)",
        table,
    )
    .param("total data size", format!("{total_kb} KB"))
    .note(format!(
        "thread scheduler {:.0}, thread clustering {:.0}, static partition {:.0}, CoreTime {:.0} kres/s",
        baseline.kres_per_sec(),
        clustering.kres_per_sec(),
        static_partition.kres_per_sec(),
        coretime.kres_per_sec()
    ))
    .note(
        "Thread clustering cannot help because every thread shares the same working set \
         (Section 2); scheduling objects does.",
    );
    println!("{}", report.render_text());
}
