//! Scheduler-decision-path throughput benchmark → `BENCH_policy.json`.
//!
//! Drives `O2Policy` directly through the `SchedPolicy` interface (no
//! engine, no memory simulation) so the numbers isolate exactly the path
//! the paper calls "a table lookup": `on_ct_start` placement decisions,
//! `on_ct_end` monitoring + packing, and the per-epoch planners. Three
//! seeded scenarios:
//!
//! * `migration_heavy` — a working set that fits the packing budget,
//!   hammered from every core: steady-state `ct_start` lookups and
//!   migrate/local decisions dominate (the ISSUE's ≥1.5× target is
//!   measured on this one);
//! * `epoch_churn` — tens of thousands of registered objects with a
//!   shifting hot window and frequent epochs: stresses the registry's
//!   epoch accounting (roll, decay, replacement) where the pre-refactor
//!   implementation re-scanned every object per epoch;
//! * `clustering` — every Section-6.2 extension on, with paired
//!   co-accesses: stresses the co-access tracker's record/partners/decay.
//!
//! The `baseline_*` fields are the same scenarios measured on the
//! pre-refactor implementation (`HashMap` assignment table and registry,
//! `HashMap<(ObjectId, ObjectId), u64>` co-access pairs) on the same host,
//! captured immediately before the dense-id/flat-slab refactor landed.

use std::time::Instant;

use o2_core::{CoreTimeConfig, O2Policy, O2Stats};
use o2_runtime::{
    AccessKind, DenseObjectId, EpochView, ObjectDescriptor, ObjectIndex, OpContext, Placement,
    SchedPolicy,
};
use o2_sim::{CounterDelta, Machine, MachineConfig};

/// Pre-refactor decisions/sec on the same host, one value per scenario.
/// Captured from the `HashMap`-based decision path right before the flat
/// refactor replaced it (see DESIGN.md, "The scheduler decision path").
const BASELINE_OPS_PER_SEC: [(&str, f64); 3] = [
    ("migration_heavy", 7_900_000.0),
    ("epoch_churn", 590_000.0),
    ("clustering", 7_800_000.0),
];

/// Deterministic 64-bit LCG (constants from Knuth); top bits returned.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Minimal mirror of the engine's ct_start/ct_end/epoch protocol,
/// including its object index (keys are interned in first-touch order).
struct Driver {
    machine: Machine,
    policy: O2Policy,
    index: ObjectIndex,
    ops_by_core: Vec<u64>,
    misses_by_core: Vec<u64>,
    epoch: u64,
}

impl Driver {
    fn new(machine_cfg: MachineConfig, cfg: CoreTimeConfig) -> Self {
        let machine = Machine::new(machine_cfg);
        let policy = O2Policy::new(machine.config(), cfg);
        let cores = machine.config().total_cores() as usize;
        Driver {
            machine,
            policy,
            index: ObjectIndex::default(),
            ops_by_core: vec![0; cores],
            misses_by_core: vec![0; cores],
            epoch: 0,
        }
    }

    fn register(&mut self, key: u64, size: u64, read_mostly: bool) {
        let desc = ObjectDescriptor::new(key, key, size).read_mostly(read_mostly);
        let dense = self.index.register(desc);
        self.policy.register_object(dense, &desc);
    }

    #[inline]
    fn op(&mut self, thread: usize, core: u32, key: u64, misses: u64) {
        let object: DenseObjectId = self.index.intern(key);
        let ctx = OpContext {
            thread,
            core,
            home_core: core,
            object,
            object_key: key,
            kind: AccessKind::Write,
            now: 0,
            machine: &self.machine,
        };
        let exec_core = match self.policy.on_ct_start(&ctx) {
            Placement::Local => core,
            Placement::On(c) => c,
        };
        let delta = CounterDelta {
            l2_misses: misses,
            busy_cycles: 2_000 + misses * 60,
            dram_loads: misses / 3,
            operations_completed: 1,
            ..Default::default()
        };
        let end_ctx = OpContext {
            thread,
            core: exec_core,
            home_core: core,
            object,
            object_key: key,
            kind: AccessKind::Write,
            now: 0,
            machine: &self.machine,
        };
        self.policy.on_ct_end(&end_ctx, &delta);
        self.ops_by_core[exec_core as usize] += 1;
        self.misses_by_core[exec_core as usize] += misses;
    }

    fn run_epoch(&mut self) {
        self.epoch += 1;
        let busy: Vec<u64> = self
            .ops_by_core
            .iter()
            .zip(&self.misses_by_core)
            .map(|(&o, &m)| o * 2_000 + m * 60)
            .collect();
        let frontier = busy.iter().copied().max().unwrap_or(0);
        let deltas: Vec<CounterDelta> = (0..busy.len())
            .map(|c| CounterDelta {
                busy_cycles: busy[c],
                idle_cycles: frontier - busy[c] + 1_000,
                l2_misses: self.misses_by_core[c],
                dram_loads: self.misses_by_core[c] / 3,
                operations_completed: self.ops_by_core[c],
                ..Default::default()
            })
            .collect();
        let view = EpochView {
            now: self.epoch * 1_000_000,
            machine: &self.machine,
            deltas: &deltas,
        };
        self.policy.on_epoch(&view);
        self.ops_by_core.iter_mut().for_each(|o| *o = 0);
        self.misses_by_core.iter_mut().for_each(|m| *m = 0);
    }
}

struct Outcome {
    name: &'static str,
    decisions: u64,
    wall_seconds: f64,
    stats: O2Stats,
}

impl Outcome {
    fn ops_per_sec(&self) -> f64 {
        self.decisions as f64 / self.wall_seconds
    }

    fn baseline(&self) -> f64 {
        BASELINE_OPS_PER_SEC
            .iter()
            .find(|(n, _)| *n == self.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    fn json(&self) -> String {
        let base = self.baseline();
        let speedup = if base > 0.0 {
            self.ops_per_sec() / base
        } else {
            0.0
        };
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"operations\": {},\n",
                "      \"epochs\": {},\n",
                "      \"wall_seconds\": {:.6},\n",
                "      \"decisions_per_wall_second\": {:.0},\n",
                "      \"baseline_decisions_per_wall_second\": {:.0},\n",
                "      \"speedup_vs_baseline\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.decisions,
            self.stats.epochs,
            self.wall_seconds,
            self.ops_per_sec(),
            base,
            speedup,
        )
    }
}

fn finish(name: &'static str, d: &Driver, decisions: u64, start: Instant) -> Outcome {
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let o = Outcome {
        name,
        decisions,
        wall_seconds,
        stats: d.policy.stats(),
    };
    println!(
        "{name:<16} {decisions:>9} decisions in {wall_seconds:.3}s ({:.0} decisions/s)",
        o.ops_per_sec()
    );
    println!("{:<16} {:?}", "", o.stats);
    o
}

/// Steady-state lookups: 64 objects on amd16, all expensive, everything
/// assigned after warm-up; from then on every `ct_start` is the paper's
/// "table lookup" plus a migrate/local decision.
fn migration_heavy(iters: u64) -> Outcome {
    let mut d = Driver::new(MachineConfig::amd16(), CoreTimeConfig::default());
    let keys: Vec<u64> = (0..64u64).map(|i| 0x10_0000 + i * 0x1_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        d.register(k, 32 * 1024 + (i as u64 % 5) * 8 * 1024, false);
    }
    let mut rng = Lcg(0xbe9c_0001);
    let start = Instant::now();
    for i in 0..iters {
        let r = rng.next();
        let obj = if r % 10 < 7 {
            keys[(r >> 8) as usize % 8]
        } else {
            keys[(r >> 8) as usize % keys.len()]
        };
        let core = ((r >> 16) % 16) as u32;
        let thread = ((r >> 24) % 32) as usize;
        d.op(thread, core, obj, 150 + (obj >> 16) % 180);
        if (i + 1) % 8_192 == 0 {
            d.run_epoch();
        }
    }
    finish("migration_heavy", &d, iters, start)
}

/// Epoch pressure: 24 576 registered objects on quad4 with a shifting hot
/// window, decay and replacement enabled, an epoch every 2 048 operations.
fn epoch_churn(iters: u64) -> Outcome {
    let mut cfg = CoreTimeConfig::default();
    cfg.enable_decay = true;
    cfg.enable_replacement = true;
    cfg.decay_epochs = 2;
    let mut d = Driver::new(MachineConfig::quad4(), cfg);
    let n = 24_576u64;
    let keys: Vec<u64> = (0..n).map(|i| 0x100_0000 + i * 0x1_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        d.register(k, 48 * 1024 + (i as u64 % 7) * 16 * 1024, false);
    }
    let mut rng = Lcg(0xbe9c_0002);
    let start = Instant::now();
    for i in 0..iters {
        let r = rng.next();
        let base = ((i / 2_048) * 16) as usize % keys.len();
        let obj = keys[(base + (r as usize % 48)) % keys.len()];
        let core = ((r >> 16) % 4) as u32;
        let thread = ((r >> 24) % 8) as usize;
        d.op(thread, core, obj, 600 + (obj >> 17) % 300);
        if (i + 1) % 2_048 == 0 {
            d.run_epoch();
        }
    }
    finish("epoch_churn", &d, iters, start)
}

/// Co-access tracking: all Section-6.2 extensions, threads touching object
/// pairs back-to-back so the pair table and partner lookups stay busy.
fn clustering(iters: u64) -> Outcome {
    let mut d = Driver::new(
        MachineConfig::amd16(),
        CoreTimeConfig::with_all_extensions(),
    );
    let keys: Vec<u64> = (0..256u64).map(|i| 0x40_0000 + i * 0x1_0000).collect();
    for (i, &k) in keys.iter().enumerate() {
        d.register(k, 16 * 1024 + (i as u64 % 3) * 8 * 1024, i % 4 == 0);
    }
    let mut rng = Lcg(0xbe9c_0003);
    let start = Instant::now();
    let mut n = 0u64;
    for i in 0..iters / 2 {
        let r = rng.next();
        let pair = ((r >> 4) as usize % (keys.len() / 2)) * 2;
        let core = ((r >> 16) % 16) as u32;
        let thread = ((r >> 24) % 16) as usize;
        let misses = 200 + (pair as u64 * 11) % 150;
        d.op(thread, core, keys[pair], misses);
        d.op(thread, core, keys[pair + 1], misses / 2);
        n += 2;
        if (i + 1) % 4_096 == 0 {
            d.run_epoch();
        }
    }
    finish("clustering", &d, n, start)
}

fn main() {
    let outcomes = [
        migration_heavy(4_000_000),
        epoch_churn(1_000_000),
        clustering(2_000_000),
    ];
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"policy_decision_path\",\n",
            "  \"machine\": \"amd16 / quad4\",\n",
            "  \"model\": \"dense object ids + flat assignment table + incremental epoch state\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body
    );
    std::fs::write("BENCH_policy.json", &json).expect("write BENCH_policy.json");
    println!("wrote BENCH_policy.json");
}
