//! Figure 4(a): file-system throughput versus total data size, uniform
//! directory popularity, with and without CoreTime.
//!
//! Run with `cargo run --release -p o2-bench --bin fig4a`
//! (set `O2_QUICK=1` for a reduced sweep, `O2_CSV=1` for CSV output).

use o2_bench::{fig4_sweep, print_table, sweep_sizes, PolicyKind};
use o2_metrics::{crossover, mean_speedup_above, Report};
use o2_workloads::WorkloadSpec;

fn main() {
    let sizes = fig4_sweep();
    let policies = [PolicyKind::CoreTime, PolicyKind::ThreadScheduler];
    let table = sweep_sizes(&sizes, &policies, WorkloadSpec::for_total_kb);

    let with = &table.series[0];
    let without = &table.series[1];
    let l3_kb = WorkloadSpec::paper_default(1).machine.l3.size_bytes / 1024;
    let speedup = mean_speedup_above(with, without, (2 * l3_kb) as f64);
    let cross = crossover(with, without, 1.5);

    let mut report = Report::new(
        "Figure 4(a): uniform directory popularity (1000s of resolutions/sec)",
        table,
    )
    .param("machine", "4 chips x 4 cores (AMD-like), 2 GHz")
    .param("entries per directory", 1000)
    .param("entry size", "32 bytes")
    .param("threads", "1 per core (16)")
    .param("popularity", "uniform");
    if let Some(s) = speedup {
        report = report.note(format!(
            "mean CoreTime speedup beyond one chip's L3 ({} KB): {:.2}x (paper: 2-3x)",
            2 * l3_kb,
            s
        ));
    }
    if let Some(x) = cross {
        report = report.note(format!(
            "CoreTime pulls ahead (>=1.5x) from ~{x:.0} KB onwards (paper: just above 2 MB)"
        ));
    }
    println!("{}", report.render_text());
    print_table(&report.table);
}
