//! Ablation C (Section 6.2): replicating read-only objects versus
//! scheduling more distinct objects.
//!
//! A hotspot workload sends most lookups to a handful of directories; with
//! plain CoreTime those directories serialize on their owning cores, while
//! the replication extension copies them into several caches.
//!
//! Run with `cargo run --release -p o2-bench --bin ablation_replication`.

use o2_bench::{run_point, PolicyKind};
use o2_metrics::{Report, Series, SeriesTable};
use o2_workloads::{Popularity, WorkloadSpec};

fn main() {
    let total_kb = 4096;
    let make_spec = || {
        WorkloadSpec::for_total_kb(total_kb).with_popularity(Popularity::Hotspot {
            hot_dirs: 4,
            hot_fraction: 0.85,
        })
    };

    let baseline = run_point(&make_spec(), PolicyKind::ThreadScheduler);
    let coretime = run_point(&make_spec(), PolicyKind::CoreTime);
    let replicated = run_point(&make_spec(), PolicyKind::CoreTimeExtensions);

    let mut series = Series::new("1000s of resolutions/sec");
    series.push(1.0, baseline.kres_per_sec());
    series.push(2.0, coretime.kres_per_sec());
    series.push(3.0, replicated.kres_per_sec());
    let mut table =
        SeriesTable::new("Configuration (1=baseline, 2=CoreTime, 3=CoreTime+replication)");
    table.add(series);

    let report = Report::new(
        "Ablation C: read-only replication on a hotspot workload",
        table,
    )
    .param("total data size", format!("{total_kb} KB"))
    .param("hotspot", "85% of lookups hit 4 directories")
    .note(format!(
        "baseline {:.0}, CoreTime {:.0}, CoreTime+extensions {:.0} kres/s \
         — replication relieves the serialization at the hot directories' owning cores",
        baseline.kres_per_sec(),
        coretime.kres_per_sec(),
        replicated.kres_per_sec()
    ));
    println!("{}", report.render_text());
}
