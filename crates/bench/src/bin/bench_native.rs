//! Real-threads runtime benchmark → `BENCH_native.json`.
//!
//! Runs the native directory-lookup and fsmeta workloads on real
//! `std::thread` workers (pinned where the kernel allows) under every
//! policy of the experiment matrix, and records per series:
//!
//! * wall-clock throughput (kops/s) and the measured window in seconds;
//! * per-worker occupancy (ops executed on each worker);
//! * migration counts, ring-full local fallbacks and the deepest any
//!   SPSC migration ring ever got;
//! * epoch/rehome/replica-fill activity and spin-lock contention;
//! * the order-independent state digest — identical across policies by
//!   construction, because every policy executes the same deterministic
//!   op stream and all updates commute.
//!
//! Methodology: wall-clock numbers on a shared CI host are noisy and the
//! host may have fewer CPUs than workers (pinning then degrades to a
//! hint); CI asserts only the count-based invariants (ops completed,
//! occupancy sums, digest equality) and never a timing.
//!
//! Usage: `bench_native [--workers N] [--measure-ops N] [--warmup-ops N]`

use o2_experiments::PolicyKind;
use o2_native::{
    available_cpus, run_native, NativeConfig, NativeFsMeta, NativeFsMetaSpec, NativeLookup,
    NativeLookupSpec, NativeMeasurement, NativeWorkload,
};

const SEED: u64 = 0x000a_ce0f_ba5e;

/// Stable JSON key for a policy kind (`SchedPolicy::name()` collides for
/// the two CoreTime variants).
fn key(kind: PolicyKind) -> &'static str {
    match kind {
        PolicyKind::CoreTime => "coretime",
        PolicyKind::CoreTimeExtensions => "coretime-extensions",
        PolicyKind::ThreadScheduler => "thread-scheduler",
        PolicyKind::ThreadClustering => "thread-clustering",
        PolicyKind::StaticPartition => "static-partition",
    }
}

fn series_json(kind: PolicyKind, m: &NativeMeasurement) -> String {
    let per_worker = m
        .per_worker_ops
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "        {{\n",
            "          \"policy\": \"{}\",\n",
            "          \"policy_name\": \"{}\",\n",
            "          \"kops_per_sec\": {:.1},\n",
            "          \"wall_seconds\": {:.6},\n",
            "          \"ops\": {},\n",
            "          \"reads\": {},\n",
            "          \"writes\": {},\n",
            "          \"migrations\": {},\n",
            "          \"ring_full_local\": {},\n",
            "          \"ring_depth_hwm\": {},\n",
            "          \"per_worker_ops\": [{}],\n",
            "          \"epochs\": {},\n",
            "          \"rehomes_recorded\": {},\n",
            "          \"fills_completed\": {},\n",
            "          \"lock_contention\": {},\n",
            "          \"state_digest\": \"{:#018x}\"\n",
            "        }}"
        ),
        key(kind),
        m.policy,
        m.kops_per_sec(),
        m.wall_seconds,
        m.ops,
        m.reads,
        m.writes,
        m.migrations,
        m.ring_full_local,
        m.ring_depth_hwm,
        per_worker,
        m.epochs,
        m.rehomes_recorded,
        m.fills_completed,
        m.lock_contention,
        m.state_digest,
    )
}

fn run_workload(
    name: &str,
    build: &dyn Fn() -> Box<dyn NativeWorkload>,
    cfg: &NativeConfig,
) -> String {
    let mut series = Vec::new();
    let mut digests = Vec::new();
    for kind in PolicyKind::ALL {
        // A fresh workload per policy: every policy executes the same op
        // stream against the same initial state.
        let wl = build();
        let policy = kind.build(&cfg.machine);
        let m = run_native(wl.as_ref(), policy, cfg);
        println!(
            "native {name:<7} {:<22} {:>8.1} kops/s, {:>6} migrations, {:>4} ring-full, hwm {:>3}, occupancy {:?}",
            kind.label(),
            m.kops_per_sec(),
            m.migrations,
            m.ring_full_local,
            m.ring_depth_hwm,
            m.per_worker_ops,
        );
        digests.push(m.state_digest);
        series.push(series_json(kind, &m));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "state digests diverged across policies for {name}: {digests:#x?}"
    );
    format!(
        concat!(
            "    {{\n",
            "      \"workload\": \"{}\",\n",
            "      \"series\": [\n{}\n      ]\n",
            "    }}"
        ),
        name,
        series.join(",\n")
    )
}

fn arg(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let workers = arg("--workers").unwrap_or(2).clamp(1, 64) as usize;
    let mut cfg = NativeConfig::new(workers);
    cfg.measure_ops = arg("--measure-ops").unwrap_or(40_000);
    cfg.warmup_ops = arg("--warmup-ops").unwrap_or(2_000);

    let lookup_spec = {
        let mut s = NativeLookupSpec::paper_default(64, SEED);
        s.entries_per_dir = 128;
        s.zipf_exponent = Some(1.1);
        s.write_fraction = 0.05;
        s
    };
    let fsmeta_spec = NativeFsMetaSpec {
        n_dirs: 32,
        slots_per_dir: 64,
        seed: SEED,
    };

    // Pinning status is per-run; report what one probe run saw.
    let probe = {
        let wl = NativeLookup::build(&lookup_spec);
        let mut probe_cfg = cfg.clone();
        probe_cfg.warmup_ops = 10;
        probe_cfg.measure_ops = 50;
        run_native(
            &wl,
            PolicyKind::ThreadScheduler.build(&cfg.machine),
            &probe_cfg,
        )
    };

    let workloads = [
        run_workload(
            "lookup",
            &|| Box::new(NativeLookup::build(&lookup_spec)) as Box<dyn NativeWorkload>,
            &cfg,
        ),
        run_workload(
            "fsmeta",
            &|| Box::new(NativeFsMeta::build(&fsmeta_spec)) as Box<dyn NativeWorkload>,
            &cfg,
        ),
    ];

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"native_runtime\",\n",
            "  \"workers\": {},\n",
            "  \"pinned_workers\": {},\n",
            "  \"available_cpus\": {},\n",
            "  \"warmup_ops\": {},\n",
            "  \"measure_ops\": {},\n",
            "  \"model\": \"std::thread workers pinned to cores, SPSC migration rings, ",
            "unchanged SchedPolicy implementations placing ops on real threads\",\n",
            "  \"methodology\": \"deterministic op stream, commutative state updates; ",
            "CI asserts op counts and digest equality only — wall-clock numbers are ",
            "reported, never asserted\",\n",
            "  \"workloads\": [\n{}\n  ]\n",
            "}}\n"
        ),
        workers,
        probe.pinned_workers,
        available_cpus(),
        cfg.warmup_ops,
        cfg.measure_ops,
        workloads.join(",\n")
    );
    std::fs::write("BENCH_native.json", &json).expect("write BENCH_native.json");
    println!("wrote BENCH_native.json");
}
