//! Ablation A (Section 6.1): how the benefit of O2 scheduling depends on
//! the cost of migrating a thread.
//!
//! The paper lists "the high cost to migrate a thread" among the AMD
//! properties that limit CoreTime, and notes that hardware support such as
//! active messages could reduce it. This sweep holds the workload at a
//! point where CoreTime wins (8 MB of directories) and scales the
//! migration cost from far cheaper to far more expensive than the measured
//! 2000 cycles.
//!
//! Run with `cargo run --release -p o2-bench --bin ablation_migration`.

use o2_bench::{quick_mode, run_point, PolicyKind};
use o2_metrics::{Report, Series, SeriesTable};
use o2_workloads::WorkloadSpec;

fn main() {
    let costs: Vec<u64> = if quick_mode() {
        vec![500, 2000, 8000]
    } else {
        vec![250, 500, 1000, 2000, 4000, 8000, 16000, 32000]
    };
    let total_kb = 8192;

    let baseline = run_point(
        &WorkloadSpec::for_total_kb(total_kb),
        PolicyKind::ThreadScheduler,
    );

    let mut with = Series::new("With CoreTime");
    let mut without = Series::new("Without CoreTime");
    for &cost in &costs {
        let mut spec = WorkloadSpec::for_total_kb(total_kb);
        spec.runtime = spec.runtime.with_migration_cost(cost);
        let m = run_point(&spec, PolicyKind::CoreTime);
        with.push(cost as f64, m.kres_per_sec());
        without.push(cost as f64, baseline.kres_per_sec());
    }

    let mut table = SeriesTable::new("One-way migration cost (cycles)");
    table.add(with);
    table.add(without);
    let report = Report::new(
        "Ablation A: sensitivity to thread-migration cost (8 MB working set)",
        table,
    )
    .param("total data size", format!("{total_kb} KB"))
    .param("baseline", "thread scheduler, independent of migration cost")
    .note("Cheaper migration widens CoreTime's advantage; expensive migration erodes it, as Section 6.1 argues.");
    println!("{}", report.render_text());
}
