//! Figure 2: cache contents for the directory-lookup workload under a
//! thread scheduler versus an O2 scheduler.
//!
//! The paper's figure shows a 4-core machine and 20 directories: the thread
//! scheduler replicates the hot directories in every cache and leaves
//! almost half the directories off-chip, while the O2 scheduler packs
//! distinct directories into distinct caches so everything fits on chip.
//!
//! Run with `cargo run --release -p o2-bench --bin fig2`.

use o2_bench::PolicyKind;
use o2_sim::{snapshot, MachineConfig, OccupancySnapshot};
use o2_workloads::{Experiment, WorkloadSpec};

fn run_snapshot(policy: PolicyKind) -> (OccupancySnapshot, String) {
    let mut spec = WorkloadSpec::paper_default(20);
    spec.machine = MachineConfig::quad4();
    spec.warmup_ops = 6_000;
    spec.measure_cycles = 2_000_000;
    let boxed = policy.build(&spec);
    let mut exp = Experiment::build(spec, boxed);
    let _ = exp.run();
    let regions = exp.directory_regions();
    let snap = snapshot(exp.engine().machine(), &regions);
    (snap, policy.label().to_string())
}

fn describe(snap: &OccupancySnapshot, label: &str) {
    println!("--- {label} ---");
    for core in 0..snap.private.len() as u32 {
        let dirs = snap.resident_in_core(core);
        println!(
            "  core {core} private caches (L1+L2): {}",
            render_dirs(&dirs)
        );
    }
    for chip in 0..snap.l3.len() as u32 {
        let dirs = snap.resident_in_l3(chip);
        println!("  chip {chip} shared L3:            {}", render_dirs(&dirs));
    }
    println!(
        "  off-chip:                     {}",
        render_dirs(&snap.off_chip)
    );
    println!(
        "  distinct directories on-chip: {} of 20, duplication factor {:.2}",
        snap.distinct_on_chip(),
        snap.duplication_factor()
    );
    println!();
}

fn render_dirs(dirs: &[u64]) -> String {
    if dirs.is_empty() {
        return "(none)".to_string();
    }
    dirs.iter()
        .map(|d| format!("dir{d}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("Figure 2: cache contents, 4 cores, 20 directories of 1000 entries\n");
    let (thread_snap, thread_label) = run_snapshot(PolicyKind::ThreadScheduler);
    describe(
        &thread_snap,
        &format!("(a) Thread scheduler — {thread_label}"),
    );
    let (o2_snap, o2_label) = run_snapshot(PolicyKind::CoreTime);
    describe(&o2_snap, &format!("(b) O2 scheduler — {o2_label}"));

    println!("Paper's claim: the thread scheduler stores a little more than half of");
    println!("the directories on-chip (with heavy duplication); the O2 scheduler");
    println!("stores all of them with no duplication.");
    println!(
        "Measured: thread scheduler {} distinct on-chip (duplication {:.2}); O2 {} distinct (duplication {:.2}).",
        thread_snap.distinct_on_chip(),
        thread_snap.duplication_factor(),
        o2_snap.distinct_on_chip(),
        o2_snap.duplication_factor()
    );
}
