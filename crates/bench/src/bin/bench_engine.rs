//! Engine-loop throughput benchmark → `BENCH_engine.json`.
//!
//! Runs three fixed-seed scenarios on the paper's 16-core AMD machine and
//! records how fast the *host* executes the simulation loop (simulated
//! ops and events per wall-clock second). Each scenario is run with the
//! timing-wheel event core (best of [`REPS`] walls, to ride out host
//! noise) and once more with the `BinaryHeap` and cycle-box cores, whose
//! ops/event counts must match exactly — the benchmark doubles as an
//! equivalence smoke test of all three event cores.
//!
//! * `idle_heavy` — 1 busy core, 15 parked: the regime the event-driven
//!   scheduler exists for (the old engine burned an idle-step per core
//!   every 400 cycles here).
//! * `saturated` — 32 threads on 16 cores with locks and migrations: the
//!   regime where the event queue must not be slower than a linear scan.
//! * `bursty` — a blocking-lock convoy: release hand-offs wake waiters in
//!   same-cycle storms, separated by long compute gaps. Exercises the
//!   wheel's batched dispatch and coarse-level cascades.
//!
//! The `recorded_baseline` block carries the numbers the seed
//! `BinaryHeap` engine produced on this host before the timing-wheel
//! rewrite; `speedup_events` compares against them.

use std::time::Instant;

use o2_runtime::{
    Action, Engine, EventCoreKind, NullPolicy, OpBuilder, RepeatBehaviour, RuntimeConfig,
    SchedStats, StaticPolicy,
};
use o2_sim::{ContentionModel, Machine, MachineConfig};

/// Wheel-core repetitions per scenario; the best wall is recorded.
const REPS: usize = 3;

/// Same-host walls recorded by this benchmark when the engine still ran
/// on its original `BinaryHeap` event queue (committed with the seed).
struct RecordedBaseline {
    scenario: &'static str,
    wall_seconds: f64,
    events_per_wall_second: f64,
}

const RECORDED_BASELINE: [RecordedBaseline; 2] = [
    RecordedBaseline {
        scenario: "idle_heavy",
        wall_seconds: 0.023461,
        events_per_wall_second: 6_456_658.0,
    },
    RecordedBaseline {
        scenario: "saturated",
        wall_seconds: 0.065992,
        events_per_wall_second: 11_262_358.0,
    },
];

struct Scenario {
    name: &'static str,
    cycles: u64,
    build: fn(EventCoreKind) -> Engine,
}

struct Outcome {
    name: &'static str,
    simulated_cycles: u64,
    total_ops: u64,
    events_processed: u64,
    /// Best wheel-core wall over [`REPS`] runs.
    wall_seconds: f64,
    /// Best heap-core wall over [`REPS`] runs (same binary, same host —
    /// the live counterpart of the recorded baseline).
    heap_wall_seconds: f64,
    stats: SchedStats,
}

impl Outcome {
    fn json(&self) -> String {
        let events_per_s = self.events_processed as f64 / self.wall_seconds;
        let baseline = RECORDED_BASELINE.iter().find(|b| b.scenario == self.name);
        let baseline_json = match baseline {
            Some(b) => format!(
                concat!(
                    "      \"baseline_wall_seconds\": {:.6},\n",
                    "      \"baseline_events_per_wall_second\": {:.0},\n",
                    "      \"speedup_events\": {:.2},\n",
                ),
                b.wall_seconds,
                b.events_per_wall_second,
                events_per_s / b.events_per_wall_second,
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"total_ops\": {},\n",
                "      \"events_processed\": {},\n",
                "      \"wall_seconds\": {:.6},\n",
                "      \"heap_wall_seconds\": {:.6},\n",
                "      \"sim_ops_per_wall_second\": {:.0},\n",
                "      \"events_per_wall_second\": {:.0},\n",
                "{}",
                "      \"wheel\": {{\n",
                "        \"occupancy_hwm\": {},\n",
                "        \"cascades\": {},\n",
                "        \"overflows\": {},\n",
                "        \"max_batch\": {}\n",
                "      }}\n",
                "    }}"
            ),
            self.name,
            self.simulated_cycles,
            self.total_ops,
            self.events_processed,
            self.wall_seconds,
            self.heap_wall_seconds,
            self.total_ops as f64 / self.wall_seconds,
            events_per_s,
            baseline_json,
            self.stats.wheel_occupancy_hwm,
            self.stats.wheel_cascades,
            self.stats.wheel_overflows,
            self.stats.wheel_max_batch,
        )
    }
}

/// One timed run; returns `(wall, ops, events, stats)`.
fn run_once(s: &Scenario, kind: EventCoreKind) -> (f64, u64, u64, SchedStats) {
    let mut engine = (s.build)(kind);
    let start = Instant::now();
    engine.run_until_cycles(s.cycles);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (
        wall,
        engine.total_ops(),
        engine.sched_stats().events_processed,
        engine.sched_stats(),
    )
}

fn measure(s: &Scenario) -> Outcome {
    let (mut wall, ops, events, stats) = run_once(s, EventCoreKind::Wheel);
    for _ in 1..REPS {
        wall = wall.min(run_once(s, EventCoreKind::Wheel).0);
    }

    // The other event cores must reproduce the wheel's results exactly;
    // keep the heap's best wall as the live same-host comparison point.
    let (mut heap_wall, heap_ops, heap_events, _) = run_once(s, EventCoreKind::Heap);
    for _ in 1..REPS {
        heap_wall = heap_wall.min(run_once(s, EventCoreKind::Heap).0);
    }
    assert_eq!(
        (ops, events),
        (heap_ops, heap_events),
        "{}: heap event core diverged from the wheel",
        s.name
    );
    let (_, box_ops, box_events, _) = run_once(s, EventCoreKind::CycleBox);
    assert_eq!(
        (ops, events),
        (box_ops, box_events),
        "{}: cycle-box event core diverged from the wheel",
        s.name
    );

    println!(
        "{:<12} {:>9} ops in {:.3}s ({:.0} sim-ops/s, {} events, heap {:.3}s)",
        s.name,
        ops,
        wall,
        ops as f64 / wall,
        events,
        heap_wall,
    );
    Outcome {
        name: s.name,
        simulated_cycles: s.cycles,
        total_ops: ops,
        events_processed: events,
        wall_seconds: wall,
        heap_wall_seconds: heap_wall,
        stats,
    }
}

fn idle_heavy(kind: EventCoreKind) -> Engine {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default().with_event_core(kind),
    );
    let data = engine.machine_mut().memory_mut().alloc(64 * 1024, 0);
    let op = OpBuilder::annotated(0x1)
        .compute(600)
        .read(data.addr, 4096)
        .finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
    engine
}

fn saturated(kind: EventCoreKind) -> Engine {
    let machine = Machine::new(MachineConfig::amd16());
    let mut cfg = RuntimeConfig::default().with_event_core(kind);
    cfg.quantum_cycles = 10_000;
    let mut policy = StaticPolicy::new();
    for i in 0..8u64 {
        policy.assign(0x1000 + i, ((i * 5) % 16) as u32);
    }
    let mut engine = Engine::new(machine, Box::new(policy), cfg);
    let data = engine.machine_mut().memory_mut().alloc(1 << 20, 0);
    let locks: Vec<_> = (0..8)
        .map(|_| {
            let r = engine.machine_mut().memory_mut().alloc(64, 1);
            engine.register_lock(r.addr)
        })
        .collect();
    for core in 0..16u32 {
        let obj = 0x1000 + u64::from(core % 8);
        let lock = locks[(core % 8) as usize];
        let op = OpBuilder::annotated(obj)
            .lock(lock)
            .compute(300)
            .read(data.addr + u64::from(core) * 4096, 1024)
            .unlock(lock)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
        engine.spawn(
            core,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(500), Action::Yield],
                None,
            )),
        );
    }
    engine
}

fn bursty(kind: EventCoreKind) -> Engine {
    let mut mcfg = MachineConfig::amd16();
    mcfg.contention = ContentionModel::None;
    let machine = Machine::new(mcfg);
    let cfg = RuntimeConfig::default()
        .with_blocking_locks()
        .with_event_core(kind);
    let mut engine = Engine::new(machine, Box::new(NullPolicy), cfg);
    let lock_region = engine.machine_mut().memory_mut().alloc(64, 0);
    let lock = engine.register_lock(lock_region.addr);
    // All 16 cores contend on one blocking lock: every release hands off
    // to the next waiter, so wakeups arrive in dense same-cycle storms,
    // then the whole machine computes quietly for 30k cycles — long
    // enough that the wheel cursor has to cross coarse-level slots to
    // find the next storm.
    for core in 0..16u32 {
        let op = OpBuilder::annotated(0x2000 + u64::from(core))
            .lock(lock)
            .compute(150)
            .unlock(lock)
            .compute(30_000)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
    }
    engine
}

fn main() {
    let scenarios = [
        Scenario {
            name: "idle_heavy",
            cycles: 30_000_000,
            build: idle_heavy,
        },
        Scenario {
            name: "saturated",
            cycles: 5_000_000,
            build: saturated,
        },
        Scenario {
            name: "bursty",
            cycles: 100_000_000,
            build: bursty,
        },
    ];
    let outcomes: Vec<Outcome> = scenarios.iter().map(measure).collect();
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let baseline_body = RECORDED_BASELINE
        .iter()
        .map(|b| {
            format!(
                concat!(
                    "      {{ \"scenario\": \"{}\", \"wall_seconds\": {:.6}, ",
                    "\"events_per_wall_second\": {:.0} }}"
                ),
                b.scenario, b.wall_seconds, b.events_per_wall_second
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_loop\",\n",
            "  \"machine\": \"amd16\",\n",
            "  \"engine\": \"event core: hierarchical timing wheel, batched same-cycle dispatch\",\n",
            "  \"reps_per_scenario\": {},\n",
            "  \"recorded_baseline\": {{\n",
            "    \"engine\": \"event-queue (BinaryHeap, parked idle cores)\",\n",
            "    \"note\": \"same-host walls recorded before the timing-wheel rewrite\",\n",
            "    \"scenarios\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        REPS, baseline_body, body
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
