//! Engine-loop throughput benchmark → `BENCH_engine.json`.
//!
//! Runs two fixed-seed scenarios on the paper's 16-core AMD machine and
//! records how fast the *host* executes the simulation loop (simulated
//! ops and events per wall-clock second). Later PRs optimising the engine
//! compare against this file's numbers.
//!
//! * `idle_heavy` — 1 busy core, 15 parked: the regime the event-driven
//!   scheduler exists for (the old engine burned an idle-step per core
//!   every 400 cycles here).
//! * `saturated` — 32 threads on 16 cores with locks and migrations: the
//!   regime where the event queue must not be slower than a linear scan.

use std::time::Instant;

use o2_runtime::{
    Action, Engine, NullPolicy, OpBuilder, RepeatBehaviour, RuntimeConfig, StaticPolicy,
};
use o2_sim::{ContentionModel, Machine, MachineConfig};

struct Outcome {
    name: &'static str,
    simulated_cycles: u64,
    total_ops: u64,
    events_processed: u64,
    wall_seconds: f64,
}

impl Outcome {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"total_ops\": {},\n",
                "      \"events_processed\": {},\n",
                "      \"wall_seconds\": {:.6},\n",
                "      \"sim_ops_per_wall_second\": {:.0},\n",
                "      \"events_per_wall_second\": {:.0}\n",
                "    }}"
            ),
            self.name,
            self.simulated_cycles,
            self.total_ops,
            self.events_processed,
            self.wall_seconds,
            self.total_ops as f64 / self.wall_seconds,
            self.events_processed as f64 / self.wall_seconds,
        )
    }
}

fn measure(name: &'static str, cycles: u64, mut engine: Engine) -> Outcome {
    let start = Instant::now();
    engine.run_until_cycles(cycles);
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "{name:<12} {:>9} ops in {:.3}s ({:.0} sim-ops/s, {} events)",
        engine.total_ops(),
        wall_seconds,
        engine.total_ops() as f64 / wall_seconds,
        engine.sched_stats().events_processed,
    );
    Outcome {
        name,
        simulated_cycles: cycles,
        total_ops: engine.total_ops(),
        events_processed: engine.sched_stats().events_processed,
        wall_seconds,
    }
}

fn idle_heavy() -> Engine {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = ContentionModel::None;
    let mut engine = Engine::new(
        Machine::new(cfg),
        Box::new(NullPolicy),
        RuntimeConfig::default(),
    );
    let data = engine.machine_mut().memory_mut().alloc(64 * 1024, 0);
    let op = OpBuilder::annotated(0x1)
        .compute(600)
        .read(data.addr, 4096)
        .finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, None)));
    engine
}

fn saturated() -> Engine {
    let machine = Machine::new(MachineConfig::amd16());
    let mut cfg = RuntimeConfig::default();
    cfg.quantum_cycles = 10_000;
    let mut policy = StaticPolicy::new();
    for i in 0..8u64 {
        policy.assign(0x1000 + i, ((i * 5) % 16) as u32);
    }
    let mut engine = Engine::new(machine, Box::new(policy), cfg);
    let data = engine.machine_mut().memory_mut().alloc(1 << 20, 0);
    let locks: Vec<_> = (0..8)
        .map(|_| {
            let r = engine.machine_mut().memory_mut().alloc(64, 1);
            engine.register_lock(r.addr)
        })
        .collect();
    for core in 0..16u32 {
        let obj = 0x1000 + u64::from(core % 8);
        let lock = locks[(core % 8) as usize];
        let op = OpBuilder::annotated(obj)
            .lock(lock)
            .compute(300)
            .read(data.addr + u64::from(core) * 4096, 1024)
            .unlock(lock)
            .finish();
        engine.spawn(core, Box::new(RepeatBehaviour::new(op, None)));
        engine.spawn(
            core,
            Box::new(RepeatBehaviour::new(
                vec![Action::Compute(500), Action::Yield],
                None,
            )),
        );
    }
    engine
}

fn main() {
    let outcomes = [
        measure("idle_heavy", 30_000_000, idle_heavy()),
        measure("saturated", 5_000_000, saturated()),
    ];
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine_loop\",\n",
            "  \"machine\": \"amd16\",\n",
            "  \"engine\": \"event-queue (BinaryHeap, parked idle cores)\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
