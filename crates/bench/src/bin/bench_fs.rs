//! Host-side throughput of the fs volume's bookkeeping → `BENCH_fs.json`.
//!
//! Drives `Volume` directly (no engine, no memory simulation) so the
//! numbers isolate exactly the host-side cost the flat-name-index rebuild
//! targeted: resolving names and churning metadata. The *modeled* lookup
//! cost — the per-entry compare cycles the simulated machine pays — is
//! part of the paper's cost model and is untouched by this refactor;
//! this benchmark measures only what the host pays to keep the books.
//! Two seeded scenarios:
//!
//! * `lookup_heavy` — the paper's volume shape (directories of 1,000
//!   entries), hammered with name resolutions. Baseline: the linear image
//!   scan (`Volume::search_linear`) that resolution used before the flat
//!   index, i.e. O(entries) byte compares per lookup.
//! * `metadata_churn` — `fsmeta`'s shape (many small directories),
//!   hammered with create / unlink / rename. Baseline: the same logical
//!   churn against a linear directory model (scan a `Vec` of slots for
//!   the name / the free slot), the pre-refactor bookkeeping idiom.
//!
//! Both variants are measured in the same process on the same host;
//! treat the committed `BENCH_fs.json` as the artifact.

use std::time::Instant;

use o2_fs::{split_8_3, synthetic_name, Volume, VolumeGeometry};

/// Deterministic 64-bit LCG (constants from Knuth); top bits returned.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

struct Outcome {
    name: &'static str,
    operations: u64,
    wall_seconds: f64,
    baseline_wall_seconds: f64,
}

impl Outcome {
    fn ops_per_sec(&self) -> f64 {
        self.operations as f64 / self.wall_seconds
    }

    fn baseline_ops_per_sec(&self) -> f64 {
        self.operations as f64 / self.baseline_wall_seconds
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"operations\": {},\n",
                "      \"wall_seconds\": {:.6},\n",
                "      \"ops_per_wall_second\": {:.0},\n",
                "      \"baseline_ops_per_wall_second\": {:.0},\n",
                "      \"speedup_vs_baseline\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.operations,
            self.wall_seconds,
            self.ops_per_sec(),
            self.baseline_ops_per_sec(),
            self.ops_per_sec() / self.baseline_ops_per_sec(),
        )
    }

    fn print(&self) {
        println!(
            "{:<16} {:>9} ops: {:>12.0}/s flat vs {:>12.0}/s linear ({:.1}x)",
            self.name,
            self.operations,
            self.ops_per_sec(),
            self.baseline_ops_per_sec(),
            self.ops_per_sec() / self.baseline_ops_per_sec(),
        );
    }
}

/// The paper's volume shape, resolution-only: the flat name index vs. the
/// linear image scan it replaced. A black-box accumulator keeps the
/// optimizer honest.
fn lookup_heavy(iters: u64) -> Outcome {
    const DIRS: u32 = 16;
    const ENTRIES: u32 = 1000;
    let volume = Volume::build_benchmark(DIRS, ENTRIES).expect("benchmark volume");
    let targets: Vec<(u32, String)> = {
        let mut rng = Lcg(0xF5_0001);
        (0..4096)
            .map(|_| {
                let dir = (rng.next() % u64::from(DIRS)) as u32;
                let entry = (rng.next() % u64::from(ENTRIES)) as u32;
                (dir, synthetic_name(entry))
            })
            .collect()
    };

    let mut acc = 0u64;
    let start = Instant::now();
    for i in 0..iters {
        let (dir, name) = &targets[(i as usize) & 4095];
        let (slot, _) = volume.search(*dir, name).expect("dir").expect("hit");
        acc = acc.wrapping_add(u64::from(slot));
    }
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);

    // Baseline: the same resolutions through the linear scan. Far fewer
    // iterations (it is ~ENTRIES/2 times slower); normalised by count.
    let base_iters = (iters / 256).max(1);
    let start = Instant::now();
    for i in 0..base_iters {
        let (dir, name) = &targets[(i as usize) & 4095];
        let (slot, _) = volume.search_linear(*dir, name).expect("dir").expect("hit");
        acc = acc.wrapping_add(u64::from(slot));
    }
    // Scaled to the wall time the full `iters` would have taken.
    let baseline_wall_seconds =
        start.elapsed().as_secs_f64().max(1e-9) * (iters as f64 / base_iters as f64);

    std::hint::black_box(acc);
    Outcome {
        name: "lookup_heavy",
        operations: iters,
        wall_seconds,
        baseline_wall_seconds,
    }
}

/// The pre-refactor bookkeeping idiom: one directory's entries in a
/// `Vec`, every question answered by a linear scan.
struct LinearDir {
    slots: Vec<Option<[u8; 11]>>,
}

impl LinearDir {
    fn new(live: u32, capacity: u32) -> Self {
        let mut slots = vec![None; capacity as usize];
        for (i, slot) in slots.iter_mut().enumerate().take(live as usize) {
            *slot = Some(pack_name(&synthetic_name(i as u32)));
        }
        Self { slots }
    }

    fn find(&self, name: &[u8; 11]) -> Option<u32> {
        self.slots
            .iter()
            .position(|s| s.as_ref() == Some(name))
            .map(|i| i as u32)
    }

    fn create(&mut self, name: [u8; 11]) -> Option<u32> {
        if self.find(&name).is_some() {
            return None;
        }
        let free = self.slots.iter().position(|s| s.is_none())?;
        self.slots[free] = Some(name);
        Some(free as u32)
    }

    fn unlink(&mut self, name: &[u8; 11]) -> Option<u32> {
        let slot = self.find(name)?;
        self.slots[slot as usize] = None;
        Some(slot)
    }

    fn rename(&mut self, old: &[u8; 11], new: [u8; 11]) -> Option<u32> {
        if self.find(&new).is_some() {
            return None;
        }
        let slot = self.find(old)?;
        self.slots[slot as usize] = Some(new);
        Some(slot)
    }
}

fn pack_name(name: &str) -> [u8; 11] {
    let (n, e) = split_8_3(name);
    let mut out = [0u8; 11];
    out[..8].copy_from_slice(&n);
    out[8..].copy_from_slice(&e);
    out
}

/// `fsmeta`'s shape, churn-only: create / unlink / rename through the
/// flat index vs. the linear model. Both sides replay the identical
/// seeded op sequence.
fn metadata_churn(iters: u64) -> Outcome {
    const DIRS: u32 = 64;
    const CAPACITY: u32 = 64;
    const LIVE: u32 = 32;

    // The shared deterministic op tape: (dir, roll, victim-pick).
    let tape: Vec<(u32, u32, u32)> = {
        let mut rng = Lcg(0xF5_0002);
        (0..iters)
            .map(|_| {
                let r = rng.next();
                (
                    (r % u64::from(DIRS)) as u32,
                    ((r >> 8) % 100) as u32,
                    (r >> 16) as u32,
                )
            })
            .collect()
    };

    // Flat side: a real Volume, fsmeta-shaped.
    let mut geometry = VolumeGeometry::default();
    geometry.data_clusters = geometry.data_clusters.max(DIRS * 2 + 8);
    let mut volume = Volume::new(geometry);
    for _ in 0..DIRS {
        volume
            .create_directory_with_capacity(LIVE, CAPACITY)
            .expect("churn volume");
    }
    let mut live: Vec<Vec<u32>> = (0..DIRS).map(|_| (0..LIVE).collect()).collect();
    let mut next: Vec<u32> = vec![LIVE; DIRS as usize];
    let mut ops = 0u64;
    let start = Instant::now();
    for &(dir, roll, pick) in &tape {
        let d = dir as usize;
        let n = live[d].len() as u32;
        let choice = if n == 0 {
            0
        } else if n == CAPACITY {
            45
        } else {
            roll
        };
        match choice {
            0..=44 => {
                let serial = next[d];
                next[d] += 1;
                volume
                    .create_entry(dir, &synthetic_name(serial), 64)
                    .expect("create");
                live[d].push(serial);
            }
            45..=79 => {
                let serial = live[d].swap_remove((pick % n) as usize);
                volume.unlink(dir, &synthetic_name(serial)).expect("unlink");
            }
            _ => {
                let at = (pick % n) as usize;
                let (old, new) = (live[d][at], next[d]);
                next[d] += 1;
                volume
                    .rename(dir, &synthetic_name(old), &synthetic_name(new))
                    .expect("rename");
                live[d][at] = new;
            }
        }
        ops += 1;
    }
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);

    // Linear side: identical tape against the scan-everything model.
    let mut dirs: Vec<LinearDir> = (0..DIRS).map(|_| LinearDir::new(LIVE, CAPACITY)).collect();
    let mut live: Vec<Vec<u32>> = (0..DIRS).map(|_| (0..LIVE).collect()).collect();
    let mut next: Vec<u32> = vec![LIVE; DIRS as usize];
    let start = Instant::now();
    for &(dir, roll, pick) in &tape {
        let d = dir as usize;
        let n = live[d].len() as u32;
        let choice = if n == 0 {
            0
        } else if n == CAPACITY {
            45
        } else {
            roll
        };
        match choice {
            0..=44 => {
                let serial = next[d];
                next[d] += 1;
                dirs[d]
                    .create(pack_name(&synthetic_name(serial)))
                    .expect("create");
                live[d].push(serial);
            }
            45..=79 => {
                let serial = live[d].swap_remove((pick % n) as usize);
                dirs[d]
                    .unlink(&pack_name(&synthetic_name(serial)))
                    .expect("unlink");
            }
            _ => {
                let at = (pick % n) as usize;
                let (old, new) = (live[d][at], next[d]);
                next[d] += 1;
                dirs[d]
                    .rename(
                        &pack_name(&synthetic_name(old)),
                        pack_name(&synthetic_name(new)),
                    )
                    .expect("rename");
                live[d][at] = new;
            }
        }
    }
    let baseline_wall_seconds = start.elapsed().as_secs_f64().max(1e-9);

    // Cross-check: both models must agree on the final occupancy.
    for dir in 0..DIRS {
        let flat = volume.live_entries(dir).expect("dir");
        let linear = dirs[dir as usize]
            .slots
            .iter()
            .filter(|s| s.is_some())
            .count() as u32;
        assert_eq!(flat, linear, "models diverged in dir {dir}");
    }

    Outcome {
        name: "metadata_churn",
        operations: ops,
        wall_seconds,
        baseline_wall_seconds,
    }
}

fn main() {
    let outcomes = [lookup_heavy(2_000_000), metadata_churn(2_000_000)];
    for o in &outcomes {
        o.print();
    }
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fs_host_bookkeeping\",\n",
            "  \"model\": \"per-directory flat name index (o2-collections FlatTable) vs linear scans\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body
    );
    std::fs::write("BENCH_fs.json", &json).expect("write BENCH_fs.json");
    println!("wrote BENCH_fs.json");
}
