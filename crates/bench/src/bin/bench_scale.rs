//! Million-object scale-tier benchmark → `BENCH_scale.json`.
//!
//! Runs the `fig_scale` workload (4 KB objects, Zipf(1.1) popularity,
//! `amd16`, specification from [`o2_experiments::scale_spec_for`]) under
//! CoreTime at 1e5, 1e6 and 1e7 objects, and records per point:
//!
//! * simulated throughput (kops/s of virtual time) and host-side build /
//!   run wall seconds — the hot path must not fall off a cliff as the
//!   object count grows 100×;
//! * service-latency percentiles (`ct_start`→`ct_end` cycles) from the
//!   runtime's streaming sketch — constant space, no per-op samples;
//! * the footprint audit: accounted bytes of object-indexed state per
//!   object (interner + registry + assignment table + sketches, from
//!   `Engine::footprint_bytes`) next to the process-level resident-set
//!   delta across build+run from `/proc/self/statm` (0 when the proc
//!   file is unavailable).
//!
//! Methodology: all points run in one process on one host, in ascending
//! object-count order, seeds fixed, so the accounted numbers are exactly
//! reproducible and the RSS deltas are comparable across points (each
//! delta is measured against the RSS right before that point's build;
//! allocator reuse across points makes the deltas a floor, not a sum).

use std::time::Instant;

use o2_experiments::{scale_spec_for, PolicyKind};
use o2_workloads::{ScaleExperiment, ScaleMeasurement};

/// Seed shared by every point (the spec derives per-thread streams).
const SEED: u64 = 0xbe9c_0005;

/// Object counts swept, ascending (the paper's "millions of objects").
const COUNTS: [u64; 3] = [100_000, 1_000_000, 10_000_000];

/// Resident set size in bytes from `/proc/self/statm`, or `None` when
/// the file is unavailable (non-Linux hosts).
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

struct Outcome {
    m: ScaleMeasurement,
    build_seconds: f64,
    run_seconds: f64,
    resident_delta_bytes: u64,
}

impl Outcome {
    fn resident_bytes_per_object(&self) -> f64 {
        self.resident_delta_bytes as f64 / self.m.n_objects.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"scale_{}\",\n",
                "      \"n_objects\": {},\n",
                "      \"policy\": \"{}\",\n",
                "      \"window_ops\": {},\n",
                "      \"kops_per_sec\": {:.1},\n",
                "      \"service_p50_cycles\": {},\n",
                "      \"service_p99_cycles\": {},\n",
                "      \"service_p999_cycles\": {},\n",
                "      \"service_max_cycles\": {},\n",
                "      \"latency_samples\": {},\n",
                "      \"accounted_bytes_per_object\": {:.1},\n",
                "      \"resident_bytes_per_object\": {:.1},\n",
                "      \"migrations\": {},\n",
                "      \"build_wall_seconds\": {:.3},\n",
                "      \"run_wall_seconds\": {:.3}\n",
                "    }}"
            ),
            self.m.n_objects,
            self.m.n_objects,
            self.m.policy,
            self.m.window.ops,
            self.m.kops_per_sec(),
            self.m.service_latency.p50,
            self.m.service_latency.p99,
            self.m.service_latency.p999,
            self.m.service_latency.max,
            self.m.service_latency.count,
            self.m.bytes_per_object(),
            self.resident_bytes_per_object(),
            self.m.migrations,
            self.build_seconds,
            self.run_seconds,
        )
    }
}

fn run_point(n: u64) -> Outcome {
    let spec = scale_spec_for(n, SEED);
    let policy = PolicyKind::CoreTime.build(&spec.machine);
    let rss_before = rss_bytes().unwrap_or(0);

    let build_start = Instant::now();
    let mut exp = ScaleExperiment::build(spec, policy);
    let build_seconds = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let m = exp.run();
    let run_seconds = run_start.elapsed().as_secs_f64().max(1e-9);
    let rss_after = rss_bytes().unwrap_or(0);

    let o = Outcome {
        m,
        build_seconds,
        run_seconds,
        resident_delta_bytes: rss_after.saturating_sub(rss_before),
    };
    println!(
        "scale_{n:<9} {:>8} ops, {:>8.1} kops/s, p99 {:>6} cy, {:>6.1} B/obj accounted, {:>7.1} B/obj resident, build {:.2}s run {:.2}s",
        o.m.window.ops,
        o.m.kops_per_sec(),
        o.m.service_latency.p99,
        o.m.bytes_per_object(),
        o.resident_bytes_per_object(),
        o.build_seconds,
        o.run_seconds,
    );
    o
}

fn main() {
    let outcomes: Vec<Outcome> = COUNTS.iter().map(|&n| run_point(n)).collect();
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"scale_tier\",\n",
            "  \"machine\": \"amd16\",\n",
            "  \"model\": \"open-loop-capable scale tier: computed object layout, ",
            "O(1) Zipf sampling, pre-sized tables, streaming latency sketch\",\n",
            "  \"methodology\": \"one process, ascending object counts, fixed seeds; ",
            "accounted = Engine::footprint_bytes / n; resident = /proc/self/statm ",
            "RSS delta across build+run (floor, allocator reuse)\",\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        body
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
