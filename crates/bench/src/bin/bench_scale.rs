//! Million-object scale-tier benchmark → `BENCH_scale.json`.
//!
//! Runs the `fig_scale` workload (4 KB objects, Zipf(1.1) popularity,
//! 95% reads, `amd16`, specification from
//! [`o2_experiments::scale_spec_for`]) under CoreTime with replica
//! serving enabled at 1e5, 1e6 and 1e7 objects, and records per point:
//!
//! * simulated throughput (kops/s of virtual time) and host-side build /
//!   run wall seconds — the hot path must not fall off a cliff as the
//!   object count grows 100×;
//! * service-latency percentiles (`ct_start`→`ct_end` cycles) from the
//!   runtime's streaming sketch — constant space, no per-op samples;
//! * the footprint audit: accounted bytes of object-indexed state per
//!   object (interner + registry + assignment table + sketches, from
//!   `Engine::footprint_bytes`) next to the process-level resident-set
//!   delta across build+run from `/proc/self/statm` (0 when the proc
//!   file is unavailable).
//!
//! After the closed-loop sweep, an **open-loop duel** re-runs the 1e6
//! point with Poisson arrivals (mean gap 8000 cycles per thread) under
//! CoreTime-with-serving and the thread scheduler, recording
//! arrival→completion percentiles and the background replica-fill
//! counters. This is the tail-latency half of the serving claim: the
//! fills run only in arrival gaps, so CoreTime's arrival p99 lands at or
//! below the thread scheduler's while the saturated sweep above stays an
//! exact tie.
//!
//! Methodology: all points run in one process on one host, in ascending
//! object-count order, seeds fixed, so the accounted numbers are exactly
//! reproducible and the RSS deltas are comparable across points (each
//! delta is measured against the RSS right before that point's build;
//! allocator reuse across points makes the deltas a floor, not a sum).

use std::time::Instant;

use o2_experiments::{scale_spec_for, serving_coretime_config, PolicyKind};
use o2_workloads::{ScaleExperiment, ScaleMeasurement};

/// Seed shared by every point (the spec derives per-thread streams).
const SEED: u64 = 0xbe9c_0005;

/// Object counts swept, ascending (the paper's "millions of objects").
const COUNTS: [u64; 3] = [100_000, 1_000_000, 10_000_000];

/// Resident set size in bytes from `/proc/self/statm`, or `None` when
/// the file is unavailable (non-Linux hosts).
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

struct Outcome {
    m: ScaleMeasurement,
    build_seconds: f64,
    run_seconds: f64,
    resident_delta_bytes: u64,
}

impl Outcome {
    fn resident_bytes_per_object(&self) -> f64 {
        self.resident_delta_bytes as f64 / self.m.n_objects.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"scale_{}\",\n",
                "      \"n_objects\": {},\n",
                "      \"policy\": \"{}\",\n",
                "      \"window_ops\": {},\n",
                "      \"kops_per_sec\": {:.1},\n",
                "      \"service_p50_cycles\": {},\n",
                "      \"service_p99_cycles\": {},\n",
                "      \"service_p999_cycles\": {},\n",
                "      \"service_max_cycles\": {},\n",
                "      \"latency_samples\": {},\n",
                "      \"accounted_bytes_per_object\": {:.1},\n",
                "      \"resident_bytes_per_object\": {:.1},\n",
                "      \"migrations\": {},\n",
                "      \"replica_promotions\": {},\n",
                "      \"replica_demotions\": {},\n",
                "      \"replica_invalidations\": {},\n",
                "      \"replica_served\": {},\n",
                "      \"build_wall_seconds\": {:.3},\n",
                "      \"run_wall_seconds\": {:.3}\n",
                "    }}"
            ),
            self.m.n_objects,
            self.m.n_objects,
            self.m.policy,
            self.m.window.ops,
            self.m.kops_per_sec(),
            self.m.service_latency.p50,
            self.m.service_latency.p99,
            self.m.service_latency.p999,
            self.m.service_latency.max,
            self.m.service_latency.count,
            self.m.bytes_per_object(),
            self.resident_bytes_per_object(),
            self.m.migrations,
            self.m.replication.promotions,
            self.m.replication.demotions,
            self.m.replication.invalidations,
            self.m.replication.replica_served,
            self.build_seconds,
            self.run_seconds,
        )
    }
}

fn run_point(n: u64) -> Outcome {
    let spec = scale_spec_for(n, SEED);
    let policy = PolicyKind::CoreTime.build_with_coretime_config(
        &spec.machine,
        serving_coretime_config(PolicyKind::CoreTime, n),
    );
    let rss_before = rss_bytes().unwrap_or(0);

    let build_start = Instant::now();
    let mut exp = ScaleExperiment::build(spec, policy);
    let build_seconds = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let m = exp.run();
    let run_seconds = run_start.elapsed().as_secs_f64().max(1e-9);
    let rss_after = rss_bytes().unwrap_or(0);

    let o = Outcome {
        m,
        build_seconds,
        run_seconds,
        resident_delta_bytes: rss_after.saturating_sub(rss_before),
    };
    println!(
        "scale_{n:<9} {:>8} ops, {:>8.1} kops/s, p99 {:>6} cy, {:>6.1} B/obj accounted, {:>7.1} B/obj resident, replicas +{} -{} inv {} served {}, build {:.2}s run {:.2}s",
        o.m.window.ops,
        o.m.kops_per_sec(),
        o.m.service_latency.p99,
        o.m.bytes_per_object(),
        o.resident_bytes_per_object(),
        o.m.replication.promotions,
        o.m.replication.demotions,
        o.m.replication.invalidations,
        o.m.replication.replica_served,
        o.build_seconds,
        o.run_seconds,
    );
    o
}

/// Object count and per-thread Poisson mean gap of the open-loop duel.
const DUEL_OBJECTS: u64 = 1_000_000;
const DUEL_MEAN_GAP: f64 = 8_000.0;

/// One open-loop series: the policy, its arrival→completion percentiles
/// and the background-fill work it managed to hide in arrival gaps.
fn run_duel(kind: PolicyKind) -> String {
    let mut spec = scale_spec_for(DUEL_OBJECTS, SEED);
    spec.open_loop_mean_gap = Some(DUEL_MEAN_GAP);
    let policy =
        kind.build_with_coretime_config(&spec.machine, serving_coretime_config(kind, DUEL_OBJECTS));
    let mut exp = ScaleExperiment::build(spec, policy);
    let m = exp.run();
    let arr = m
        .arrival_latency
        .as_ref()
        .expect("open-loop run records arrival latency");
    let ss = exp.engine().sched_stats();
    println!(
        "duel {:<18} {:>8.1} kops/s, arrival p50 {:>6} p99 {:>7} cy, fills {} ({} cy)",
        kind.label(),
        m.kops_per_sec(),
        arr.p50,
        arr.p99,
        ss.replica_fills,
        ss.replica_fill_cycles,
    );
    format!(
        concat!(
            "      {{\n",
            "        \"policy\": \"{}\",\n",
            "        \"kops_per_sec\": {:.1},\n",
            "        \"arrival_p50_cycles\": {},\n",
            "        \"arrival_p99_cycles\": {},\n",
            "        \"arrival_p999_cycles\": {},\n",
            "        \"replica_fills\": {},\n",
            "        \"replica_fill_cycles\": {},\n",
            "        \"replica_promotions\": {},\n",
            "        \"replica_invalidations\": {},\n",
            "        \"replica_served\": {}\n",
            "      }}"
        ),
        m.policy,
        m.kops_per_sec(),
        arr.p50,
        arr.p99,
        arr.p999,
        ss.replica_fills,
        ss.replica_fill_cycles,
        m.replication.promotions,
        m.replication.invalidations,
        m.replication.replica_served,
    )
}

fn main() {
    let outcomes: Vec<Outcome> = COUNTS.iter().map(|&n| run_point(n)).collect();
    let body = outcomes
        .iter()
        .map(Outcome::json)
        .collect::<Vec<_>>()
        .join(",\n");
    let duel_body = [PolicyKind::CoreTime, PolicyKind::ThreadScheduler]
        .map(run_duel)
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"scale_tier\",\n",
            "  \"machine\": \"amd16\",\n",
            "  \"model\": \"open-loop-capable scale tier: computed object layout, ",
            "O(1) Zipf sampling, pre-sized tables, streaming latency sketch, ",
            "95% reads served from measured-read-fraction replicas\",\n",
            "  \"methodology\": \"one process, ascending object counts, fixed seeds; ",
            "accounted = Engine::footprint_bytes / n; resident = /proc/self/statm ",
            "RSS delta across build+run (floor, allocator reuse)\",\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"open_loop_duel\": {{\n",
            "    \"n_objects\": {},\n",
            "    \"mean_gap_cycles\": {:.1},\n",
            "    \"series\": [\n{}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        body, DUEL_OBJECTS, DUEL_MEAN_GAP, duel_body
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
