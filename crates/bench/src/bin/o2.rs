//! The umbrella experiment driver: one binary for the whole matrix.
//!
//! ```text
//! o2 --list                          # the experiment index (markdown table)
//! o2 --run fig4a                     # one scenario, all cells
//! o2 --run fig2 --run table_latency  # several scenarios
//! o2 --all                           # the full registry
//! o2 --run fig_fsmeta --jobs 4       # shard cells over 4 OS threads
//! o2 --all --json matrix.json        # machine-readable results
//! o2 --all --quick                   # reduced sweeps (same as O2_QUICK=1)
//! ```
//!
//! Output is collected in cell-index order, and every cell derives its
//! seed from its coordinates, so the text and JSON renderings are
//! byte-identical for any `--jobs` value.

use o2_bench::{quick_mode, registry, render_json, render_reports, run_matrix};

fn usage() -> ! {
    eprintln!(
        "usage: o2 [--list] [--run <scenario>]... [--all] [--jobs N] [--json <path>] [--quick]\n\
         \n\
         --list         print the experiment index and exit\n\
         --run <name>   run one scenario (repeatable)\n\
         --all          run every scenario in the registry\n\
         --jobs N       shard matrix cells over N OS threads (default: all cores)\n\
         --json <path>  also write the results as JSON\n\
         --quick        reduced sweeps (equivalent to O2_QUICK=1)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut list = false;
    let mut all = false;
    let mut quick = quick_mode();
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut jobs = std::thread::available_parallelism().map_or(1, usize::from);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--quick" => quick = true,
            "--run" => match args.next() {
                Some(n) => names.push(n),
                None => usage(),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => usage(),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let available = registry(quick);
    if list {
        println!("| scenario | cells | description |");
        println!("|---|---|---|");
        for s in &available {
            println!("| `{}` | {} | {} |", s.name, s.cell_count(), s.description);
        }
        if !all && names.is_empty() {
            return;
        }
    }
    if !all && names.is_empty() {
        usage();
    }

    let scenarios = if all {
        available
    } else {
        // Pick from the registry built above; a name can be taken once.
        let mut pool = available;
        let mut picked: Vec<o2_bench::Scenario> = Vec::new();
        for name in &names {
            match pool.iter().position(|s| s.name == *name) {
                Some(i) => picked.push(pool.remove(i)),
                None if picked.iter().any(|p| p.name == *name) => {
                    eprintln!("scenario `{name}` given twice");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("unknown scenario `{name}` (see `o2 --list`)");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    let cells: usize = scenarios.iter().map(|s| s.cell_count()).sum();
    eprintln!(
        "running {} scenario(s), {cells} matrix cell(s), {jobs} job(s){}",
        scenarios.len(),
        if quick { ", quick sweeps" } else { "" }
    );
    let run = run_matrix(&scenarios, jobs);
    print!("{}", render_reports(&run));
    if let Some(path) = json_path {
        let json = render_json(&run);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}
