//! The traditional thread scheduler: the paper's "Without CoreTime"
//! baseline.
//!
//! Threads stay pinned to their home cores, operations always run locally,
//! and data placement is left entirely to the hardware caches. The
//! annotations are still executed (so operation counting is identical to
//! the CoreTime runs); they simply never cause migration.

use o2_runtime::{CounterDelta, OpContext, Placement, SchedPolicy};

/// The baseline thread scheduler.
#[derive(Debug, Default, Clone)]
pub struct ThreadScheduler {
    operations_seen: u64,
}

impl ThreadScheduler {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operations observed (for sanity checks in tests).
    pub fn operations_seen(&self) -> u64 {
        self.operations_seen
    }
}

impl SchedPolicy for ThreadScheduler {
    fn name(&self) -> &'static str {
        "thread-scheduler"
    }

    fn on_ct_start(&mut self, _ctx: &OpContext<'_>) -> Placement {
        Placement::Local
    }

    fn on_ct_end(&mut self, _ctx: &OpContext<'_>, _delta: &CounterDelta) {
        self.operations_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig};
    use o2_sim::{Machine, MachineConfig};

    #[test]
    fn never_migrates_and_counts_ops() {
        let machine = Machine::new(MachineConfig::quad4());
        let mut engine = Engine::new(
            machine,
            Box::new(ThreadScheduler::new()),
            RuntimeConfig::default(),
        );
        let op = OpBuilder::annotated(0xAB).compute(100).finish();
        for core in 0..4 {
            engine.spawn(core, Box::new(RepeatBehaviour::new(op.clone(), Some(10))));
        }
        engine.run_until_cycles(10_000_000);
        assert_eq!(engine.total_ops(), 40);
        for t in 0..4 {
            assert_eq!(engine.thread_stats(t).migrations, 0);
        }
        // All ops completed on the spawning cores.
        for core in 0..4 {
            assert_eq!(engine.machine().counters(core).operations_completed, 10);
        }
    }

    #[test]
    fn policy_name_matches_the_papers_label() {
        assert_eq!(ThreadScheduler::new().name(), "thread-scheduler");
    }
}
