//! Static object partitioning: an oracle-style comparator.
//!
//! Objects are assigned to cores round-robin at registration time and never
//! move. This isolates the value of CoreTime's *dynamic* machinery
//! (event-counter monitoring, rebalancing, decay): on the uniform workload
//! static partitioning performs like CoreTime, but on shifting workloads
//! (Figure 4b) it cannot adapt.

use o2_runtime::{
    CoreId, DenseObjectId, ObjectDescriptor, ObjectId, OpContext, Placement, PolicyFaultStats,
    SchedPolicy,
};

/// Sentinel for "dense id not registered with this policy".
const UNASSIGNED: CoreId = CoreId::MAX;

/// Round-robin static partitioning of registered objects across cores.
///
/// The table is a plain slab indexed by the dense object id the runtime
/// hands out at registration, so `ct_start` is a single bounds-checked
/// array read.
#[derive(Debug, Clone)]
pub struct StaticPartition {
    cores: u32,
    next: u32,
    /// Core per dense object id (`UNASSIGNED` = not registered).
    by_object: Vec<CoreId>,
    /// External keys, kept for the reporting API only.
    keys: Vec<ObjectId>,
    registered: usize,
    /// Bitmask of cores the fault plane took offline; round-robin and the
    /// defined fallback (next live core, cyclically) skip these.
    offline_mask: u64,
    fault: PolicyFaultStats,
}

impl StaticPartition {
    /// Creates a static partitioner for a machine with `cores` cores.
    pub fn new(cores: u32) -> Self {
        Self {
            cores: cores.max(1),
            next: 0,
            by_object: Vec::new(),
            keys: Vec::new(),
            registered: 0,
            offline_mask: 0,
            fault: PolicyFaultStats::default(),
        }
    }

    fn is_offline(&self, core: CoreId) -> bool {
        core < 64 && self.offline_mask & (1u64 << core) != 0
    }

    /// The next live core after `core`, cyclically — the baseline's
    /// defined fallback when a pin points at a dead core.
    fn next_live(&self, core: CoreId) -> CoreId {
        for step in 1..=self.cores {
            let c = (core + step) % self.cores;
            if !self.is_offline(c) {
                return c;
            }
        }
        core
    }

    /// The core an object (by external key) was assigned to, if
    /// registered. A reporting/test helper, hence the linear scan; the
    /// scheduling path uses the dense-id slab. Gap slots in `keys` are
    /// zero-filled, so only slots with a real assignment are considered
    /// (an object whose key *is* zero must not be shadowed by a gap).
    pub fn assignment(&self, object: ObjectId) -> Option<CoreId> {
        self.by_object
            .iter()
            .zip(&self.keys)
            .find(|&(&core, &k)| core != UNASSIGNED && k == object)
            .map(|(&core, _)| core)
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.registered
    }

    /// Whether no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.registered == 0
    }
}

impl SchedPolicy for StaticPartition {
    fn name(&self) -> &'static str {
        "static-partition"
    }

    fn register_object(&mut self, id: DenseObjectId, object: &ObjectDescriptor) {
        let idx = id as usize;
        if idx >= self.by_object.len() {
            self.by_object.resize(idx + 1, UNASSIGNED);
            self.keys.resize(idx + 1, 0);
        }
        if self.by_object[idx] == UNASSIGNED {
            self.registered += 1;
        }
        let mut core = self.next % self.cores;
        if self.is_offline(core) {
            core = self.next_live(core);
        }
        self.by_object[idx] = core;
        self.keys[idx] = object.id;
        self.next += 1;
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        match self.by_object.get(ctx.object as usize).copied() {
            Some(core) if core != UNASSIGNED && core != ctx.core => Placement::On(core),
            _ => Placement::Local,
        }
    }

    fn core_down(&mut self, core: CoreId) {
        self.fault.core_down_events += 1;
        if core < 64 {
            self.offline_mask |= 1u64 << core;
        }
        // Static partitioning cannot re-pack; the defined fallback re-pins
        // every object on the dead core to the next live core, keeping the
        // partition static but total.
        let fallback = self.next_live(core);
        if fallback == core {
            return;
        }
        for slot in &mut self.by_object {
            if *slot == core {
                *slot = fallback;
                self.fault.objects_rehomed += 1;
            }
        }
    }

    fn fault_stats(&self) -> PolicyFaultStats {
        self.fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig};
    use o2_sim::{Machine, MachineConfig};

    #[test]
    fn registration_round_robins_across_cores() {
        let mut p = StaticPartition::new(4);
        for id in 0..8u32 {
            p.register_object(
                id,
                &ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x1000, 64),
            );
        }
        assert_eq!(p.len(), 8);
        assert_eq!(p.assignment(0), Some(0));
        assert_eq!(p.assignment(1), Some(1));
        assert_eq!(p.assignment(4), Some(0));
        assert_eq!(p.assignment(7), Some(3));
        assert_eq!(p.assignment(99), None);
    }

    #[test]
    fn key_zero_is_not_shadowed_by_gap_slots() {
        // Dense id 0 is a gap (interned by the engine but never
        // registered); the object with external key 0 registers later
        // under dense id 1 and must still be reported.
        let mut p = StaticPartition::new(4);
        p.register_object(1, &ObjectDescriptor::new(0, 0x4000, 64));
        assert_eq!(p.assignment(0), Some(0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn operations_migrate_to_the_assigned_core() {
        let machine = Machine::new(MachineConfig::quad4());
        let p = StaticPartition::new(4);
        let mut engine = Engine::new(machine, Box::new(p), RuntimeConfig::default());
        // Registration goes through the engine so the policy sees the same
        // dense ids later operations carry.
        engine.register_object(ObjectDescriptor::new(0xA, 0xA, 64)); // -> core 0
        engine.register_object(ObjectDescriptor::new(0xB, 0xB, 64)); // -> core 1
        let op = OpBuilder::annotated(0xB).compute(100).finish();
        engine.spawn(3, Box::new(RepeatBehaviour::new(op, Some(5))));
        engine.run_until_cycles(10_000_000);
        // Every operation executes on the assigned core; with the default
        // runtime the thread stays there after the first migration.
        assert_eq!(engine.machine().counters(1).operations_completed, 5);
        assert!(engine.thread_stats(0).migrations >= 1);
        assert_eq!(engine.machine().counters(3).operations_completed, 0);
    }

    #[test]
    fn core_down_repins_objects_to_the_next_live_core() {
        let mut p = StaticPartition::new(4);
        for id in 0..8u32 {
            p.register_object(
                id,
                &ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x1000, 64),
            );
        }
        // Cores 1's objects (ids 1 and 5) move to core 2; later
        // registrations skip the dead core too.
        p.core_down(1);
        assert_eq!(p.assignment(1), Some(2));
        assert_eq!(p.assignment(5), Some(2));
        assert_eq!(p.assignment(0), Some(0));
        let fs = p.fault_stats();
        assert_eq!(fs.core_down_events, 1);
        assert_eq!(fs.objects_rehomed, 2);
        p.register_object(8, &ObjectDescriptor::new(8, 0x9000, 64)); // rr -> 0
        p.register_object(9, &ObjectDescriptor::new(9, 0xA000, 64)); // rr -> dead 1 -> 2
        assert_eq!(p.assignment(8), Some(0));
        assert_eq!(p.assignment(9), Some(2));
    }

    #[test]
    fn unregistered_objects_run_locally() {
        let machine = Machine::new(MachineConfig::quad4());
        let p = StaticPartition::new(4);
        let mut engine = Engine::new(machine, Box::new(p), RuntimeConfig::default());
        let op = OpBuilder::annotated(0xDEAD).compute(100).finish();
        engine.spawn(2, Box::new(RepeatBehaviour::new(op, Some(5))));
        engine.run_until_cycles(1_000_000);
        assert_eq!(engine.machine().counters(2).operations_completed, 5);
        assert_eq!(engine.thread_stats(0).migrations, 0);
    }
}
