//! Static object partitioning: an oracle-style comparator.
//!
//! Objects are assigned to cores round-robin at registration time and never
//! move. This isolates the value of CoreTime's *dynamic* machinery
//! (event-counter monitoring, rebalancing, decay): on the uniform workload
//! static partitioning performs like CoreTime, but on shifting workloads
//! (Figure 4b) it cannot adapt.

use std::collections::HashMap;

use o2_runtime::{CoreId, ObjectDescriptor, ObjectId, OpContext, Placement, SchedPolicy};

/// Round-robin static partitioning of registered objects across cores.
#[derive(Debug, Clone)]
pub struct StaticPartition {
    cores: u32,
    next: u32,
    assignments: HashMap<ObjectId, CoreId>,
}

impl StaticPartition {
    /// Creates a static partitioner for a machine with `cores` cores.
    pub fn new(cores: u32) -> Self {
        Self {
            cores: cores.max(1),
            next: 0,
            assignments: HashMap::new(),
        }
    }

    /// The core an object was assigned to, if registered.
    pub fn assignment(&self, object: ObjectId) -> Option<CoreId> {
        self.assignments.get(&object).copied()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

impl SchedPolicy for StaticPartition {
    fn name(&self) -> &'static str {
        "static-partition"
    }

    fn register_object(&mut self, object: &ObjectDescriptor) {
        let core = self.next % self.cores;
        self.next += 1;
        self.assignments.insert(object.id, core);
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        match self.assignments.get(&ctx.object) {
            Some(&core) if core != ctx.core => Placement::On(core),
            _ => Placement::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig};
    use o2_sim::{Machine, MachineConfig};

    #[test]
    fn registration_round_robins_across_cores() {
        let mut p = StaticPartition::new(4);
        for id in 0..8u64 {
            p.register_object(&ObjectDescriptor::new(id, id * 0x1000, 64));
        }
        assert_eq!(p.len(), 8);
        assert_eq!(p.assignment(0), Some(0));
        assert_eq!(p.assignment(1), Some(1));
        assert_eq!(p.assignment(4), Some(0));
        assert_eq!(p.assignment(7), Some(3));
        assert_eq!(p.assignment(99), None);
    }

    #[test]
    fn operations_migrate_to_the_assigned_core() {
        let machine = Machine::new(MachineConfig::quad4());
        let mut p = StaticPartition::new(4);
        p.register_object(&ObjectDescriptor::new(0xA, 0xA, 64)); // -> core 0
        p.register_object(&ObjectDescriptor::new(0xB, 0xB, 64)); // -> core 1
        let mut engine = Engine::new(machine, Box::new(p), RuntimeConfig::default());
        let op = OpBuilder::annotated(0xB).compute(100).finish();
        engine.spawn(3, Box::new(RepeatBehaviour::new(op, Some(5))));
        engine.run_until_cycles(10_000_000);
        // Every operation executes on the assigned core; with the default
        // runtime the thread stays there after the first migration.
        assert_eq!(engine.machine().counters(1).operations_completed, 5);
        assert!(engine.thread_stats(0).migrations >= 1);
        assert_eq!(engine.machine().counters(3).operations_completed, 0);
    }

    #[test]
    fn unregistered_objects_run_locally() {
        let machine = Machine::new(MachineConfig::quad4());
        let p = StaticPartition::new(4);
        let mut engine = Engine::new(machine, Box::new(p), RuntimeConfig::default());
        let op = OpBuilder::annotated(0xDEAD).compute(100).finish();
        engine.spawn(2, Box::new(RepeatBehaviour::new(op, Some(5))));
        engine.run_until_cycles(1_000_000);
        assert_eq!(engine.machine().counters(2).operations_completed, 5);
        assert_eq!(engine.thread_stats(0).migrations, 0);
    }
}
