//! # o2-baseline — comparator scheduling policies
//!
//! The paper evaluates CoreTime against the traditional thread scheduler
//! ("Without CoreTime") and argues in Sections 2 and 7 that thread
//! clustering cannot help the directory-lookup workload. This crate
//! provides those comparators, plus a static-partitioning oracle, all as
//! [`o2_runtime::SchedPolicy`] implementations so experiments can swap
//! them freely:
//!
//! * [`ThreadScheduler`] — never migrates; data placement is left to the
//!   hardware. This is the paper's baseline.
//! * [`ThreadClustering`] — sharing-aware thread placement (Tam et al.),
//!   used to substantiate the claim that clustering does not help when all
//!   threads share one working set.
//! * [`StaticPartition`] — objects assigned round-robin at registration and
//!   never moved; isolates the value of CoreTime's dynamic monitoring and
//!   rebalancing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod static_partition;
pub mod thread_sched;

pub use clustering::ThreadClustering;
pub use static_partition::StaticPartition;
pub use thread_sched::ThreadScheduler;
