//! Thread clustering (Tam et al., EuroSys 2007) as a comparator.
//!
//! The related-work section of the paper argues that "thread clustering
//! will not improve performance since all threads look up files in the same
//! directories": clustering co-locates threads with similar working sets on
//! the same chip so they can share a cache, but when every thread shares
//! the *same* working set there is nothing to separate. This policy
//! implements sharing-aware thread placement so the claim can be tested.

use std::collections::{HashMap, HashSet};

use o2_runtime::{
    CoreId, CounterDelta, DenseObjectId, EpochView, OpContext, Placement, PolicyCommand,
    SchedPolicy, ThreadId,
};

/// Sharing-aware thread clustering.
///
/// The policy observes which objects each thread operates on. At every
/// epoch it greedily groups threads with high working-set overlap (Jaccard
/// similarity above a threshold) and rehomes each group onto the cores of a
/// single chip. Operations themselves never migrate.
#[derive(Debug)]
pub struct ThreadClustering {
    chips: u32,
    cores_per_chip: u32,
    similarity_threshold: f64,
    /// Objects each thread touched since the last epoch (dense ids).
    access_sets: HashMap<ThreadId, HashSet<DenseObjectId>>,
    /// Number of rehoming rounds performed (at most one per epoch when the
    /// clustering changes).
    reclusterings: u64,
    /// Last computed placement, to avoid issuing redundant commands.
    last_placement: HashMap<ThreadId, CoreId>,
}

impl ThreadClustering {
    /// Creates a clustering policy for a machine topology.
    pub fn new(chips: u32, cores_per_chip: u32) -> Self {
        Self {
            chips: chips.max(1),
            cores_per_chip: cores_per_chip.max(1),
            similarity_threshold: 0.5,
            access_sets: HashMap::new(),
            reclusterings: 0,
            last_placement: HashMap::new(),
        }
    }

    /// Sets the Jaccard-similarity threshold for putting two threads in the
    /// same cluster.
    pub fn with_similarity_threshold(mut self, threshold: f64) -> Self {
        self.similarity_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Number of times the placement was recomputed and changed.
    pub fn reclusterings(&self) -> u64 {
        self.reclusterings
    }

    fn similarity(a: &HashSet<DenseObjectId>, b: &HashSet<DenseObjectId>) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count() as f64;
        let union = a.union(b).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Greedy clustering: seed a cluster with the first unassigned thread,
    /// pull in every thread whose similarity to the seed crosses the
    /// threshold. Threads with an empty observation window are skipped —
    /// there is no evidence to move them on.
    fn cluster(&self) -> Vec<Vec<ThreadId>> {
        let mut threads: Vec<ThreadId> = self
            .access_sets
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(t, _)| *t)
            .collect();
        threads.sort_unstable();
        let mut unassigned: Vec<ThreadId> = threads;
        let mut clusters = Vec::new();
        while let Some(seed) = unassigned.first().copied() {
            let seed_set = &self.access_sets[&seed];
            let (members, rest): (Vec<ThreadId>, Vec<ThreadId>) =
                unassigned.iter().copied().partition(|t| {
                    *t == seed
                        || Self::similarity(seed_set, &self.access_sets[t])
                            >= self.similarity_threshold
                });
            clusters.push(members);
            unassigned = rest;
        }
        clusters
    }
}

impl SchedPolicy for ThreadClustering {
    fn name(&self) -> &'static str {
        "thread-clustering"
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        self.access_sets
            .entry(ctx.thread)
            .or_default()
            .insert(ctx.object);
        Placement::Local
    }

    fn on_ct_end(&mut self, _ctx: &OpContext<'_>, _delta: &CounterDelta) {}

    fn on_epoch(&mut self, _view: &EpochView<'_>) -> Vec<PolicyCommand> {
        if self.access_sets.is_empty() {
            return Vec::new();
        }
        let clusters = self.cluster();
        // Assign clusters to chips round-robin, and threads within a
        // cluster to that chip's cores round-robin.
        let mut placement: HashMap<ThreadId, CoreId> = HashMap::new();
        for (i, cluster) in clusters.iter().enumerate() {
            let chip = (i as u32) % self.chips;
            for (j, &thread) in cluster.iter().enumerate() {
                let core = chip * self.cores_per_chip + (j as u32) % self.cores_per_chip;
                placement.insert(thread, core);
            }
        }
        // Emit in thread order: HashMap iteration order is randomized per
        // process, and the engine applies rehomings in command order, so
        // an unsorted emission makes the whole run nondeterministic.
        let mut changes: Vec<(ThreadId, CoreId)> = placement
            .iter()
            .filter(|(t, c)| self.last_placement.get(*t) != Some(*c))
            .map(|(&thread, &core)| (thread, core))
            .collect();
        changes.sort_unstable();
        let commands: Vec<PolicyCommand> = changes
            .into_iter()
            .map(|(thread, core)| PolicyCommand::RehomeThread { thread, core })
            .collect();
        if !commands.is_empty() {
            self.reclusterings += 1;
            self.last_placement = placement;
        }
        // Start a fresh observation window.
        for set in self.access_sets.values_mut() {
            set.clear();
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig};
    use o2_sim::{Machine, MachineConfig};

    #[test]
    fn similarity_is_jaccard() {
        let a: HashSet<DenseObjectId> = [1, 2, 3].into_iter().collect();
        let b: HashSet<DenseObjectId> = [2, 3, 4].into_iter().collect();
        let s = ThreadClustering::similarity(&a, &b);
        assert!((s - 0.5).abs() < 1e-9);
        let empty = HashSet::new();
        assert_eq!(ThreadClustering::similarity(&empty, &empty), 0.0);
    }

    #[test]
    fn disjoint_working_sets_form_separate_clusters() {
        let mut p = ThreadClustering::new(4, 4);
        p.access_sets.insert(0, [1, 2].into_iter().collect());
        p.access_sets.insert(1, [1, 2].into_iter().collect());
        p.access_sets.insert(2, [8, 9].into_iter().collect());
        let clusters = p.cluster();
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().any(|c| c.contains(&0) && c.contains(&1)));
        assert!(clusters.iter().any(|c| c == &vec![2]));
    }

    #[test]
    fn shared_working_sets_end_up_in_one_cluster() {
        // The paper's argument: when every thread uses every directory,
        // clustering degenerates to a single cluster.
        let mut p = ThreadClustering::new(4, 4);
        for t in 0..8usize {
            p.access_sets.insert(t, (0..20u32).collect());
        }
        let clusters = p.cluster();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 8);
    }

    #[test]
    fn epoch_emits_rehome_commands_once_until_placement_changes() {
        let machine = Machine::new(MachineConfig::amd16());
        let mut p = ThreadClustering::new(4, 4);
        p.access_sets.insert(0, [1].into_iter().collect());
        p.access_sets.insert(1, [1].into_iter().collect());
        p.access_sets.insert(2, [99].into_iter().collect());
        let deltas = vec![CounterDelta::default(); 16];
        let view = EpochView {
            now: 0,
            machine: &machine,
            deltas: &deltas,
        };
        let cmds = p.on_epoch(&view);
        assert!(!cmds.is_empty());
        assert_eq!(p.reclusterings(), 1);
        // Threads 0 and 1 go to the same chip, thread 2 to a different one.
        let core_of = |cmds: &[PolicyCommand], t: ThreadId| {
            cmds.iter()
                .find_map(|c| match c {
                    PolicyCommand::RehomeThread { thread, core } if *thread == t => Some(*core),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(core_of(&cmds, 0) / 4, core_of(&cmds, 1) / 4);
        assert_ne!(core_of(&cmds, 0) / 4, core_of(&cmds, 2) / 4);
        // Nothing new observed: next epoch issues no commands.
        let view = EpochView {
            now: 1,
            machine: &machine,
            deltas: &deltas,
        };
        assert!(p.on_epoch(&view).is_empty());
    }

    #[test]
    fn end_to_end_threads_are_rehomed_by_the_engine() {
        let machine = Machine::new(MachineConfig::amd16());
        let mut cfg = RuntimeConfig::default();
        cfg.epoch_cycles = 20_000;
        let mut engine = Engine::new(machine, Box::new(ThreadClustering::new(4, 4)), cfg);
        // Two groups of threads with disjoint object sets, spawned
        // interleaved across chips.
        for t in 0..8u32 {
            let obj = if t % 2 == 0 { 0x100 } else { 0x200 };
            let op = OpBuilder::annotated(obj).compute(300).finish();
            engine.spawn(t % 16, Box::new(RepeatBehaviour::new(op, Some(400))));
        }
        engine.run_until_cycles(2_000_000);
        let total_migrations: u64 = (0..16)
            .map(|c| engine.machine().counters(c).migrations_in)
            .sum();
        assert!(total_migrations > 0, "clustering never rehomed any thread");
        assert!(engine.total_ops() > 0);
    }
}
