//! # o2-experiments — the experiment matrix
//!
//! Every claim of the paper is comparative — CoreTime against thread
//! scheduling, thread clustering and static partitioning, swept over
//! working-set sizes, machine shapes and ablation knobs. This crate
//! turns that matrix into data:
//!
//! * [`policy`] — [`PolicyKind`], the closed set of scheduling policies a
//!   scenario can compare;
//! * [`scenario`] — [`Scenario`]: a name, a set of series (one per
//!   policy or configuration), a sweep axis, and a cell function that
//!   builds and runs one `(series, point)` experiment from scratch;
//! * [`registry`] — the static registry covering every figure, table and
//!   ablation of the paper plus `fig_fsmeta` (metadata churn);
//! * [`runner`] — the sharded matrix runner: cells fan out across OS
//!   threads with `std::thread::scope`, each worker building its whole
//!   experiment inside the thread, and results are collected in
//!   cell-index order so the output is bit-identical to a serial run;
//! * [`output`] — plain-text reports (via `o2-metrics`) and a
//!   deterministic JSON rendering.
//!
//! Seeds are derived per cell ([`scenario::derive_cell_seed`]) from the
//! scenario name, the series label and the point index, so every cell's
//! placement and interleaving is a pure function of the cell — never of
//! worker scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod output;
pub mod policy;
pub mod registry;
pub mod runner;
pub mod scenario;

pub use output::{render_json, render_reports};
pub use policy::PolicyKind;
pub use registry::{find_scenario, quick_mode, registry, scale_spec_for, serving_coretime_config};
pub use runner::{run_matrix, MatrixRun, ScenarioResult, SeriesResult};
pub use scenario::{derive_cell_seed, CellResult, Scenario, SeriesDef, SweepPoint};
