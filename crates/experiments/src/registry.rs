//! The static scenario registry: every figure and table of the paper,
//! the Section-6 ablations, and the `fig_fsmeta` metadata-churn
//! comparison, each as a ~30-line registration over the shared
//! spec → policy → run → collect plumbing.

use std::rc::Rc;

use o2_core::CoreTimeConfig;
use o2_metrics::{crossover, mean_speedup_above, SeriesTable};
use o2_sim::{snapshot, AccessKind, AccessOutcome, Machine, MachineConfig, OccupancySnapshot};
use o2_workloads::{
    run_scale, Experiment, FsMetaExperiment, FsMetaSpec, PathLookupGen, Popularity, ScaleSpec,
    WebMix, WorkloadSpec,
};

use crate::policy::PolicyKind;
use crate::scenario::{CellResult, Scenario, SeriesDef, SweepPoint};

/// Whether quick mode was requested via the `O2_QUICK` environment
/// variable (reduced sweeps everywhere).
pub fn quick_mode() -> bool {
    std::env::var("O2_QUICK")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// The total-data-size sweep of Figure 4 (kilobytes). The paper's x-axis
/// runs from a few hundred kilobytes to 20 MB.
fn fig4_sizes_kb(quick: bool) -> Vec<u64> {
    if quick {
        vec![128, 512, 2048, 8192, 16384]
    } else {
        vec![
            64, 128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 20480,
        ]
    }
}

fn kb_points(sizes: &[u64]) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&kb| SweepPoint::scalar(kb, format!("{kb} KB")))
        .collect()
}

/// Builds, runs and measures one lookup-benchmark cell.
fn run_lookup(mut spec: WorkloadSpec, policy: PolicyKind, seed: u64) -> CellResult {
    spec.seed = seed;
    let boxed = policy.build(&spec.machine);
    let m = Experiment::build(spec, boxed).run();
    CellResult::point(m.total_kb(), m.kres_per_sec())
}

fn policy_of(sc: &Scenario, series: usize) -> PolicyKind {
    sc.series[series]
        .policy
        .expect("series runs a scheduling policy")
}

// ---- fig2 ------------------------------------------------------------

fn fig2_cell(sc: &Scenario, se: usize, _pt: usize, seed: u64) -> CellResult {
    let mut spec = WorkloadSpec::paper_default(20);
    spec.machine = MachineConfig::quad4();
    spec.warmup_ops = 6_000;
    spec.measure_cycles = 2_000_000;
    spec.seed = seed;
    let boxed = policy_of(sc, se).build(&spec.machine);
    let mut exp = Experiment::build(spec, boxed);
    let _ = exp.run();
    let regions = exp.directory_regions();
    let snap = snapshot(exp.engine().machine(), &regions);
    CellResult {
        x: 1.0,
        y: snap.distinct_on_chip() as f64,
        lines: describe_occupancy(&snap, &sc.series[se].label),
    }
}

fn describe_occupancy(snap: &OccupancySnapshot, label: &str) -> Vec<String> {
    let render = |dirs: &[u64]| {
        if dirs.is_empty() {
            "(none)".to_string()
        } else {
            dirs.iter()
                .map(|d| format!("dir{d}"))
                .collect::<Vec<_>>()
                .join(" ")
        }
    };
    let mut lines = vec![format!("--- {label} ---")];
    for core in 0..snap.private.len() as u32 {
        lines.push(format!(
            "core {core} private caches (L1+L2): {}",
            render(&snap.resident_in_core(core))
        ));
    }
    for chip in 0..snap.l3.len() as u32 {
        lines.push(format!(
            "chip {chip} shared L3: {}",
            render(&snap.resident_in_l3(chip))
        ));
    }
    lines.push(format!("off-chip: {}", render(&snap.off_chip)));
    lines.push(format!(
        "distinct directories on-chip: {} of 20, duplication factor {:.2}",
        snap.distinct_on_chip(),
        snap.duplication_factor()
    ));
    lines
}

fn fig2() -> Scenario {
    Scenario {
        name: "fig2",
        title: "Figure 2: cache contents under a thread scheduler vs the O2 scheduler",
        description: "Cache occupancy: directory duplication with and without CoreTime",
        x_label: "Snapshot (y = distinct directories on-chip)",
        params: vec![
            ("machine".into(), "1 chip x 4 cores".into()),
            ("directories".into(), "20 of 1000 entries".into()),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::ThreadScheduler),
            SeriesDef::policy(PolicyKind::CoreTime),
        ],
        points: vec![SweepPoint::ordinal(0, 0, "occupancy snapshot")],
        payload: 0,
        run: fig2_cell,
        summarize: Some(|_, table| {
            vec![format!(
                "Paper's claim: the thread scheduler keeps ~half the directories \
                 on-chip (duplicated); the O2 scheduler keeps all of them, \
                 unduplicated. Measured distinct-on-chip: thread scheduler {}, \
                 O2 {}.",
                table.series[0].points[0].1, table.series[1].points[0].1
            )]
        }),
    }
}

// ---- fig4a / fig4b ---------------------------------------------------

fn fig4a_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let spec = WorkloadSpec::for_total_kb(sc.points[pt].value);
    run_lookup(spec, policy_of(sc, se), seed)
}

fn fig4b_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let spec = WorkloadSpec::for_total_kb(sc.points[pt].value).oscillating();
    run_lookup(spec, policy_of(sc, se), seed)
}

fn fig4a_summary(_sc: &Scenario, table: &SeriesTable) -> Vec<String> {
    let (with, without) = (&table.series[0], &table.series[1]);
    let l3_kb = MachineConfig::amd16().l3.size_bytes / 1024;
    let mut notes = Vec::new();
    if let Some(s) = mean_speedup_above(with, without, (2 * l3_kb) as f64) {
        notes.push(format!(
            "mean CoreTime speedup beyond one chip's L3 ({} KB): {s:.2}x (paper: 2-3x)",
            2 * l3_kb
        ));
    }
    if let Some(x) = crossover(with, without, 1.5) {
        notes.push(format!(
            "CoreTime pulls ahead (>=1.5x) from ~{x:.0} KB onwards (paper: just above 2 MB)"
        ));
    }
    notes
}

fn fig4a(quick: bool) -> Scenario {
    Scenario {
        name: "fig4a",
        title: "Figure 4(a): uniform directory popularity (1000s of resolutions/sec)",
        description: "Lookup throughput vs total data size, uniform popularity",
        x_label: "Total data size (KB)",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz".into(),
            ),
            ("entries per directory".into(), "1000".into()),
            ("entry size".into(), "32 bytes".into()),
            ("threads".into(), "1 per core (16)".into()),
            ("popularity".into(), "uniform".into()),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points: kb_points(&fig4_sizes_kb(quick)),
        payload: 0,
        run: fig4a_cell,
        summarize: Some(fig4a_summary),
    }
}

fn fig4b(quick: bool) -> Scenario {
    Scenario {
        name: "fig4b",
        title: "Figure 4(b): oscillating directory popularity (1000s of resolutions/sec)",
        description: "Lookup throughput vs total data size, oscillating active set",
        x_label: "Total data size (KB)",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz".into(),
            ),
            ("entries per directory".into(), "1000".into()),
            (
                "popularity".into(),
                "active set oscillates between all directories and 1/16 of them".into(),
            ),
            ("threads".into(), "1 per core (16)".into()),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points: kb_points(&fig4_sizes_kb(quick)),
        payload: 0,
        run: fig4b_cell,
        summarize: Some(|_, table| {
            match mean_speedup_above(&table.series[0], &table.series[1], 2048.0) {
                Some(s) => vec![format!(
                    "mean CoreTime speedup beyond 2 MB: {s:.2}x (paper: more than 2x for most sizes)"
                )],
                None => Vec::new(),
            }
        }),
    }
}

// ---- ablations -------------------------------------------------------

fn ablation_migration_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let mut spec = WorkloadSpec::for_total_kb(sc.payload);
    spec.runtime = spec.runtime.with_migration_cost(sc.points[pt].value);
    let policy = policy_of(sc, se);
    // The thread-scheduler baseline never migrates, so its printed
    // parameter line promises a value independent of the x axis: give
    // every baseline cell the point-0 seed so the series is flat by
    // construction instead of wobbling with per-point seed noise.
    let seed = if policy == PolicyKind::ThreadScheduler {
        crate::scenario::derive_cell_seed(sc.name, &sc.series[se].label, 0)
    } else {
        seed
    };
    let r = run_lookup(spec, policy, seed);
    // x is the migration cost, not the (constant) working-set size.
    CellResult::point(sc.points[pt].x, r.y)
}

fn ablation_migration(quick: bool) -> Scenario {
    let costs: Vec<u64> = if quick {
        vec![500, 2000, 8000]
    } else {
        vec![250, 500, 1000, 2000, 4000, 8000, 16000, 32000]
    };
    Scenario {
        name: "ablation_migration",
        title: "Ablation A: sensitivity to thread-migration cost (8 MB working set)",
        description: "CoreTime benefit vs one-way migration cost (Section 6.1)",
        x_label: "One-way migration cost (cycles)",
        params: vec![
            ("total data size".into(), "8192 KB".into()),
            (
                "baseline".into(),
                "thread scheduler, independent of migration cost".into(),
            ),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points: costs
            .iter()
            .map(|&c| SweepPoint::scalar(c, format!("{c} cycles")))
            .collect(),
        payload: 8192,
        run: ablation_migration_cell,
        summarize: Some(|_, _| {
            vec![
                "Cheaper migration widens CoreTime's advantage; expensive migration \
                 erodes it, as Section 6.1 argues."
                    .into(),
            ]
        }),
    }
}

/// The machine shapes of the hardware ablation, in sweep order.
fn hardware_configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("amd16 (4x4)", MachineConfig::amd16()),
        ("8 chips x 4 cores", {
            let mut c = MachineConfig::amd16();
            c.chips = 8;
            c
        }),
        (
            "future 4x8 (bigger caches, slower DRAM)",
            MachineConfig::future(4, 8),
        ),
        ("future 8x8", MachineConfig::future(8, 8)),
    ]
}

fn ablation_hardware_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let mut spec = WorkloadSpec::for_total_kb(sc.payload);
    spec.machine = hardware_configs()[sc.points[pt].value as usize].1.clone();
    let r = run_lookup(spec, policy_of(sc, se), seed);
    CellResult::point(sc.points[pt].x, r.y)
}

fn ablation_hardware(quick: bool) -> Scenario {
    let total_kb: u64 = if quick { 8192 } else { 12288 };
    let mut params = vec![("total data size".into(), format!("{total_kb} KB"))];
    let points = hardware_configs()
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            params.push(("machine".into(), format!("[{}] {name}", i + 1)));
            SweepPoint::ordinal(i, i as u64, *name)
        })
        .collect();
    Scenario {
        name: "ablation_hardware",
        title: "Ablation B: future multicores (more cores, larger caches, relatively slower DRAM)",
        description: "CoreTime advantage across machine shapes (Section 6.1)",
        x_label: "Machine (index)",
        params,
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
        ],
        points,
        payload: total_kb,
        run: ablation_hardware_cell,
        summarize: Some(|_, _| {
            vec![
                "The CoreTime advantage grows with core count and cache capacity, \
                 as Section 6.1 predicts."
                    .into(),
            ]
        }),
    }
}

fn ablation_clustering_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    run_lookup(
        WorkloadSpec::for_total_kb(sc.points[pt].value),
        policy_of(sc, se),
        seed,
    )
}

fn ablation_clustering() -> Scenario {
    Scenario {
        name: "ablation_clustering",
        title: "Ablation D: thread clustering vs object scheduling (uniform lookups, 8 MB)",
        description: "Thread clustering cannot help when every thread shares the working set",
        x_label: "Total data size (KB)",
        params: vec![("total data size".into(), "8192 KB".into())],
        series: vec![
            SeriesDef::policy(PolicyKind::ThreadScheduler),
            SeriesDef::policy(PolicyKind::ThreadClustering),
            SeriesDef::policy(PolicyKind::StaticPartition),
            SeriesDef::policy(PolicyKind::CoreTime),
        ],
        points: vec![SweepPoint::scalar(8192, "8192 KB")],
        payload: 0,
        run: ablation_clustering_cell,
        summarize: Some(|_, table| {
            let y = |i: usize| table.series[i].points[0].1;
            vec![
                format!(
                    "thread scheduler {:.0}, thread clustering {:.0}, static partition {:.0}, \
                     CoreTime {:.0} kres/s",
                    y(0),
                    y(1),
                    y(2),
                    y(3)
                ),
                "Thread clustering cannot help because every thread shares the same \
                 working set (Section 2); scheduling objects does."
                    .into(),
            ]
        }),
    }
}

fn ablation_replication_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let spec =
        WorkloadSpec::for_total_kb(sc.points[pt].value).with_popularity(Popularity::Hotspot {
            hot_dirs: 4,
            hot_fraction: 0.85,
        });
    run_lookup(spec, policy_of(sc, se), seed)
}

fn ablation_replication() -> Scenario {
    Scenario {
        name: "ablation_replication",
        title: "Ablation C: read-only replication on a hotspot workload",
        description: "Replicating hot read-only directories vs serializing on their owners",
        x_label: "Total data size (KB)",
        params: vec![
            ("total data size".into(), "4096 KB".into()),
            ("hotspot".into(), "85% of lookups hit 4 directories".into()),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::ThreadScheduler),
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::labelled(
                PolicyKind::CoreTimeExtensions,
                "With CoreTime + replication",
            ),
        ],
        points: vec![SweepPoint::scalar(4096, "4096 KB")],
        payload: 0,
        run: ablation_replication_cell,
        summarize: Some(|_, table| {
            let y = |i: usize| table.series[i].points[0].1;
            vec![format!(
                "baseline {:.0}, CoreTime {:.0}, CoreTime+replication {:.0} kres/s — \
                 replication relieves the serialization at the hot directories' owning cores",
                y(0),
                y(1),
                y(2)
            )]
        }),
    }
}

fn ablation_replacement_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let spec = WorkloadSpec::for_total_kb(sc.points[pt].value)
        .with_popularity(Popularity::Zipf { exponent: 0.9 });
    run_lookup(spec, policy_of(sc, se), seed)
}

fn ablation_replacement(quick: bool) -> Scenario {
    let sizes: Vec<u64> = if quick {
        vec![20480]
    } else {
        vec![16384, 20480, 24576]
    };
    Scenario {
        name: "ablation_replacement",
        title: "Ablation E: working sets beyond aggregate on-chip memory (Zipf popularity)",
        description: "Frequency-based replacement once the working set no longer fits on-chip",
        x_label: "Total data size (KB)",
        params: vec![
            ("popularity".into(), "Zipf, exponent 0.9".into()),
            ("aggregate on-chip memory".into(), "16 MB".into()),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::ThreadScheduler),
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::labelled(
                PolicyKind::CoreTimeExtensions,
                "With CoreTime + frequency replacement",
            ),
        ],
        points: kb_points(&sizes),
        payload: 0,
        run: ablation_replacement_cell,
        summarize: Some(|_, _| {
            vec![
                "Frequency-based replacement keeps the hot head of the Zipf distribution \
                 assigned on-chip once the total working set no longer fits (Section 6.2)."
                    .into(),
            ]
        }),
    }
}

// ---- table_latency ---------------------------------------------------

/// The access classes of the Section-5 table, with the paper's cycles.
const LATENCY_ROWS: [(&str, f64); 6] = [
    ("L1 hit", 3.0),
    ("L2 hit", 14.0),
    ("L3 hit", 75.0),
    ("remote cache, same chip", 127.0),
    ("most distant DRAM", 336.0),
    ("thread migration (round trip)", 2000.0),
];

/// Measures the cost of one access class by constructing the
/// corresponding cache state explicitly.
fn measured_latency(class: usize) -> u64 {
    let mut cfg = MachineConfig::amd16();
    cfg.contention = o2_sim::ContentionModel::None;
    let mut m = Machine::new(cfg);
    let r = m.memory_mut().alloc_on(64, 0, 0);
    let line = m.line_of(r.addr);
    match class {
        0 => {
            m.access_line(0, line, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert_eq!(o, AccessOutcome::L1Hit);
            c
        }
        1 => {
            m.access_line(0, line, AccessKind::Read);
            // Displace the line from the L1 with filler, then re-touch.
            let filler = m.memory_mut().alloc_on(128 * 1024, 0, 1);
            m.access(0, filler.addr, filler.size, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            // The line may have been displaced to the L3 victim cache by
            // the filler; report whichever private-hierarchy cost was
            // observed.
            assert!(matches!(o, AccessOutcome::L2Hit | AccessOutcome::L3Hit));
            c
        }
        2 => {
            m.access_line(0, line, AccessKind::Read);
            // Push the line out of the private caches into the chip L3.
            let filler = m.memory_mut().alloc_on(1024 * 1024, 0, 1);
            m.access(0, filler.addr, filler.size, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert!(o.is_private_miss());
            c
        }
        3 => {
            m.access_line(1, line, AccessKind::Read);
            let (c, o) = m.access_line(0, line, AccessKind::Read);
            assert!(matches!(o, AccessOutcome::RemoteCache { hops: 0, .. }));
            c
        }
        4 => {
            // Home chip 0; access from a core on the diagonally opposite
            // chip so the fill crosses two hops.
            let far = m.memory_mut().alloc_on(64, 0, 2);
            let far_line = m.line_of(far.addr);
            let (c, o) = m.access_line(12, far_line, AccessKind::Read);
            assert!(o.is_dram());
            c
        }
        _ => measured_migration_round_trip(),
    }
}

/// Measures the end-to-end cost of migrating a thread out and back by
/// running one empty annotated operation assigned to a remote core.
fn measured_migration_round_trip() -> u64 {
    use o2_runtime::{Engine, OpBuilder, RepeatBehaviour, RuntimeConfig, StaticPolicy};
    let mut mcfg = MachineConfig::amd16();
    mcfg.contention = o2_sim::ContentionModel::None;
    let machine = Machine::new(mcfg);
    let mut rcfg = RuntimeConfig::default();
    rcfg.return_home_after_op = true;
    let mut policy = StaticPolicy::new();
    policy.assign(0x1000, 1);
    let mut engine = Engine::new(machine, Box::new(policy), rcfg);
    let op = OpBuilder::annotated(0x1000).finish();
    engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(1))));
    engine.run_until_cycles(1_000_000);
    engine.thread_stats(0).migration_cycles
}

fn table_latency_cell(sc: &Scenario, se: usize, pt: usize, _seed: u64) -> CellResult {
    let class = sc.points[pt].value as usize;
    // Series 0 quotes the paper's table; series 1 measures the simulator.
    let y = if se == 0 {
        LATENCY_ROWS[class].1
    } else {
        measured_latency(class) as f64
    };
    CellResult::point(sc.points[pt].x, y)
}

fn table_latency() -> Scenario {
    Scenario {
        name: "table_latency",
        title: "Section 5 hardware parameters: paper vs simulator (cycles)",
        description: "Memory-access latencies and the migration round trip vs the paper's table",
        x_label: "Access class (1=L1, 2=L2, 3=L3, 4=remote same-chip, 5=far DRAM, 6=migration)",
        params: vec![("machine".into(), "4 chips x 4 cores (AMD-like)".into())],
        series: vec![
            SeriesDef::fixed("Paper (cycles)"),
            SeriesDef::fixed("Measured (cycles)"),
        ],
        points: LATENCY_ROWS
            .iter()
            .enumerate()
            .map(|(i, (label, _))| SweepPoint::ordinal(i, i as u64, *label))
            .collect(),
        payload: 0,
        run: table_latency_cell,
        summarize: Some(|_, _| {
            vec![
                "Rows 1-5 are the memory-system latencies quoted in Section 5; row 6 is \
                 the measured cost of migrating a thread to another core and back."
                    .into(),
            ]
        }),
    }
}

// ---- fig_fsmeta ------------------------------------------------------

fn fig_fsmeta_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let mut spec = FsMetaSpec::paper_default(sc.points[pt].value as u32);
    spec.seed = seed;
    let boxed = policy_of(sc, se).build(&spec.machine);
    let m = FsMetaExperiment::build(spec, boxed).run();
    CellResult::point(m.total_kb(), m.kres_per_sec())
}

fn fig_fsmeta(quick: bool) -> Scenario {
    let dir_counts: Vec<u64> = if quick {
        vec![1024, 4096]
    } else {
        vec![512, 1024, 2048, 4096, 8192]
    };
    Scenario {
        name: "fig_fsmeta",
        title:
            "fsmeta: metadata churn under CoreTime vs every baseline (1000s of metadata ops/sec)",
        description:
            "Does operation migration still win when directories are written, not just read?",
        x_label: "Total metadata size (KB)",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz".into(),
            ),
            ("directories".into(), "many small: 64 slots, 32 live".into()),
            (
                "op mix".into(),
                "40% create, 30% unlink, 14% rename, 14% lookup, 2% directory retire".into(),
            ),
            ("threads".into(), "1 per core (16)".into()),
        ],
        series: PolicyKind::ALL
            .iter()
            .copied()
            .map(SeriesDef::policy)
            .collect(),
        points: dir_counts
            .iter()
            .map(|&n| SweepPoint::scalar(n, format!("{n} directories")))
            .collect(),
        payload: 0,
        run: fig_fsmeta_cell,
        summarize: Some(|_, table| {
            // Series 0 is CoreTime, series 2 the thread scheduler.
            let mut notes = Vec::new();
            if let Some(s) = mean_speedup_above(&table.series[0], &table.series[2], 2048.0) {
                let verdict = if s >= 1.0 {
                    "operation migration still pays off when the directories are written"
                } else {
                    "operation migration does NOT pay off here: metadata ops over these \
                     small directories are short relative to the ~2000-cycle migration, \
                     exactly the limit Section 6.1 names"
                };
                notes.push(format!(
                    "mean CoreTime speedup over the thread scheduler beyond 2 MB of \
                     metadata: {s:.2}x — {verdict}"
                ));
            }
            notes
        }),
    }
}

// ---- fig_fault -------------------------------------------------------

/// The three fault schedules of the robustness figure. Times are absolute
/// virtual cycles; the default run warms up for roughly 1–2M cycles, so
/// an edge at 800K–1.5M lands once objects are assigned and stays active
/// through the 3M-cycle measurement window.
fn fault_schedules() -> Vec<(&'static str, o2_sim::FaultPlan)> {
    use o2_sim::FaultPlan;
    vec![
        (
            "offline core 3",
            FaultPlan::empty().offline_core(1_500_000, 3),
        ),
        (
            "6x slowdown on core 2",
            FaultPlan::empty().slow_core(800_000, 2, 600, 0),
        ),
        (
            "lossy interconnect (25% loss, +40 cyc/hop)",
            FaultPlan::empty().degrade_interconnect(800_000, 250, 40, 0),
        ),
    ]
}

fn fig_fault_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let policy = policy_of(sc, se);
    let mut spec = WorkloadSpec::for_total_kb(sc.payload);
    spec.seed = seed;
    // The zero-fault twin: the same cell (same seed, same machine, same
    // policy) with an empty plan. "Throughput retained" is the faulted
    // run as a percentage of this.
    let healthy = {
        let boxed = policy.build(&spec.machine);
        Experiment::build(spec.clone(), boxed).run().kres_per_sec()
    };
    let plan = fault_schedules()[pt].1.clone();
    let boxed = policy.build(&spec.machine);
    let mut exp = Experiment::build(spec.with_fault_plan(plan), boxed);
    let faulted = exp.run().kres_per_sec();
    let retained = if healthy > 0.0 {
        100.0 * faulted / healthy
    } else {
        0.0
    };
    let sched = exp.engine().sched_stats();
    let fs = exp.engine().policy().fault_stats();
    CellResult {
        x: sc.points[pt].x,
        y: retained,
        lines: vec![format!(
            "{} / {}: healthy {healthy:.0} kres/s, faulted {faulted:.0} kres/s, \
             retained {retained:.1}% | engine: faults {} offlined {} slowed {} \
             retries {} failures {} repinned {} recovery {} cyc | policy: down {} \
             rehomed {} stranded {} avoids {}",
            sc.series[se].label,
            sc.points[pt].label,
            sched.faults_applied,
            sched.cores_offlined,
            sched.cores_slowed,
            sched.migration_retries,
            sched.migration_failures,
            sched.threads_repinned,
            sched.recovery_cycles,
            fs.core_down_events,
            fs.objects_rehomed,
            fs.objects_stranded,
            fs.degraded_avoids,
        )],
    }
}

fn fig_fault(quick: bool) -> Scenario {
    let total_kb: u64 = if quick { 2048 } else { 8192 };
    Scenario {
        name: "fig_fault",
        title: "Robustness: throughput retained under injected faults (% of the zero-fault run)",
        description: "CoreTime vs every baseline under core offlining, core slowdown and \
                      interconnect loss",
        x_label: "Fault schedule (1=offline core, 2=slow core, 3=lossy interconnect)",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz".into(),
            ),
            ("total data size".into(), format!("{total_kb} KB")),
            (
                "metric".into(),
                "faulted throughput / zero-fault throughput of the same cell, in %".into(),
            ),
        ],
        series: PolicyKind::ALL
            .iter()
            .copied()
            .map(SeriesDef::policy)
            .collect(),
        points: fault_schedules()
            .iter()
            .enumerate()
            .map(|(i, (name, _))| SweepPoint::ordinal(i, i as u64, *name))
            .collect(),
        payload: total_kb,
        run: fig_fault_cell,
        summarize: Some(|_, table| {
            // Series 0 is CoreTime, series 2 the thread scheduler.
            let mut notes = Vec::new();
            for (pt, label) in ["offline", "slowdown", "interconnect loss"]
                .iter()
                .enumerate()
            {
                let ct = table.series[0].points[pt].1;
                let ts = table.series[2].points[pt].1;
                notes.push(format!(
                    "{label}: CoreTime retains {ct:.1}%, thread scheduler {ts:.1}%{}",
                    if ct > ts {
                        " — CoreTime's re-homing/avoidance wins"
                    } else {
                        ""
                    }
                ));
            }
            notes
        }),
    }
}

// ---- fig_scale -------------------------------------------------------

/// The scale-tier specification shared by `fig_scale` and the scale
/// bench: the machine and its on-chip budget stay fixed while the object
/// count sweeps three orders of magnitude past it.
pub fn scale_spec_for(n_objects: u64, seed: u64) -> ScaleSpec {
    let mut spec = ScaleSpec::new(n_objects);
    spec.machine = MachineConfig::amd16();
    // 4 KB objects: a full read spans 64 lines, so an off-chip object
    // costs enough that the monitor's verdict actually fires and the
    // policies differentiate — 64 B objects are too cheap to assign.
    spec.object_size = 4096;
    spec.zipf_exponent = 1.1;
    spec.compute_cycles = 150;
    spec.warmup_ops = 2_000;
    spec.measure_cycles = 2_000_000;
    // The scale tier models a read-mostly store (caches, key-value front
    // ends): 95% of operations on an object are reads, so the Zipf head
    // is exactly the shape replica serving exists for. A read_fraction of
    // 0 reproduces the pre-mix all-write stream bit-for-bit.
    spec.read_fraction = 0.95;
    spec.seed = seed;
    spec
}

/// The CoreTime configuration of the replica-serving scenarios
/// (`fig_scale`, `fig_web` and the scale bench): measured-read-fraction
/// serving on top of the kind's usual extension set. `max_replicas`
/// equals the machine's core count so the hottest object can earn a local
/// copy everywhere; non-CoreTime kinds ignore the configuration.
/// `n_objects` scales the promotion floor — see below.
pub fn serving_coretime_config(kind: PolicyKind, n_objects: u64) -> CoreTimeConfig {
    let mut cfg = match kind {
        PolicyKind::CoreTimeExtensions => CoreTimeConfig::with_all_extensions(),
        _ => CoreTimeConfig::default(),
    };
    cfg.enable_replication = true;
    cfg.serve_from_replicas = true;
    cfg.max_replicas = 16;
    // The scale tier's epochs see a few hundred ops total, so the Zipf
    // head musters tens of ops per epoch, not the hint-planner's 64: a
    // much lower heat unit lets promotion spread the head across the
    // machine in one epoch. The promote gate sits below the default 0.90
    // because the per-op EWMA dips to ~0.67 right after each write even
    // on a 95%-read object; 0.60/0.40 keeps the hysteresis band while
    // tolerating that jitter, so a lone write costs one invalidation but
    // not a round of migrations before the demand-fill re-qualifies.
    //
    // The floor scales with the object count: a Zipf(1.1) head over 1e7
    // objects is colder and wider than over 1e5 — per-object epoch heat
    // shrinks while the number of objects clearing a fixed floor grows,
    // so floor 2 over-fills the replica set with barely-warm objects and
    // churns it. Raising the floor with the population keeps promotion
    // pinned to the genuinely hot head.
    cfg.replication_hot_ops = match n_objects {
        n if n < 1_000_000 => 2,
        n if n < 10_000_000 => 4,
        _ => 8,
    };
    cfg.replica_promote_read_fraction = 0.60;
    cfg.replica_demote_read_fraction = 0.40;
    cfg
}

fn fig_scale_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let n = sc.points[pt].value;
    let spec = scale_spec_for(n, seed);
    let machine = spec.machine.clone();
    let kind = policy_of(sc, se);
    let policy = kind.build_with_coretime_config(&machine, serving_coretime_config(kind, n));
    let m = run_scale(spec, policy);
    let lat = m.service_latency;
    let r = m.replication;
    CellResult {
        x: n as f64,
        y: m.kops_per_sec(),
        lines: vec![format!(
            "{} / {}: {:.0} kops/s, service latency p50 {} p99 {} p999 {} max {} cyc \
             over {} ops, footprint {:.1} MB = {:.1} B/object, {} migrations | \
             replicas: promoted {} demoted {} invalidated {} served {}",
            sc.series[se].label,
            sc.points[pt].label,
            m.kops_per_sec(),
            lat.p50,
            lat.p99,
            lat.p999,
            lat.max,
            lat.count,
            m.footprint_bytes as f64 / (1024.0 * 1024.0),
            m.bytes_per_object(),
            m.migrations,
            r.promotions,
            r.demotions,
            r.invalidations,
            r.replica_served,
        )],
    }
}

fn fig_scale(quick: bool) -> Scenario {
    let counts: Vec<u64> = if quick {
        vec![10_000, 100_000]
    } else {
        vec![10_000, 100_000, 1_000_000, 10_000_000]
    };
    Scenario {
        name: "fig_scale",
        title: "Scale: throughput and tail latency from 1e4 to 1e7 objects, fixed on-chip budget",
        description: "Does per-object bookkeeping stay flat when the object count outgrows the \
                      on-chip caches by three orders of magnitude?",
        x_label: "Objects",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz, budget fixed".into(),
            ),
            (
                "objects".into(),
                "4 KB each, Zipf(1.1) popularity, 95% reads".into(),
            ),
            ("threads".into(), "1 per core (16), closed loop".into()),
            (
                "replication".into(),
                "CoreTime serves reads from replicas (measured read fraction, \
                 write-invalidate, rotated selection)"
                    .into(),
            ),
            (
                "latency".into(),
                "streaming sketch percentiles (ct_start->ct_end), no per-op samples".into(),
            ),
        ],
        series: PolicyKind::ALL
            .iter()
            .copied()
            .map(SeriesDef::policy)
            .collect(),
        points: counts
            .iter()
            .map(|&n| SweepPoint::scalar(n, format!("{n} objects")))
            .collect(),
        payload: 0,
        run: fig_scale_cell,
        summarize: Some(|_, table| {
            // Series 0 is CoreTime, series 2 the thread scheduler.
            let mut notes = Vec::new();
            let ct = &table.series[0].points;
            if let (Some(first), Some(last)) = (ct.first(), ct.last()) {
                if first.1 > 0.0 {
                    notes.push(format!(
                        "CoreTime retains {:.1}% of its {:.0}-object throughput at {:.0} objects",
                        100.0 * last.1 / first.1,
                        first.0,
                        last.0
                    ));
                }
            }
            let ts = &table.series[2].points;
            let ratios: Vec<(f64, f64)> = ct
                .iter()
                .zip(ts.iter())
                .filter(|(_, t)| t.1 > 0.0)
                .map(|(c, t)| (c.0, c.1 / t.1))
                .collect();
            if !ratios.is_empty() {
                let line = ratios
                    .iter()
                    .map(|(x, r)| format!("{r:.2}x at {x:.0}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                notes.push(format!(
                    "CoreTime vs the thread scheduler across the sweep: {line} objects"
                ));
                // The million-object cell is where the pre-replication
                // policy collapsed to ~0.4x; the verdict keys off it (or
                // the largest cell the sweep reaches in quick mode).
                let (x, ratio) = ratios
                    .iter()
                    .copied()
                    .find(|&(x, _)| x >= 1e6)
                    .unwrap_or(*ratios.last().unwrap());
                let verdict = if ratio >= 1.0 {
                    "serving the read-mostly head from replicas keeps the hot \
                     objects parallel, so migration pays even at this scale"
                } else {
                    "migrating every operation on a Zipf head serialises the hot \
                     objects' home cores — the very limit Sections 6.1/6.2 name, \
                     which replica serving is meant to lift"
                };
                notes.push(format!(
                    "at {x:.0} objects CoreTime runs at {ratio:.2}x the thread \
                     scheduler — {verdict}"
                ));
            }
            notes
        }),
    }
}

// ---- fig_web ---------------------------------------------------------

/// The web mix shared by every `fig_web` cell: 1 request in 10 is CGI
/// (write-kind final lookup plus a 4 000-cycle script burst), the rest are
/// static path resolutions made of read-kind lookups.
fn fig_web_mix() -> WebMix {
    WebMix {
        cgi_fraction: 0.10,
        cgi_compute_cycles: 4_000,
    }
}

fn fig_web_cell(sc: &Scenario, se: usize, pt: usize, seed: u64) -> CellResult {
    let kind = policy_of(sc, se);
    let mut spec = WorkloadSpec::for_total_kb(sc.points[pt].value);
    spec.seed = seed;
    let boxed = kind.build_with_coretime_config(
        &spec.machine,
        serving_coretime_config(kind, u64::from(spec.n_dirs)),
    );
    let mix = fig_web_mix();
    let mut exp = Experiment::build_with(spec, boxed, move |spec, dirs, t| {
        Box::new(PathLookupGen::new_mixed(
            Rc::clone(dirs),
            spec.lookup_cost,
            8, // hot top-level directories (the site's root sections)
            3, // components per path: /section/dir/file
            mix,
            spec.seed.wrapping_add(u64::from(t) * 0x9E37_79B9),
            None,
        ))
    });
    let m = exp.run();
    let r = exp.engine().policy().replication_stats();
    CellResult {
        x: m.total_kb(),
        y: m.kres_per_sec(),
        lines: vec![format!(
            "{} / {}: {:.0} kres/s, {} migrations, lock contention {} | \
             replicas: promoted {} demoted {} invalidated {} served {}",
            sc.series[se].label,
            sc.points[pt].label,
            m.kres_per_sec(),
            m.migrations,
            m.lock_contention,
            r.promotions,
            r.demotions,
            r.invalidations,
            r.replica_served,
        )],
    }
}

fn fig_web(quick: bool) -> Scenario {
    let sizes_kb: Vec<u64> = if quick {
        vec![512, 4096]
    } else {
        vec![512, 2048, 8192, 16384]
    };
    Scenario {
        name: "fig_web",
        title: "Web server: mixed static/CGI path resolution, CoreTime vs every baseline",
        description: "Multi-component path lookups over hot root directories — 90% static \
                      (read-kind) requests and 10% CGI (write-kind final component plus a \
                      script burst); the traffic the paper's Veal-and-Foong motivation \
                      describes",
        x_label: "Total directory data (KB)",
        params: vec![
            (
                "machine".into(),
                "4 chips x 4 cores (AMD-like), 2 GHz".into(),
            ),
            (
                "requests".into(),
                "3-component paths over 8 hot roots; 10% CGI with a 4 000-cycle script".into(),
            ),
            (
                "replication".into(),
                "CoreTime serves static lookups from replicas of the hot roots".into(),
            ),
        ],
        series: PolicyKind::ALL
            .iter()
            .copied()
            .map(SeriesDef::policy)
            .collect(),
        points: kb_points(&sizes_kb),
        payload: 0,
        run: fig_web_cell,
        summarize: Some(|_, table| {
            // Series 0 is CoreTime, series 2 the thread scheduler.
            let mut notes = Vec::new();
            if let (Some(ct), Some(ts)) =
                (table.series[0].points.last(), table.series[2].points.last())
            {
                if ts.1 > 0.0 {
                    notes.push(format!(
                        "at {:.0} KB CoreTime resolves paths at {:.2}x the thread \
                         scheduler under the static/CGI mix",
                        ct.0,
                        ct.1 / ts.1
                    ));
                }
            }
            notes
        }),
    }
}

// ---- fig_native ------------------------------------------------------

/// Workload seed shared by every `fig_native` series *and* the sim twin
/// in its summary: measured-vs-predicted is only meaningful when both
/// sides run the identical op stream.
const NATIVE_SEED: u64 = 0x0005_ca1e_d0c5;

/// The native lookup spec every `fig_native` cell runs: a Zipf(1.1) head
/// over 64 paper-sized directories (1,000 entries — 2 MB of images, past
/// any per-core budget, so partitioning the directories across caches is
/// exactly what the paper says should pay), 5% writes.
fn fig_native_spec() -> o2_native::NativeLookupSpec {
    let mut spec = o2_native::NativeLookupSpec::paper_default(64, NATIVE_SEED);
    spec.zipf_exponent = Some(1.1);
    spec.write_fraction = 0.05;
    spec
}

fn fig_native_cell(sc: &Scenario, se: usize, pt: usize, _seed: u64) -> CellResult {
    let workers = sc.points[pt].value as usize;
    let kind = policy_of(sc, se);
    let machine = o2_native::native_machine_config(workers);
    let mut cfg = o2_native::NativeConfig::new(workers);
    cfg.machine = machine.clone();
    cfg.warmup_ops = 1_000;
    cfg.measure_ops = sc.payload;
    let wl = o2_native::NativeLookup::build(&fig_native_spec());
    let m = o2_native::run_native(&wl, kind.build(&machine), &cfg);
    CellResult {
        x: workers as f64,
        y: m.kops_per_sec(),
        lines: vec![format!(
            "{} / {}: {:.0} kops/s wall-clock over {} ops, {} migrations, {} ring-full \
             fallbacks, ring depth hwm {}, occupancy {:?}, {}/{} workers pinned",
            sc.series[se].label,
            sc.points[pt].label,
            m.kops_per_sec(),
            m.ops,
            m.migrations,
            m.ring_full_local,
            m.ring_depth_hwm,
            m.per_worker_ops,
            m.pinned_workers,
            m.workers,
        )],
    }
}

/// The simulator's prediction for the same spec: CoreTime vs the thread
/// scheduler on a `workers`-core machine, identical directories,
/// popularity, write mix and seed.
fn fig_native_predicted_ratio(workers: usize) -> Option<f64> {
    let machine = o2_native::native_machine_config(workers);
    let run = |kind: PolicyKind| {
        let native = fig_native_spec();
        let mut spec = WorkloadSpec::paper_default(native.n_dirs);
        spec.machine = machine.clone();
        spec.entries_per_dir = native.entries_per_dir;
        spec.popularity = Popularity::Zipf { exponent: 1.1 };
        spec.write_fraction = native.write_fraction;
        spec.seed = NATIVE_SEED;
        let m = o2_workloads::run_once(spec, kind.build(&machine));
        m.kres_per_sec()
    };
    let ct = run(PolicyKind::CoreTime);
    let ts = run(PolicyKind::ThreadScheduler);
    (ts > 0.0).then(|| ct / ts)
}

fn fig_native(quick: bool) -> Scenario {
    let worker_counts: Vec<u64> = if quick { vec![2] } else { vec![2, 4] };
    Scenario {
        name: "fig_native",
        title: "Native: CoreTime on real cores, measured speedup vs the simulator's prediction",
        description: "Runs the directory-lookup workload on real pinned std::thread workers \
                      with SPSC migration rings, driving the unchanged SchedPolicy \
                      implementations; the summary puts the measured CoreTime-vs-thread-\
                      scheduler ratio next to the simulator's prediction for the same spec. \
                      Wall-clock numbers vary with the host and are reported, never asserted.",
        x_label: "Workers",
        params: vec![
            (
                "workload".into(),
                "64 dirs x 128 entries, Zipf(1.1), 5% writes, real FAT images".into(),
            ),
            (
                "runtime".into(),
                "std::thread workers pinned via raw sched_setaffinity, SPSC op-migration \
                 rings, closed loop"
                    .into(),
            ),
            (
                "determinism".into(),
                "op stream pure in (seed, index); commutative updates; state digest \
                 invariant across policies and worker counts"
                    .into(),
            ),
        ],
        series: vec![
            SeriesDef::policy(PolicyKind::CoreTime),
            SeriesDef::policy(PolicyKind::ThreadScheduler),
            SeriesDef::policy(PolicyKind::StaticPartition),
        ],
        points: worker_counts
            .iter()
            .map(|&w| SweepPoint::scalar(w, format!("{w} workers")))
            .collect(),
        payload: if quick { 6_000 } else { 20_000 },
        run: fig_native_cell,
        summarize: Some(|_, table| {
            // Series 0 is CoreTime, series 1 the thread scheduler.
            let mut notes = Vec::new();
            let ct = &table.series[0].points;
            let ts = &table.series[1].points;
            for (c, t) in ct.iter().zip(ts.iter()) {
                if t.1 <= 0.0 {
                    continue;
                }
                let workers = c.0 as usize;
                let measured = c.1 / t.1;
                match fig_native_predicted_ratio(workers) {
                    Some(predicted) => notes.push(format!(
                        "{workers} workers: measured CoreTime vs thread scheduler {measured:.2}x \
                         wall-clock, simulator predicts {predicted:.2}x for the same spec \
                         (gap {:.2}x — oversubscribed or unpinnable hosts migrate without \
                         the cache locality the prediction assumes)",
                        measured / predicted,
                    )),
                    None => notes.push(format!(
                        "{workers} workers: measured CoreTime vs thread scheduler {measured:.2}x \
                         wall-clock (simulator prediction unavailable)"
                    )),
                }
            }
            notes
        }),
    }
}

// ---- the registry ----------------------------------------------------

/// Builds the full scenario registry. `quick` selects the reduced
/// sweeps (the `O2_QUICK` environment variable of the old binaries).
pub fn registry(quick: bool) -> Vec<Scenario> {
    vec![
        fig2(),
        fig4a(quick),
        fig4b(quick),
        ablation_migration(quick),
        ablation_hardware(quick),
        ablation_clustering(),
        ablation_replication(),
        ablation_replacement(quick),
        table_latency(),
        fig_fsmeta(quick),
        fig_fault(quick),
        fig_scale(quick),
        fig_web(quick),
        fig_native(quick),
    ]
}

/// Looks a scenario up by name.
pub fn find_scenario(scenarios: Vec<Scenario>, name: &str) -> Option<Scenario> {
    scenarios.into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cells_positive() {
        let scenarios = registry(false);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
        for s in &scenarios {
            assert!(s.cell_count() > 0, "{} has no cells", s.name);
            assert!(!s.description.is_empty());
        }
        // The registry covers the paper's figures and the ROADMAP item.
        for required in [
            "fig2",
            "fig4a",
            "fig4b",
            "ablation_migration",
            "ablation_hardware",
            "ablation_clustering",
            "ablation_replication",
            "ablation_replacement",
            "table_latency",
            "fig_fsmeta",
            "fig_fault",
            "fig_scale",
            "fig_web",
            "fig_native",
        ] {
            assert!(
                scenarios.iter().any(|s| s.name == required),
                "missing scenario {required}"
            );
        }
    }

    #[test]
    fn quick_mode_shrinks_the_sweeps() {
        let full: usize = registry(false).iter().map(Scenario::cell_count).sum();
        let quick: usize = registry(true).iter().map(Scenario::cell_count).sum();
        assert!(quick < full);
    }

    /// A shrunken `fig_scale` point for tests: same machine and mix, a
    /// smaller object count and window.
    fn small_scale_spec(open_gap: Option<f64>) -> ScaleSpec {
        let mut spec = scale_spec_for(20_000, 7);
        spec.warmup_ops = 500;
        spec.measure_cycles = 1_000_000;
        spec.open_loop_mean_gap = open_gap;
        spec
    }

    fn serving_scale_run(open_gap: Option<f64>) -> (o2_workloads::ScaleMeasurement, u64) {
        let spec = small_scale_spec(open_gap);
        let policy = PolicyKind::CoreTime.build_with_coretime_config(
            &spec.machine,
            serving_coretime_config(PolicyKind::CoreTime, spec.n_objects),
        );
        let mut exp = o2_workloads::ScaleExperiment::build(spec, policy);
        let m = exp.run();
        let fills = exp.engine().sched_stats().replica_fills;
        (m, fills)
    }

    #[test]
    fn closed_loop_serving_replicates_the_head_but_never_fills() {
        let (m, fills) = serving_scale_run(None);
        assert!(m.window.ops > 0);
        let r = m.replication;
        assert!(r.promotions > 0, "serving tier never replicated the head");
        assert!(r.replica_served > 0, "no operation used a replica");
        assert!(r.invalidations > 0, "writes never invalidated a copy");
        // Saturated cores have no idle gaps: background fills must not
        // steal cycles from runnable work, ever.
        assert_eq!(fills, 0, "a background fill ran in a closed loop");
        // Same seed, same run — replica serving stays deterministic.
        let (m2, fills2) = serving_scale_run(None);
        assert_eq!((m.window.ops, m.service_latency, r), {
            (m2.window.ops, m2.service_latency, m2.replication)
        });
        assert_eq!(fills2, 0);
    }

    #[test]
    fn open_loop_serving_hides_fills_in_arrival_gaps() {
        let (m, fills) = serving_scale_run(Some(8_000.0));
        assert!(m.sleeps > 0, "open loop never slept");
        assert!(
            fills > 0,
            "an idle open loop never drained a background fill"
        );
        assert!(m.replication.promotions > 0);
    }

    #[test]
    fn paper_latency_rows_match_section_5() {
        assert_eq!(LATENCY_ROWS[0].1, 3.0);
        assert_eq!(LATENCY_ROWS[5].1, 2000.0);
        let s = table_latency();
        assert_eq!(s.cell_count(), 12);
    }
}
