//! The sharded matrix runner.
//!
//! Matrix cells — one per `(scenario, series, sweep point)` — fan out
//! across OS threads with `std::thread::scope`. Each worker claims the
//! next unclaimed cell from a shared atomic cursor and builds the whole
//! experiment *inside* its thread: specs are plain data, and everything
//! `Rc`-shaped (the volume, the engine, the directory set) is
//! constructed, run and dropped without ever crossing a thread
//! boundary. Seeds are derived per cell, and results land in a slot
//! indexed by cell number, so the assembled output is bit-identical to
//! a serial run no matter how many workers raced or in which order the
//! cells finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::scenario::{CellResult, Scenario};

/// One assembled series of a scenario's result table.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// Series label.
    pub label: String,
    /// `(x, y)` per sweep point, in point order.
    pub points: Vec<(f64, f64)>,
}

/// Everything one scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Registry key.
    pub name: String,
    /// Report title.
    pub title: String,
    /// Sweep-axis label.
    pub x_label: String,
    /// Report parameters.
    pub params: Vec<(String, String)>,
    /// The assembled series, in scenario order.
    pub series: Vec<SeriesResult>,
    /// Cell detail lines (cell order) followed by summary notes.
    pub notes: Vec<String>,
}

impl ScenarioResult {
    /// The result as an `o2-metrics` table (for reports and analysis).
    pub fn table(&self) -> o2_metrics::SeriesTable {
        let mut table = o2_metrics::SeriesTable::new(self.x_label.clone());
        for s in &self.series {
            let mut series = o2_metrics::Series::new(s.label.clone());
            for &(x, y) in &s.points {
                series.push(x, y);
            }
            table.add(series);
        }
        table
    }
}

/// The assembled output of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// One result per scenario, in the order the scenarios were given.
    pub scenarios: Vec<ScenarioResult>,
}

/// Runs every cell of every scenario on up to `jobs` worker threads and
/// assembles the results in cell-index order.
///
/// `jobs` is clamped to at least 1 and at most the number of cells; the
/// output is independent of it by construction.
pub fn run_matrix(scenarios: &[Scenario], jobs: usize) -> MatrixRun {
    // The global cell list: (scenario, series, point), scenario-major,
    // then series-major — the same order a serial nested loop would run.
    let cells: Vec<(usize, usize, usize)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(sc, s)| {
            (0..s.series.len()).flat_map(move |se| (0..s.points.len()).map(move |pt| (sc, se, pt)))
        })
        .collect();

    let results: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.max(1).min(cells.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (sc, se, pt) = cells[i];
                let r = scenarios[sc].run_cell(se, pt);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    // Collect in cell-index order, scenario by scenario.
    let mut flat = results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"));
    let mut out = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let mut series = Vec::with_capacity(s.series.len());
        let mut notes = Vec::new();
        for def in &s.series {
            let mut points = Vec::with_capacity(s.points.len());
            for _ in &s.points {
                let cell = flat.next().flatten().expect("every cell ran exactly once");
                points.push((cell.x, cell.y));
                notes.extend(cell.lines);
            }
            series.push(SeriesResult {
                label: def.label.clone(),
                points,
            });
        }
        let mut result = ScenarioResult {
            name: s.name.to_string(),
            title: s.title.to_string(),
            x_label: s.x_label.to_string(),
            params: s.params.clone(),
            series,
            notes,
        };
        if let Some(summarize) = s.summarize {
            let table = result.table();
            result.notes.extend(summarize(s, &table));
        }
        out.push(result);
    }
    MatrixRun { scenarios: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, SeriesDef, SweepPoint};

    /// A host-only scenario: y encodes the cell coordinates so ordering
    /// bugs are visible, and the derived seed rides along in a line.
    fn toy(points: usize) -> Scenario {
        Scenario {
            name: "toy",
            title: "Toy scenario",
            description: "runner unit-test scenario",
            x_label: "point",
            params: vec![("kind".into(), "toy".into())],
            series: vec![SeriesDef::fixed("a"), SeriesDef::fixed("b")],
            points: (0..points)
                .map(|i| SweepPoint::scalar(i as u64, format!("p{i}")))
                .collect(),
            payload: 0,
            run: |sc, se, pt, seed| {
                let mut r = CellResult::point(pt as f64, (se * 100 + pt) as f64);
                r.lines
                    .push(format!("{}[{se}][{pt}] seed={seed:#x}", sc.name));
                r
            },
            summarize: Some(|_, table| vec![format!("{} series", table.series.len())]),
        }
    }

    #[test]
    fn parallel_and_serial_runs_assemble_identically() {
        let scenarios = vec![toy(7), toy(3)];
        let serial = run_matrix(&scenarios, 1);
        for jobs in [2, 4, 16] {
            let parallel = run_matrix(&scenarios, jobs);
            assert_eq!(serial.scenarios.len(), parallel.scenarios.len());
            for (a, b) in serial.scenarios.iter().zip(&parallel.scenarios) {
                assert_eq!(a.notes, b.notes, "jobs={jobs}");
                for (sa, sb) in a.series.iter().zip(&b.series) {
                    assert_eq!(sa.label, sb.label);
                    assert_eq!(sa.points, sb.points, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn cells_land_in_their_own_slots() {
        let run = run_matrix(&[toy(4)], 3);
        let s = &run.scenarios[0];
        assert_eq!(s.series.len(), 2);
        for (se, series) in s.series.iter().enumerate() {
            for (pt, &(x, y)) in series.points.iter().enumerate() {
                assert_eq!(x, pt as f64);
                assert_eq!(y, (se * 100 + pt) as f64);
            }
        }
        // Notes: one line per cell in cell order, then the summary.
        assert_eq!(s.notes.len(), 9);
        assert!(s.notes[0].starts_with("toy[0][0]"));
        assert!(s.notes[7].starts_with("toy[1][3]"));
        assert_eq!(s.notes[8], "2 series");
    }
}
