//! Rendering a [`MatrixRun`]: plain-text reports and deterministic JSON.
//!
//! Both renderings are pure functions of the assembled results (which
//! are themselves collected in cell-index order), so the bytes they
//! produce are independent of worker count and completion order — the
//! property `tests/runner_determinism.rs` pins.

use o2_metrics::Report;

use crate::runner::MatrixRun;

/// Renders every scenario of a run as an `o2-metrics` text report.
pub fn render_reports(run: &MatrixRun) -> String {
    let mut out = String::new();
    for s in &run.scenarios {
        let mut report = Report::new(s.title.clone(), s.table());
        for (k, v) in &s.params {
            report = report.param(k.clone(), v);
        }
        for n in &s.notes {
            report = report.note(n.clone());
        }
        out.push_str(&report.render_text());
        out.push('\n');
    }
    out
}

/// Renders a run as JSON.
///
/// Hand-rolled (the workspace is offline, no serde): strings are
/// escaped, numbers use Rust's shortest-roundtrip `f64` formatting, and
/// field order is fixed — the same run always renders to the same
/// bytes.
pub fn render_json(run: &MatrixRun) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"generator\": \"o2 experiment matrix\",\n  \"scenarios\": [");
    for (i, s) in run.scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n      \"name\": ");
        push_str_json(&mut out, &s.name);
        out.push_str(",\n      \"title\": ");
        push_str_json(&mut out, &s.title);
        out.push_str(",\n      \"x_label\": ");
        push_str_json(&mut out, &s.x_label);
        out.push_str(",\n      \"params\": [");
        for (j, (k, v)) in s.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('[');
            push_str_json(&mut out, k);
            out.push_str(", ");
            push_str_json(&mut out, v);
            out.push(']');
        }
        out.push_str("],\n      \"series\": [");
        for (j, series) in s.series.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        {\"label\": ");
            push_str_json(&mut out, &series.label);
            out.push_str(", \"points\": [");
            for (k, &(x, y)) in series.points.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"x\": {}, \"y\": {}}}", fmt_f64(x), fmt_f64(y)));
            }
            out.push_str("]}");
        }
        out.push_str("\n      ],\n      \"notes\": [");
        for (j, n) in s.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_str_json(&mut out, n);
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Formats an `f64` as a JSON number (integers without the trailing
/// `.0`, everything else shortest-roundtrip).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ScenarioResult, SeriesResult};

    fn run() -> MatrixRun {
        MatrixRun {
            scenarios: vec![ScenarioResult {
                name: "toy".into(),
                title: "Toy \"quoted\" scenario".into(),
                x_label: "size".into(),
                params: vec![("machine".into(), "amd16".into())],
                series: vec![SeriesResult {
                    label: "With CoreTime".into(),
                    points: vec![(64.0, 2031.25), (128.0, 4000.0)],
                }],
                notes: vec!["a note".into()],
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let a = render_json(&run());
        let b = render_json(&run());
        assert_eq!(a, b);
        assert!(a.contains("\"Toy \\\"quoted\\\" scenario\""));
        assert!(a.contains("{\"x\": 64, \"y\": 2031.25}"));
        assert!(a.contains("\"notes\": [\"a note\"]"));
    }

    #[test]
    fn text_report_contains_table_and_notes() {
        let text = render_reports(&run());
        assert!(text.contains("Toy \"quoted\" scenario"));
        assert!(text.contains("With CoreTime"));
        assert!(text.contains("machine: amd16"));
        assert!(text.contains("* a note"));
    }

    #[test]
    fn float_formatting_is_integer_for_integers() {
        assert_eq!(fmt_f64(64.0), "64");
        assert_eq!(fmt_f64(2031.25), "2031.25");
        assert_eq!(fmt_f64(-3.0), "-3");
    }
}
