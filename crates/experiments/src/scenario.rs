//! Declarative scenarios: series × sweep points, one cell function.

use crate::policy::PolicyKind;

/// One column of a scenario's result table — usually one scheduling
/// policy, sometimes a fixed configuration (e.g. the paper's quoted
/// latencies in `table_latency`).
#[derive(Debug, Clone)]
pub struct SeriesDef {
    /// Series label shown in tables and JSON.
    pub label: String,
    /// The policy this series runs under, when it runs one at all.
    pub policy: Option<PolicyKind>,
}

impl SeriesDef {
    /// A series labelled with the policy's legend name.
    pub fn policy(kind: PolicyKind) -> Self {
        Self {
            label: kind.label().to_string(),
            policy: Some(kind),
        }
    }

    /// A policy series with a custom label.
    pub fn labelled(kind: PolicyKind, label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            policy: Some(kind),
        }
    }

    /// A series that is not a policy run (fixed reference values).
    pub fn fixed(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            policy: None,
        }
    }
}

/// One point of a scenario's sweep axis.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Nominal x value (cells may refine it, e.g. to the measured total
    /// KB).
    pub x: f64,
    /// Human-readable label ("8192 KB", "future 8x8", "L1 hit").
    pub label: String,
    /// Scenario-specific scalar the cell function interprets (a size in
    /// KB, a migration cost in cycles, a machine index, …).
    pub value: u64,
}

impl SweepPoint {
    /// A point whose x value is the scalar itself.
    pub fn scalar(value: u64, label: impl Into<String>) -> Self {
        Self {
            x: value as f64,
            label: label.into(),
            value,
        }
    }

    /// An ordinal point (1-based x) carrying an arbitrary scalar.
    pub fn ordinal(i: usize, value: u64, label: impl Into<String>) -> Self {
        Self {
            x: (i + 1) as f64,
            label: label.into(),
            value,
        }
    }
}

/// What one matrix cell produced.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The x value to plot this cell at.
    pub x: f64,
    /// The y value (throughput, latency, …, per the scenario's units).
    pub y: f64,
    /// Free-form detail lines (e.g. Figure 2's per-cache occupancy).
    pub lines: Vec<String>,
}

impl CellResult {
    /// A plain (x, y) cell with no detail lines.
    pub fn point(x: f64, y: f64) -> Self {
        Self {
            x,
            y,
            lines: Vec::new(),
        }
    }
}

/// Builds and runs the cell `(series, point)` of a scenario. The
/// function must construct the *entire* experiment from the scenario's
/// plain data plus the derived seed — workers call it from arbitrary OS
/// threads, so nothing may be shared with other cells.
pub type CellFn = fn(&Scenario, usize, usize, u64) -> CellResult;

/// Derives summary notes once every cell of the scenario has run (e.g.
/// Figure 4's crossover point). Must be deterministic.
pub type SummarizeFn = fn(&Scenario, &o2_metrics::SeriesTable) -> Vec<String>;

/// One experiment of the matrix: a set of series swept over an axis,
/// with a cell function that runs any single `(series, point)` pair.
pub struct Scenario {
    /// Registry key (`fig4a`, `ablation_migration`, …).
    pub name: &'static str,
    /// Report title.
    pub title: &'static str,
    /// One-line description for `o2 --list`.
    pub description: &'static str,
    /// Label of the sweep axis.
    pub x_label: &'static str,
    /// Report parameters (machine shape, workload knobs, …).
    pub params: Vec<(String, String)>,
    /// The series (columns) of the result table.
    pub series: Vec<SeriesDef>,
    /// The sweep points (rows).
    pub points: Vec<SweepPoint>,
    /// A scenario-wide scalar knob the cell function may interpret
    /// (e.g. the fixed working-set size of the hardware ablation).
    pub payload: u64,
    /// Runs one cell.
    pub run: CellFn,
    /// Derives summary notes from the assembled table, if any.
    pub summarize: Option<SummarizeFn>,
}

impl Scenario {
    /// Number of matrix cells (series × points).
    pub fn cell_count(&self) -> usize {
        self.series.len() * self.points.len()
    }

    /// Runs one cell with its derived seed.
    pub fn run_cell(&self, series: usize, point: usize) -> CellResult {
        let seed = derive_cell_seed(self.name, &self.series[series].label, point);
        (self.run)(self, series, point, seed)
    }
}

/// Derives the RNG seed of one matrix cell from its coordinates.
///
/// The seed is a pure function of `(scenario, series label, point
/// index)` — stable across runs, processes and worker counts — so a
/// cell's placement and interleaving never depend on which worker ran
/// it or in which order. Distinct cells get distinct seeds (FNV-1a over
/// the coordinates, finished with a splitmix64 round so close inputs
/// land far apart).
pub fn derive_cell_seed(scenario: &str, series: &str, point: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(scenario.as_bytes());
    eat(&[0xff]); // separator: ("ab", "c") must differ from ("a", "bc")
    eat(series.as_bytes());
    eat(&[0xff]);
    eat(&(point as u64).to_le_bytes());
    // splitmix64 finalizer.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_cells_get_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        for scenario in ["fig4a", "fig4b", "fig_fsmeta"] {
            for series in ["With CoreTime", "Without CoreTime"] {
                for point in 0..16 {
                    assert!(
                        seen.insert(derive_cell_seed(scenario, series, point)),
                        "seed collision at ({scenario}, {series}, {point})"
                    );
                }
            }
        }
        // The separator keeps concatenation ambiguities apart.
        assert_ne!(
            derive_cell_seed("ab", "c", 0),
            derive_cell_seed("a", "bc", 0)
        );
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        // Pinned: changing the derivation re-seeds every cell of every
        // scenario, which silently re-captures all figure outputs.
        assert_eq!(
            derive_cell_seed("fig4a", "With CoreTime", 0),
            0x52de_ef27_d7ec_29e5
        );
        assert_eq!(
            derive_cell_seed("fig4a", "With CoreTime", 1),
            derive_cell_seed("fig4a", "With CoreTime", 1)
        );
    }
}
