//! The closed set of scheduling policies the experiment matrix compares.

use o2_baseline::{StaticPartition, ThreadClustering, ThreadScheduler};
use o2_core::{CoreTime, CoreTimeConfig};
use o2_runtime::SchedPolicy;
use o2_sim::MachineConfig;

/// Which scheduling policy to construct for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// CoreTime with the default configuration ("With CoreTime").
    CoreTime,
    /// CoreTime with every Section-6.2 extension enabled.
    CoreTimeExtensions,
    /// The traditional thread scheduler ("Without CoreTime").
    ThreadScheduler,
    /// Sharing-aware thread clustering (Tam et al.).
    ThreadClustering,
    /// Static round-robin object partitioning.
    StaticPartition,
}

impl PolicyKind {
    /// Every kind, in comparison order (CoreTime first, baselines after).
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::CoreTime,
        PolicyKind::CoreTimeExtensions,
        PolicyKind::ThreadScheduler,
        PolicyKind::ThreadClustering,
        PolicyKind::StaticPartition,
    ];

    /// Human-readable label used in series names (matches the paper's
    /// figure legends where applicable).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::CoreTime => "With CoreTime",
            PolicyKind::CoreTimeExtensions => "With CoreTime (+extensions)",
            PolicyKind::ThreadScheduler => "Without CoreTime",
            PolicyKind::ThreadClustering => "Thread clustering",
            PolicyKind::StaticPartition => "Static partition",
        }
    }

    /// Builds the policy for a given machine.
    pub fn build(&self, machine: &MachineConfig) -> Box<dyn SchedPolicy + Send> {
        match self {
            PolicyKind::CoreTime => CoreTime::policy(machine),
            PolicyKind::CoreTimeExtensions => CoreTime::policy_with_extensions(machine),
            PolicyKind::ThreadScheduler => Box::new(ThreadScheduler::new()),
            PolicyKind::ThreadClustering => {
                Box::new(ThreadClustering::new(machine.chips, machine.cores_per_chip))
            }
            PolicyKind::StaticPartition => Box::new(StaticPartition::new(machine.total_cores())),
        }
    }

    /// Builds a CoreTime policy with an explicit configuration (for
    /// ablations); other kinds ignore the configuration.
    pub fn build_with_coretime_config(
        &self,
        machine: &MachineConfig,
        cfg: CoreTimeConfig,
    ) -> Box<dyn SchedPolicy + Send> {
        match self {
            PolicyKind::CoreTime | PolicyKind::CoreTimeExtensions => {
                CoreTime::policy_with(machine, cfg)
            }
            other => other.build(machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_papers_legends() {
        assert_eq!(PolicyKind::CoreTime.label(), "With CoreTime");
        assert_eq!(PolicyKind::ThreadScheduler.label(), "Without CoreTime");
    }

    #[test]
    fn policies_can_be_built_for_the_default_machine() {
        let machine = MachineConfig::amd16();
        for kind in PolicyKind::ALL {
            let p = kind.build(&machine);
            assert!(!p.name().is_empty());
        }
    }
}
