//! The object registry: everything CoreTime knows about each schedulable
//! object.
//!
//! The paper's `ct_start` identifies an object by address; sizes come from
//! registration (or are estimated from observed misses) and per-object
//! fetch costs come from the event-counter monitoring.

use std::collections::HashMap;

use o2_runtime::{ObjectDescriptor, ObjectId};

/// Per-object bookkeeping.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Registration-time description (address range, hints). Objects that
    /// were never registered get a synthesized descriptor.
    pub desc: ObjectDescriptor,
    /// Smoothed private-cache misses per operation on this object.
    pub ewma_misses_per_op: f64,
    /// Total operations observed.
    pub ops_total: u64,
    /// Operations observed during the current epoch.
    pub ops_this_epoch: u64,
    /// Operations observed during the previous epoch (used by replication
    /// and pathology heuristics).
    pub ops_last_epoch: u64,
    /// Epochs since the object was last operated on.
    pub idle_epochs: u64,
    /// Whether the size in `desc` was estimated from misses rather than
    /// registered.
    pub size_estimated: bool,
}

impl ObjectInfo {
    fn new(desc: ObjectDescriptor, size_estimated: bool) -> Self {
        Self {
            desc,
            ewma_misses_per_op: 0.0,
            ops_total: 0,
            ops_this_epoch: 0,
            ops_last_epoch: 0,
            idle_epochs: 0,
            size_estimated,
        }
    }

    /// Effective size in bytes used for packing decisions.
    pub fn size(&self) -> u64 {
        self.desc.size
    }

    /// Expected fetch cost per operation (misses times an assumed per-miss
    /// cost), the "expense" the packing algorithm sorts by.
    pub fn expense(&self, miss_cost: u64) -> f64 {
        self.ewma_misses_per_op * miss_cost as f64
    }
}

/// Registry of every object CoreTime has seen.
#[derive(Debug, Default)]
pub struct ObjectRegistry {
    objects: HashMap<ObjectId, ObjectInfo>,
    line_size: u64,
}

impl ObjectRegistry {
    /// Creates an empty registry; `line_size` is used to estimate the size
    /// of unregistered objects from their miss counts.
    pub fn new(line_size: u64) -> Self {
        Self {
            objects: HashMap::new(),
            line_size: line_size.max(1),
        }
    }

    /// Number of known objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Registers an object explicitly (from [`ObjectDescriptor`]).
    pub fn register(&mut self, desc: ObjectDescriptor) {
        self.objects
            .entry(desc.id)
            .and_modify(|info| {
                info.desc = desc;
                info.size_estimated = false;
            })
            .or_insert_with(|| ObjectInfo::new(desc, false));
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectInfo> {
        self.objects.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut ObjectInfo> {
        self.objects.get_mut(&id)
    }

    /// Records one completed operation on an object, updating its smoothed
    /// miss rate, and returns a reference to the updated info.
    ///
    /// Unknown objects are auto-registered (the paper: "`ct_start`
    /// automatically adds an object to the table if the object is
    /// expensive to fetch") with a size estimated from the observed misses.
    pub fn record_op(&mut self, id: ObjectId, misses: u64, alpha: f64) -> &ObjectInfo {
        let line_size = self.line_size;
        let info = self.objects.entry(id).or_insert_with(|| {
            let mut desc = ObjectDescriptor::new(id, id, misses.max(1) * line_size);
            desc.read_mostly = false;
            ObjectInfo::new(desc, true)
        });
        if info.size_estimated {
            // Refine the size estimate towards the largest observed
            // per-operation footprint.
            info.desc.size = info.desc.size.max(misses.max(1) * line_size);
        }
        if info.ops_total == 0 {
            info.ewma_misses_per_op = misses as f64;
        } else {
            info.ewma_misses_per_op =
                alpha * misses as f64 + (1.0 - alpha) * info.ewma_misses_per_op;
        }
        info.ops_total += 1;
        info.ops_this_epoch += 1;
        info.idle_epochs = 0;
        info
    }

    /// Rolls per-epoch statistics: `ops_this_epoch` moves to
    /// `ops_last_epoch`, idle objects age.
    pub fn roll_epoch(&mut self) {
        for info in self.objects.values_mut() {
            if info.ops_this_epoch == 0 {
                info.idle_epochs += 1;
            }
            info.ops_last_epoch = info.ops_this_epoch;
            info.ops_this_epoch = 0;
        }
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &ObjectInfo)> {
        self.objects.iter()
    }

    /// Objects that have been idle for at least `epochs` epochs.
    pub fn idle_objects(&self, epochs: u64) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|(_, info)| info.idle_epochs >= epochs)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The `n` objects with the most operations last epoch.
    pub fn hottest(&self, n: usize) -> Vec<ObjectId> {
        let mut v: Vec<(&ObjectId, &ObjectInfo)> = self.objects.iter().collect();
        v.sort_by(|a, b| {
            b.1.ops_last_epoch
                .cmp(&a.1.ops_last_epoch)
                .then(a.0.cmp(b.0))
        });
        v.into_iter().take(n).map(|(id, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_lookup() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        assert_eq!(reg.len(), 1);
        let info = reg.get(0x1000).unwrap();
        assert_eq!(info.size(), 32 * 1024);
        assert!(!info.size_estimated);
        assert_eq!(info.ops_total, 0);
    }

    #[test]
    fn record_op_updates_ewma() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(ObjectDescriptor::new(1, 0x1000, 4096));
        reg.record_op(1, 100, 0.5);
        assert!((reg.get(1).unwrap().ewma_misses_per_op - 100.0).abs() < 1e-9);
        reg.record_op(1, 0, 0.5);
        assert!((reg.get(1).unwrap().ewma_misses_per_op - 50.0).abs() < 1e-9);
        assert_eq!(reg.get(1).unwrap().ops_total, 2);
    }

    #[test]
    fn unknown_objects_are_auto_registered_with_estimated_size() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(0x9000, 500, 0.3);
        let info = reg.get(0x9000).unwrap();
        assert!(info.size_estimated);
        assert_eq!(info.size(), 500 * 64);
        // A later, larger footprint grows the estimate.
        reg.record_op(0x9000, 800, 0.3);
        assert_eq!(reg.get(0x9000).unwrap().size(), 800 * 64);
    }

    #[test]
    fn explicit_registration_overrides_estimates() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(0x9000, 10, 0.3);
        reg.register(ObjectDescriptor::new(0x9000, 0x9000, 1234));
        let info = reg.get(0x9000).unwrap();
        assert_eq!(info.size(), 1234);
        assert!(!info.size_estimated);
        // Operation history is preserved.
        assert_eq!(info.ops_total, 1);
    }

    #[test]
    fn epoch_roll_tracks_idleness_and_last_epoch_ops() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(ObjectDescriptor::new(1, 0, 64));
        reg.register(ObjectDescriptor::new(2, 64, 64));
        reg.record_op(1, 5, 0.3);
        reg.roll_epoch();
        assert_eq!(reg.get(1).unwrap().ops_last_epoch, 1);
        assert_eq!(reg.get(1).unwrap().idle_epochs, 0);
        assert_eq!(reg.get(2).unwrap().idle_epochs, 1);
        reg.roll_epoch();
        reg.roll_epoch();
        assert_eq!(reg.idle_objects(3), vec![2]);
        assert_eq!(reg.idle_objects(4), Vec::<ObjectId>::new());
    }

    #[test]
    fn hottest_orders_by_last_epoch_ops() {
        let mut reg = ObjectRegistry::new(64);
        for id in 1..=3u64 {
            reg.register(ObjectDescriptor::new(id, id * 0x1000, 64));
        }
        for _ in 0..5 {
            reg.record_op(2, 1, 0.3);
        }
        for _ in 0..2 {
            reg.record_op(3, 1, 0.3);
        }
        reg.roll_epoch();
        assert_eq!(reg.hottest(2), vec![2, 3]);
    }

    #[test]
    fn expense_scales_with_miss_cost() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(7, 10, 1.0);
        let info = reg.get(7).unwrap();
        assert!((info.expense(100) - 1000.0).abs() < 1e-9);
    }
}
