//! The object registry: everything CoreTime knows about each schedulable
//! object.
//!
//! The paper's `ct_start` identifies an object by address; sizes come from
//! registration (or are estimated from observed misses) and per-object
//! fetch costs come from the event-counter monitoring.
//!
//! The registry is a slab indexed by dense object id with **incremental
//! epoch state**: a dirty list of the objects touched this epoch (so
//! `roll_epoch` and `hottest` never scan the whole slab), idleness derived
//! from a per-object last-active stamp, and an intrusive list ordered by
//! last activity (so `idle_objects` walks exactly the idle prefix). The
//! previous implementation kept a `HashMap` and re-scanned every object at
//! every epoch boundary.

use o2_runtime::{AccessKind, DenseObjectId, ObjectDescriptor, ObjectId};

/// Sentinel for "no neighbour" in the intrusive idle list.
const NONE: u32 = u32::MAX;

/// Per-object bookkeeping.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Registration-time description (address range, hints). Objects that
    /// were never registered get a synthesized descriptor.
    pub desc: ObjectDescriptor,
    /// Smoothed private-cache misses per operation on this object.
    pub ewma_misses_per_op: f64,
    /// Smoothed fraction of operations that declared themselves reads at
    /// `ct_start` (1.0 = all reads). This is the *measured* replacement
    /// for the static `read_mostly` hint: replica promotion and demotion
    /// key off it when `serve_from_replicas` is enabled.
    pub ewma_read_fraction: f64,
    /// Total operations observed.
    pub ops_total: u64,
    /// Operations observed during the current epoch.
    pub ops_this_epoch: u64,
    /// Operations observed during the previous epoch (used by replication
    /// and pathology heuristics).
    pub ops_last_epoch: u64,
    /// Whether the size in `desc` was estimated from misses rather than
    /// registered.
    pub size_estimated: bool,
    /// The roll count up to which this object counts as active: idleness
    /// is `rolls_completed - last_active_roll`, computed lazily instead of
    /// aged by a whole-registry scan.
    last_active_roll: u64,
    /// Whether the object is already on the current epoch's dirty list.
    in_dirty: bool,
    /// Whether this slab slot holds a real object.
    present: bool,
    /// Intrusive idle-list links (ordered by `last_active_roll`).
    prev: u32,
    next: u32,
}

impl ObjectInfo {
    fn new(desc: ObjectDescriptor, size_estimated: bool, last_active_roll: u64) -> Self {
        Self {
            desc,
            ewma_misses_per_op: 0.0,
            ewma_read_fraction: 0.0,
            ops_total: 0,
            ops_this_epoch: 0,
            ops_last_epoch: 0,
            size_estimated,
            last_active_roll,
            in_dirty: false,
            present: true,
            prev: NONE,
            next: NONE,
        }
    }

    const VACANT: ObjectInfo = ObjectInfo {
        desc: ObjectDescriptor {
            id: 0,
            addr: 0,
            size: 0,
            read_mostly: false,
            lock: None,
        },
        ewma_misses_per_op: 0.0,
        ewma_read_fraction: 0.0,
        ops_total: 0,
        ops_this_epoch: 0,
        ops_last_epoch: 0,
        size_estimated: false,
        last_active_roll: 0,
        in_dirty: false,
        present: false,
        prev: NONE,
        next: NONE,
    };

    /// Effective size in bytes used for packing decisions.
    pub fn size(&self) -> u64 {
        self.desc.size
    }

    /// The object's external key (the address it is named by).
    pub fn key(&self) -> ObjectId {
        self.desc.id
    }

    /// Expected fetch cost per operation (misses times an assumed per-miss
    /// cost), the "expense" the packing algorithm sorts by.
    pub fn expense(&self, miss_cost: u64) -> f64 {
        self.ewma_misses_per_op * miss_cost as f64
    }
}

/// Registry of every object CoreTime has seen, indexed by dense id.
#[derive(Debug)]
pub struct ObjectRegistry {
    slots: Vec<ObjectInfo>,
    line_size: u64,
    /// Number of present objects.
    known: usize,
    /// Epoch rolls completed so far.
    rolls: u64,
    /// Objects operated on during the current epoch.
    dirty_this: Vec<DenseObjectId>,
    /// Objects operated on during the previous epoch (exactly the set
    /// with `ops_last_epoch > 0`).
    dirty_last: Vec<DenseObjectId>,
    /// Head/tail of the intrusive list ordered by `last_active_roll`
    /// (least recently active first).
    head: u32,
    tail: u32,
}

impl Default for ObjectRegistry {
    /// An empty registry with a 64-byte line size. A derived `Default`
    /// would zero the intrusive-list sentinels (`NONE` is `u32::MAX`) and
    /// corrupt the idle list on first insert, so this delegates to
    /// [`ObjectRegistry::new`].
    fn default() -> Self {
        Self::new(64)
    }
}

impl ObjectRegistry {
    /// Creates an empty registry; `line_size` is used to estimate the size
    /// of unregistered objects from their miss counts.
    pub fn new(line_size: u64) -> Self {
        Self {
            slots: Vec::new(),
            line_size: line_size.max(1),
            known: 0,
            rolls: 0,
            dirty_this: Vec::new(),
            dirty_last: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    /// Number of known objects.
    pub fn len(&self) -> usize {
        self.known
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.known == 0
    }

    /// Epoch rolls completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.rolls
    }

    /// Pre-sizes the slab for `additional` more dense ids, so registering
    /// them in ascending order never reallocates.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(
            additional.saturating_sub(self.slots.capacity().saturating_sub(self.slots.len())),
        );
    }

    /// Heap bytes held by the registry: the info slab plus both dirty
    /// lists (capacities, not lengths — exact for the pre-sized scale
    /// tier and an upper bound otherwise).
    pub fn footprint_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<ObjectInfo>()) as u64
            + ((self.dirty_this.capacity() + self.dirty_last.capacity())
                * std::mem::size_of::<DenseObjectId>()) as u64
    }

    fn ensure_slot(&mut self, id: DenseObjectId) {
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, ObjectInfo::VACANT);
        }
    }

    // ---- the idle list -----------------------------------------------------

    fn unlink(&mut self, id: DenseObjectId) {
        let (prev, next) = {
            let info = &self.slots[id as usize];
            (info.prev, info.next)
        };
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        let info = &mut self.slots[id as usize];
        info.prev = NONE;
        info.next = NONE;
    }

    /// Inserts `id` (already stamped with its `last_active_roll`) into the
    /// list, keeping it ordered by stamp. Appending at the tail is the hot
    /// case (operations always carry the newest stamp); the backwards walk
    /// only runs for mid-run registrations, which stamp one epoch behind.
    fn insert_by_stamp(&mut self, id: DenseObjectId) {
        let stamp = self.slots[id as usize].last_active_roll;
        let mut after = self.tail;
        while after != NONE && self.slots[after as usize].last_active_roll > stamp {
            after = self.slots[after as usize].prev;
        }
        if after == NONE {
            // New head.
            let old_head = self.head;
            self.slots[id as usize].next = old_head;
            self.slots[id as usize].prev = NONE;
            if old_head == NONE {
                self.tail = id;
            } else {
                self.slots[old_head as usize].prev = id;
            }
            self.head = id;
        } else {
            let next = self.slots[after as usize].next;
            self.slots[id as usize].prev = after;
            self.slots[id as usize].next = next;
            self.slots[after as usize].next = id;
            if next == NONE {
                self.tail = id;
            } else {
                self.slots[next as usize].prev = id;
            }
        }
    }

    // ---- registration and monitoring --------------------------------------

    /// Registers an object explicitly (from [`ObjectDescriptor`]) under its
    /// dense id.
    pub fn register(&mut self, id: DenseObjectId, desc: ObjectDescriptor) {
        self.ensure_slot(id);
        let rolls = self.rolls;
        let info = &mut self.slots[id as usize];
        if info.present {
            info.desc = desc;
            info.size_estimated = false;
        } else {
            *info = ObjectInfo::new(desc, false, rolls);
            self.known += 1;
            self.insert_by_stamp(id);
        }
    }

    /// Looks up an object.
    #[inline]
    pub fn get(&self, id: DenseObjectId) -> Option<&ObjectInfo> {
        self.slots.get(id as usize).filter(|info| info.present)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: DenseObjectId) -> Option<&mut ObjectInfo> {
        self.slots.get_mut(id as usize).filter(|info| info.present)
    }

    /// The external key of an object (zero if unknown).
    #[inline]
    pub fn key_of(&self, id: DenseObjectId) -> ObjectId {
        self.get(id).map(|info| info.desc.id).unwrap_or(0)
    }

    /// Epochs since the object was last operated on (or registered).
    pub fn idle_epochs(&self, id: DenseObjectId) -> u64 {
        self.get(id)
            .map(|info| self.rolls.saturating_sub(info.last_active_roll))
            .unwrap_or(0)
    }

    /// Records one completed operation on an object, updating its smoothed
    /// miss rate and its smoothed read fraction (`kind` is the access kind
    /// the operation declared at `ct_start`), and returns a reference to
    /// the updated info.
    ///
    /// Unknown objects are auto-registered (the paper: "`ct_start`
    /// automatically adds an object to the table if the object is
    /// expensive to fetch") under their external `key`, with a size
    /// estimated from the observed misses.
    pub fn record_op(
        &mut self,
        id: DenseObjectId,
        key: ObjectId,
        misses: u64,
        alpha: f64,
        kind: AccessKind,
    ) -> &ObjectInfo {
        self.ensure_slot(id);
        let line_size = self.line_size;
        let active_stamp = self.rolls + 1;
        if !self.slots[id as usize].present {
            let mut desc = ObjectDescriptor::new(key, key, misses.max(1) * line_size);
            desc.read_mostly = false;
            self.slots[id as usize] = ObjectInfo::new(desc, true, active_stamp);
            self.known += 1;
            self.insert_by_stamp(id);
        } else if self.slots[id as usize].last_active_roll != active_stamp {
            self.slots[id as usize].last_active_roll = active_stamp;
            self.unlink(id);
            self.insert_by_stamp(id);
        }
        let info = &mut self.slots[id as usize];
        if info.size_estimated {
            // Refine the size estimate towards the largest observed
            // per-operation footprint.
            info.desc.size = info.desc.size.max(misses.max(1) * line_size);
        }
        let is_read = if kind == AccessKind::Read { 1.0 } else { 0.0 };
        if info.ops_total == 0 {
            info.ewma_misses_per_op = misses as f64;
            info.ewma_read_fraction = is_read;
        } else {
            info.ewma_misses_per_op =
                alpha * misses as f64 + (1.0 - alpha) * info.ewma_misses_per_op;
            info.ewma_read_fraction = alpha * is_read + (1.0 - alpha) * info.ewma_read_fraction;
        }
        info.ops_total += 1;
        info.ops_this_epoch += 1;
        if !info.in_dirty {
            info.in_dirty = true;
            self.dirty_this.push(id);
        }
        &self.slots[id as usize]
    }

    /// Rolls per-epoch statistics: `ops_this_epoch` moves to
    /// `ops_last_epoch` for the objects touched this epoch, last epoch's
    /// leftovers are cleared, and idleness advances implicitly (it is
    /// derived from the per-object stamp). Cost is proportional to the
    /// objects *touched*, not to the registry size.
    pub fn roll_epoch(&mut self) {
        self.rolls += 1;
        // Objects active last epoch but not this one lose their
        // `ops_last_epoch` credit.
        for i in 0..self.dirty_last.len() {
            let id = self.dirty_last[i] as usize;
            if !self.slots[id].in_dirty {
                self.slots[id].ops_last_epoch = 0;
            }
        }
        for i in 0..self.dirty_this.len() {
            let id = self.dirty_this[i] as usize;
            let info = &mut self.slots[id];
            info.ops_last_epoch = info.ops_this_epoch;
            info.ops_this_epoch = 0;
            info.in_dirty = false;
        }
        std::mem::swap(&mut self.dirty_this, &mut self.dirty_last);
        self.dirty_this.clear();
    }

    /// Iterates over all known objects (slab order, i.e. ascending dense
    /// id). Epoch-path consumers should prefer
    /// [`ObjectRegistry::active_last_epoch`].
    pub fn iter(&self) -> impl Iterator<Item = (DenseObjectId, &ObjectInfo)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, info)| info.present)
            .map(|(i, info)| (i as DenseObjectId, info))
    }

    /// The objects operated on during the previous epoch — exactly the set
    /// with `ops_last_epoch > 0`, without scanning the slab.
    pub fn active_last_epoch(&self) -> impl Iterator<Item = (DenseObjectId, &ObjectInfo)> {
        self.dirty_last.iter().filter_map(move |&id| {
            let info = &self.slots[id as usize];
            (info.present && info.ops_last_epoch > 0).then_some((id, info))
        })
    }

    /// Objects that have been idle for at least `epochs` epochs, longest
    /// idle first, ties broken by external key — a deterministic order, so
    /// the decay budget in [`crate::O2Policy`] always releases the same
    /// assignments for the same operation history. Walks only the idle
    /// prefix of the activity-ordered list.
    pub fn idle_objects(&self, epochs: u64) -> Vec<DenseObjectId> {
        let mut out = Vec::new();
        self.idle_objects_into(epochs, &mut out);
        out
    }

    /// Allocation-reusing form of [`ObjectRegistry::idle_objects`].
    pub fn idle_objects_into(&self, epochs: u64, out: &mut Vec<DenseObjectId>) {
        out.clear();
        let mut cursor = self.head;
        while cursor != NONE {
            let info = &self.slots[cursor as usize];
            if self.rolls.saturating_sub(info.last_active_roll) < epochs {
                break;
            }
            out.push(cursor);
            cursor = info.next;
        }
        out.sort_by_key(|&id| {
            let info = &self.slots[id as usize];
            (
                std::cmp::Reverse(self.rolls.saturating_sub(info.last_active_roll)),
                info.desc.id,
            )
        });
    }

    /// The up-to-`n` objects with the most operations last epoch (ties by
    /// external key). Only objects that were actually operated on last
    /// epoch qualify; the registry no longer pads the result with idle
    /// objects, because it never scans them.
    pub fn hottest(&self, n: usize) -> Vec<DenseObjectId> {
        let mut v: Vec<(u64, ObjectId, DenseObjectId)> = self
            .active_last_epoch()
            .map(|(id, info)| (info.ops_last_epoch, info.desc.id, id))
            .collect();
        v.sort_by_key(|&(ops, key, _)| (std::cmp::Reverse(ops), key));
        v.into_iter().take(n).map(|(_, _, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_lookup() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(0, ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        assert_eq!(reg.len(), 1);
        let info = reg.get(0).unwrap();
        assert_eq!(info.size(), 32 * 1024);
        assert_eq!(info.key(), 0x1000);
        assert!(!info.size_estimated);
        assert_eq!(info.ops_total, 0);
        assert!(reg.get(5).is_none());
    }

    #[test]
    fn record_op_updates_ewma() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(1, ObjectDescriptor::new(1, 0x1000, 4096));
        reg.record_op(1, 1, 100, 0.5, AccessKind::Write);
        assert!((reg.get(1).unwrap().ewma_misses_per_op - 100.0).abs() < 1e-9);
        reg.record_op(1, 1, 0, 0.5, AccessKind::Write);
        assert!((reg.get(1).unwrap().ewma_misses_per_op - 50.0).abs() < 1e-9);
        assert_eq!(reg.get(1).unwrap().ops_total, 2);
    }

    #[test]
    fn unknown_objects_are_auto_registered_with_estimated_size() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(3, 0x9000, 500, 0.3, AccessKind::Write);
        let info = reg.get(3).unwrap();
        assert!(info.size_estimated);
        assert_eq!(info.key(), 0x9000);
        assert_eq!(info.size(), 500 * 64);
        // A later, larger footprint grows the estimate.
        reg.record_op(3, 0x9000, 800, 0.3, AccessKind::Write);
        assert_eq!(reg.get(3).unwrap().size(), 800 * 64);
    }

    #[test]
    fn explicit_registration_overrides_estimates() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(0, 0x9000, 10, 0.3, AccessKind::Write);
        reg.register(0, ObjectDescriptor::new(0x9000, 0x9000, 1234));
        let info = reg.get(0).unwrap();
        assert_eq!(info.size(), 1234);
        assert!(!info.size_estimated);
        // Operation history is preserved.
        assert_eq!(info.ops_total, 1);
    }

    #[test]
    fn epoch_roll_tracks_idleness_and_last_epoch_ops() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(1, ObjectDescriptor::new(0x10, 0, 64));
        reg.register(2, ObjectDescriptor::new(0x20, 64, 64));
        reg.record_op(1, 0x10, 5, 0.3, AccessKind::Write);
        reg.roll_epoch();
        assert_eq!(reg.get(1).unwrap().ops_last_epoch, 1);
        assert_eq!(reg.idle_epochs(1), 0);
        assert_eq!(reg.idle_epochs(2), 1);
        reg.roll_epoch();
        assert_eq!(reg.get(1).unwrap().ops_last_epoch, 0, "credit expires");
        reg.roll_epoch();
        assert_eq!(reg.idle_objects(3), vec![2]);
        assert_eq!(reg.idle_objects(4), Vec::<DenseObjectId>::new());
        // Object 1 idles two epochs behind object 2.
        assert_eq!(reg.idle_objects(2), vec![2, 1]);
    }

    #[test]
    fn idle_objects_order_is_longest_idle_then_key() {
        let mut reg = ObjectRegistry::new(64);
        for id in 0..4u32 {
            // Keys descend so the key tie-break is visible.
            reg.register(id, ObjectDescriptor::new(0x100 - u64::from(id), 0, 64));
        }
        reg.roll_epoch();
        reg.record_op(0, 0x100, 1, 0.3, AccessKind::Write); // object 0 active in epoch 2
        reg.roll_epoch();
        // Objects 1..3 idle 2 epochs (tie broken by key: 3 has the
        // smallest key), object 0 idle 0.
        assert_eq!(reg.idle_objects(1), vec![3, 2, 1]);
        assert_eq!(reg.idle_objects(2), vec![3, 2, 1]);
    }

    #[test]
    fn hottest_orders_by_last_epoch_ops() {
        let mut reg = ObjectRegistry::new(64);
        for id in 1..=3u32 {
            reg.register(
                id,
                ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x1000, 64),
            );
        }
        for _ in 0..5 {
            reg.record_op(2, 2, 1, 0.3, AccessKind::Write);
        }
        for _ in 0..2 {
            reg.record_op(3, 3, 1, 0.3, AccessKind::Write);
        }
        reg.roll_epoch();
        assert_eq!(reg.hottest(2), vec![2, 3]);
        assert_eq!(reg.hottest(10), vec![2, 3], "idle objects never qualify");
    }

    #[test]
    fn active_last_epoch_is_exactly_the_touched_set() {
        let mut reg = ObjectRegistry::new(64);
        for id in 0..10u32 {
            reg.register(id, ObjectDescriptor::new(u64::from(id), 0, 64));
        }
        reg.record_op(3, 3, 1, 0.3, AccessKind::Write);
        reg.record_op(7, 7, 1, 0.3, AccessKind::Write);
        reg.record_op(3, 3, 1, 0.3, AccessKind::Write);
        reg.roll_epoch();
        let active: Vec<DenseObjectId> = reg.active_last_epoch().map(|(id, _)| id).collect();
        assert_eq!(active, vec![3, 7]);
        reg.roll_epoch();
        assert_eq!(reg.active_last_epoch().count(), 0);
    }

    #[test]
    fn expense_scales_with_miss_cost() {
        let mut reg = ObjectRegistry::new(64);
        reg.record_op(0, 7, 10, 1.0, AccessKind::Write);
        let info = reg.get(0).unwrap();
        assert!((info.expense(100) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn default_registry_has_working_idle_list_and_line_size() {
        // A derived Default would zero head/tail (the sentinel is
        // u32::MAX) and send idle_objects into a self-loop.
        let mut reg = ObjectRegistry::default();
        reg.record_op(0, 0x1000, 5, 0.3, AccessKind::Write);
        reg.roll_epoch();
        reg.roll_epoch();
        assert_eq!(reg.idle_objects(1), vec![0]);
        assert_eq!(reg.get(0).unwrap().size(), 5 * 64, "64-byte lines");
    }

    #[test]
    fn mid_run_registration_keeps_the_idle_list_ordered() {
        let mut reg = ObjectRegistry::new(64);
        reg.register(0, ObjectDescriptor::new(0xA, 0, 64));
        reg.roll_epoch();
        reg.roll_epoch();
        // Object 1 registers two epochs later; object 2 is touched now.
        reg.register(1, ObjectDescriptor::new(0xB, 0, 64));
        reg.record_op(2, 0xC, 1, 0.3, AccessKind::Write);
        reg.roll_epoch();
        // Idle: object 0 for 3 epochs, object 1 for 1, object 2 for 0.
        assert_eq!(reg.idle_objects(1), vec![0, 1]);
        assert_eq!(reg.idle_objects(3), vec![0]);
    }
}
