//! Read-only object replication (Section 6.2).
//!
//! "Sometimes it is better to replicate read-only objects and other times
//! it might be better to schedule more distinct objects." When enabled,
//! CoreTime replicates hot read-mostly objects into additional caches so
//! that operations on them can run on several cores, trading on-chip
//! capacity for parallelism.

use o2_runtime::{CoreId, ObjectId};

use crate::config::CoreTimeConfig;
use crate::object::ObjectRegistry;
use crate::table::AssignmentTable;

/// A planned replica creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// The object to replicate.
    pub object: ObjectId,
    /// The core that should receive the new copy.
    pub core: CoreId,
    /// Object size in bytes.
    pub size: u64,
}

/// Plans replica creations for one epoch: read-mostly objects that were
/// operated on at least `replication_hot_ops` times last epoch gain one
/// replica per epoch, up to `max_replicas`, placed on the core with the
/// most free budget.
pub fn plan(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
) -> Vec<Replica> {
    if !cfg.enable_replication {
        return Vec::new();
    }
    let mut plans = Vec::new();
    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();

    // Deterministic order: hottest objects first.
    let mut candidates: Vec<(ObjectId, u64, u64)> = registry
        .iter()
        .filter(|(_, info)| info.desc.read_mostly)
        .filter(|(_, info)| info.ops_last_epoch >= cfg.replication_hot_ops)
        .map(|(id, info)| (*id, info.ops_last_epoch, info.size()))
        .collect();
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for (object, _ops, size) in candidates {
        let existing = table.replicas(object);
        if existing.is_empty() || existing.len() >= cfg.max_replicas as usize {
            continue;
        }
        // Pick the core with the most free budget that has no copy yet.
        let target = (0..table.num_cores() as CoreId)
            .filter(|c| !existing.contains(c) && free[*c as usize] >= size)
            .max_by_key(|c| free[*c as usize]);
        if let Some(core) = target {
            free[core as usize] -= size;
            plans.push(Replica { object, core, size });
        }
    }
    plans
}

/// Chooses which copy of a replicated object an operation should use: the
/// one closest to the requesting core (by chip hop distance), breaking ties
/// towards the lowest core id for determinism.
pub fn nearest_replica(
    replicas: &[CoreId],
    from_core: CoreId,
    hops: impl Fn(CoreId, CoreId) -> u32,
) -> Option<CoreId> {
    replicas
        .iter()
        .copied()
        .min_by_key(|&c| (hops(from_core, c), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::ObjectDescriptor;

    fn setup(hot_ops: u64, read_mostly: bool) -> (CoreTimeConfig, AssignmentTable, ObjectRegistry) {
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_replication = true;
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut registry = ObjectRegistry::new(64);
        registry.register(ObjectDescriptor::new(1, 0x1000, 8_000).read_mostly(read_mostly));
        for _ in 0..hot_ops {
            registry.record_op(1, 4, 0.3);
        }
        registry.roll_epoch();
        table.assign(1, 8_000, 0);
        (cfg, table, registry)
    }

    #[test]
    fn hot_read_mostly_objects_gain_replicas() {
        let (cfg, table, registry) = setup(100, true);
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object, 1);
        assert_ne!(plans[0].core, 0);
    }

    #[test]
    fn cold_or_writable_objects_are_not_replicated() {
        let (cfg, table, registry) = setup(10, true);
        assert!(plan(&cfg, &table, &registry).is_empty());
        let (cfg, table, registry) = setup(100, false);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn disabled_replication_plans_nothing() {
        let (mut cfg, table, registry) = setup(100, true);
        cfg.enable_replication = false;
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn replica_count_is_capped() {
        let (mut cfg, mut table, registry) = setup(100, true);
        cfg.max_replicas = 2;
        table.add_replica(1, 8_000, 1);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn unassigned_objects_are_not_replicated() {
        let (cfg, mut table, registry) = setup(100, true);
        table.unassign(1, 8_000);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn nearest_replica_prefers_same_chip() {
        // Pretend cores 0-3 are chip 0 and 4-7 chip 1.
        let hops = |a: CoreId, b: CoreId| u32::from((a / 4) != (b / 4));
        assert_eq!(nearest_replica(&[6, 2], 1, hops), Some(2));
        assert_eq!(nearest_replica(&[6, 2], 5, hops), Some(6));
        assert_eq!(nearest_replica(&[], 0, hops), None);
        // Tie: lowest core id wins.
        assert_eq!(nearest_replica(&[3, 1], 0, hops), Some(1));
    }
}
