//! Read-only object replication (Section 6.2).
//!
//! "Sometimes it is better to replicate read-only objects and other times
//! it might be better to schedule more distinct objects." When enabled,
//! CoreTime replicates hot read-mostly objects into additional caches so
//! that operations on them can run on several cores, trading on-chip
//! capacity for parallelism.

use o2_runtime::{CoreId, DenseObjectId, ObjectId};

use crate::config::CoreTimeConfig;
use crate::object::ObjectRegistry;
use crate::table::AssignmentTable;

/// A planned replica creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// The object to replicate.
    pub object: DenseObjectId,
    /// The core that should receive the new copy.
    pub core: CoreId,
    /// Object size in bytes.
    pub size: u64,
}

/// Plans replica creations for one epoch from the static `read_mostly`
/// hint: hinted objects that were operated on at least
/// `replication_hot_ops` times last epoch gain **at most one replica per
/// object per call** (one per epoch), placed on the core with the most
/// free budget.
///
/// `max_replicas` caps the **total copies** of an object, the primary
/// included: with `max_replicas = 2` an object holding a primary plus one
/// replica is already at the cap and gains nothing. See
/// [`plan_promotions`] for the measured-read-fraction planner that
/// replicates proportionally to heat in a single epoch.
pub fn plan(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
) -> Vec<Replica> {
    if !cfg.enable_replication {
        return Vec::new();
    }
    let mut plans = Vec::new();
    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();

    // Deterministic order: hottest objects first, ties by external key.
    // With a positive hot-ops threshold only objects operated on last
    // epoch can qualify, so the normal path walks the registry's dirty
    // list instead of scanning every object; a threshold of zero means
    // "replicate every read-mostly object", which needs the full scan.
    let collect = |it: &mut dyn Iterator<Item = (DenseObjectId, &crate::object::ObjectInfo)>| {
        it.filter(|(_, info)| info.desc.read_mostly)
            .filter(|(_, info)| info.ops_last_epoch >= cfg.replication_hot_ops)
            .map(|(id, info)| (id, info.ops_last_epoch, info.key()))
            .collect::<Vec<_>>()
    };
    let mut candidates: Vec<(DenseObjectId, u64, ObjectId)> = if cfg.replication_hot_ops == 0 {
        collect(&mut registry.iter())
    } else {
        collect(&mut registry.active_last_epoch())
    };
    candidates.sort_by_key(|&(_, ops, key)| (std::cmp::Reverse(ops), key));

    for (object, _ops, _key) in candidates {
        let existing = table.replicas(object);
        if existing.is_empty() || existing.len() >= cfg.max_replicas as usize {
            continue;
        }
        // Budget with the size each copy is actually charged at in the
        // table (the assign-time size), not the registry's current size —
        // the two can diverge after re-registration or estimate growth,
        // and `add_replica` will charge the former.
        // Invariant: `object` was taken from the table's assigned set, so
        // it has a charge.
        debug_assert!(table.is_assigned(object));
        let size = table
            .charged_bytes(object)
            .expect("assigned object has a charge");
        // Pick the core with the most free budget that has no copy yet.
        let target = (0..table.num_cores() as CoreId)
            .filter(|&c| !existing.contains(c) && free[c as usize] >= size)
            .max_by_key(|&c| free[c as usize]);
        if let Some(core) = target {
            free[core as usize] -= size;
            plans.push(Replica { object, core, size });
        }
    }
    plans
}

/// Plans replica drops for one epoch under measured-read-fraction serving:
/// every replicated object that was operated on last epoch and whose
/// smoothed read fraction fell below `replica_demote_read_fraction` loses
/// its extra copies. Objects idle last epoch keep their replicas — with no
/// reads *or* writes there is no evidence the mix changed. The demotion
/// threshold sits below the promotion threshold, so a borderline object
/// does not flap between the two every epoch.
pub fn plan_demotions(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
) -> Vec<DenseObjectId> {
    let mut drops: Vec<(ObjectId, DenseObjectId)> = registry
        .active_last_epoch()
        .filter(|&(id, info)| {
            table.replicas(id).len() > 1
                && info.ewma_read_fraction < cfg.replica_demote_read_fraction
        })
        .map(|(id, info)| (info.key(), id))
        .collect();
    drops.sort_unstable();
    drops.into_iter().map(|(_, id)| id).collect()
}

/// Plans replica creations for one epoch under measured-read-fraction
/// serving. Unlike [`plan`], this planner needs no static hint and is not
/// limited to one replica per epoch: an object hot enough to deserve `k`
/// copies gets all `k - existing` new replicas in this call, so a newly
/// hot head does not take `k` epochs to spread.
///
/// Candidates are the objects operated on last epoch with at least
/// `replication_hot_ops` operations and a smoothed read fraction at or
/// above `replica_promote_read_fraction`. The copy target scales with
/// heat — `1 + ops_last_epoch / replication_hot_ops` copies, capped at
/// `max_replicas` total (primary included). New copies go to the cores
/// with the most free budget among those holding no copy and not in
/// `avoid_mask` (offline or degraded cores never receive replicas).
pub fn plan_promotions(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
    avoid_mask: u64,
) -> Vec<Replica> {
    if !cfg.enable_replication || !cfg.serve_from_replicas {
        return Vec::new();
    }
    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();
    let mut candidates: Vec<(DenseObjectId, u64, ObjectId)> = registry
        .active_last_epoch()
        .filter(|(_, info)| {
            info.ops_last_epoch >= cfg.replication_hot_ops.max(1)
                && info.ewma_read_fraction >= cfg.replica_promote_read_fraction
        })
        .map(|(id, info)| (id, info.ops_last_epoch, info.key()))
        .collect();
    candidates.sort_by_key(|&(_, ops, key)| (std::cmp::Reverse(ops), key));

    let mut plans = Vec::new();
    for (object, ops, _key) in candidates {
        let existing = table.replicas(object);
        if existing.is_empty() {
            continue;
        }
        let heat = 1 + ops / cfg.replication_hot_ops.max(1);
        let target = heat.min(u64::from(cfg.max_replicas)) as usize;
        if existing.len() >= target {
            continue;
        }
        // Invariant: `object` came from the table's assigned set above.
        let size = table
            .charged_bytes(object)
            .expect("assigned object has a charge");
        let mut holders = existing.mask();
        for _ in existing.len()..target {
            let core = (0..table.num_cores() as CoreId)
                .filter(|&c| {
                    holders & (1u64 << c) == 0
                        && avoid_mask & (1u64 << c) == 0
                        && free[c as usize] >= size
                })
                .max_by_key(|&c| free[c as usize]);
            let Some(core) = core else {
                break;
            };
            holders |= 1u64 << core;
            free[core as usize] -= size;
            plans.push(Replica { object, core, size });
        }
    }
    plans
}

/// Plans idle-time cache fills for one epoch under measured serving:
/// every copy (primary included) of every object that currently qualifies
/// for read serving — operated on last epoch, at least
/// `replication_hot_ops` ops, read fraction at or above the promote
/// threshold — is re-streamed into its core's caches by the engine the
/// next time that core has nothing runnable. This is the data-movement
/// half of promotion: bookkeeping alone leaves the first post-write read
/// on each core paying the remote refill inline, while a background fill
/// absorbs it into an arrival gap. Copies on avoided cores are skipped.
///
/// Hottest objects first (ties by external key), so a core that finds
/// only a short idle gap warms the head before the tail.
pub fn plan_fills(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
    avoid_mask: u64,
) -> Vec<(DenseObjectId, CoreId)> {
    if !cfg.enable_replication || !cfg.serve_from_replicas {
        return Vec::new();
    }
    let mut candidates: Vec<(DenseObjectId, u64, ObjectId)> = registry
        .active_last_epoch()
        .filter(|(_, info)| {
            info.ops_last_epoch >= cfg.replication_hot_ops.max(1)
                && info.ewma_read_fraction >= cfg.replica_promote_read_fraction
        })
        .map(|(id, info)| (id, info.ops_last_epoch, info.key()))
        .collect();
    candidates.sort_by_key(|&(_, ops, key)| (std::cmp::Reverse(ops), key));
    let mut fills = Vec::new();
    for (object, _ops, _key) in candidates {
        let mut bits = table.replicas(object).mask() & !avoid_mask;
        while bits != 0 {
            let core = bits.trailing_zeros();
            bits &= bits - 1;
            fills.push((object, core));
        }
    }
    fills
}

/// Chooses which copy of a replicated object an operation should use: the
/// one closest to the requesting core (by chip hop distance), breaking ties
/// towards the lowest core id for determinism. Takes any core iterator, so
/// it consumes the assignment table's inline bitmask without allocating.
pub fn nearest_replica(
    replicas: impl IntoIterator<Item = CoreId>,
    from_core: CoreId,
    hops: impl Fn(CoreId, CoreId) -> u32,
) -> Option<CoreId> {
    replicas
        .into_iter()
        .min_by_key(|&c| (hops(from_core, c), c))
}

/// Replica selection for measured serving: still prefers the closest copy
/// (a hop-0 local copy always wins), but breaks distance ties by a
/// caller-supplied rotation counter instead of the lowest core id — the
/// tie-break that re-serialized a replicated head onto one copy. The
/// caller advances `rotor` once per selection, so equal-distance copies
/// receive requests round-robin, deterministically. Allocation-free: two
/// passes over the copies bitmask.
pub fn select_replica_rotated(
    mask: u64,
    from_core: CoreId,
    hops: impl Fn(CoreId, CoreId) -> u32,
    rotor: u64,
) -> Option<CoreId> {
    // A copy on the requesting core itself is unbeatable: zero hops *and*
    // no migration. The hop metric is chip-granular, so without this the
    // local copy would tie with its chip-mates at hop 0 and the rotor
    // would bounce requests between neighbours that all hold the data.
    if mask & (1u64 << from_core) != 0 {
        return Some(from_core);
    }
    let mut min_hops = u32::MAX;
    let mut ties = 0u64;
    let mut bits = mask;
    while bits != 0 {
        let c = bits.trailing_zeros();
        bits &= bits - 1;
        let h = hops(from_core, c);
        if h < min_hops {
            min_hops = h;
            ties = 1;
        } else if h == min_hops {
            ties += 1;
        }
    }
    if ties == 0 {
        return None;
    }
    let skip = rotor % ties;
    let mut seen = 0u64;
    let mut bits = mask;
    while bits != 0 {
        let c = bits.trailing_zeros();
        bits &= bits - 1;
        if hops(from_core, c) == min_hops {
            if seen == skip {
                return Some(c);
            }
            seen += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{AccessKind, ObjectDescriptor};

    fn setup(hot_ops: u64, read_mostly: bool) -> (CoreTimeConfig, AssignmentTable, ObjectRegistry) {
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_replication = true;
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut registry = ObjectRegistry::new(64);
        registry.register(
            1,
            ObjectDescriptor::new(1, 0x1000, 8_000).read_mostly(read_mostly),
        );
        for _ in 0..hot_ops {
            registry.record_op(1, 1, 4, 0.3, AccessKind::Write);
        }
        registry.roll_epoch();
        table.assign(1, 8_000, 0);
        (cfg, table, registry)
    }

    /// Like `setup`, but with measured serving enabled and the object's
    /// last-epoch ops recorded with the given access kind (no static
    /// `read_mostly` hint — serving must not need it).
    fn serving_setup(
        ops: u64,
        kind: AccessKind,
    ) -> (CoreTimeConfig, AssignmentTable, ObjectRegistry) {
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_replication = true;
        cfg.serve_from_replicas = true;
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut registry = ObjectRegistry::new(64);
        registry.register(1, ObjectDescriptor::new(1, 0x1000, 8_000));
        for _ in 0..ops {
            registry.record_op(1, 1, 4, 0.3, kind);
        }
        registry.roll_epoch();
        table.assign(1, 8_000, 0);
        (cfg, table, registry)
    }

    #[test]
    fn hot_read_mostly_objects_gain_replicas() {
        let (cfg, table, registry) = setup(100, true);
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object, 1);
        assert_ne!(plans[0].core, 0);
    }

    #[test]
    fn cold_or_writable_objects_are_not_replicated() {
        let (cfg, table, registry) = setup(10, true);
        assert!(plan(&cfg, &table, &registry).is_empty());
        let (cfg, table, registry) = setup(100, false);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn disabled_replication_plans_nothing() {
        let (mut cfg, table, registry) = setup(100, true);
        cfg.enable_replication = false;
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn replica_count_is_capped() {
        let (mut cfg, mut table, registry) = setup(100, true);
        cfg.max_replicas = 2;
        table.add_replica(1, 1);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn zero_hot_ops_threshold_replicates_idle_read_mostly_objects() {
        // A threshold of zero means every assigned read-mostly object
        // qualifies, even one that was idle last epoch — this takes the
        // full-scan path rather than the dirty-list fast path.
        let (mut cfg, table, mut registry) = setup(0, true);
        cfg.replication_hot_ops = 0;
        registry.roll_epoch(); // object 1 is now idle (no ops last epoch)
        assert_eq!(registry.get(1).unwrap().ops_last_epoch, 0);
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object, 1);
    }

    #[test]
    fn plans_budget_with_the_charged_size_after_a_size_drift() {
        // The object was assigned at 8 000 bytes; a later re-registration
        // shrinks its registry size. The plan must still budget (and
        // report) the charged 8 000, since that is what add_replica will
        // charge.
        let (cfg, table, mut registry) = setup(100, true);
        registry.register(1, ObjectDescriptor::new(1, 0x1000, 4_000).read_mostly(true));
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].size, 8_000);
    }

    #[test]
    fn unassigned_objects_are_not_replicated() {
        let (cfg, mut table, registry) = setup(100, true);
        table.unassign(1);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn max_replicas_counts_the_primary_as_a_copy() {
        // Boundary pin for the cap semantics: `max_replicas = 1` means
        // "primary only" — even a blazing-hot hinted object gains nothing,
        // from either planner.
        let (mut cfg, table, registry) = setup(10_000, true);
        cfg.max_replicas = 1;
        assert!(plan(&cfg, &table, &registry).is_empty());
        let (mut cfg, table, mut registry) = serving_setup(10_000, AccessKind::Read);
        cfg.max_replicas = 1;
        assert!(plan_promotions(&cfg, &table, &registry, 0).is_empty());
        // `max_replicas = 2` admits exactly one extra copy beyond the
        // primary, however hot the object.
        cfg.max_replicas = 2;
        assert_eq!(plan_promotions(&cfg, &table, &registry, 0).len(), 1);
        // And the hinted planner adds at most one replica per call even
        // with cap headroom.
        cfg.max_replicas = 4;
        registry.get_mut(1).unwrap().desc.read_mostly = true;
        assert_eq!(plan(&cfg, &table, &registry).len(), 1);
    }

    #[test]
    fn promotion_replicates_proportionally_to_heat_in_one_call() {
        // 300 ops at hot_ops=64 wants 1 + 300/64 = 5 total copies, capped
        // at max_replicas=4: three new replicas appear in a single epoch,
        // one per remaining core.
        let (cfg, table, registry) = serving_setup(300, AccessKind::Read);
        let plans = plan_promotions(&cfg, &table, &registry, 0);
        assert_eq!(plans.len(), 3);
        let mut cores: Vec<CoreId> = plans.iter().map(|p| p.core).collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![1, 2, 3]);
        // Barely hot wants only 1 + 64/64 = 2 total copies.
        let (cfg, table, registry) = serving_setup(64, AccessKind::Read);
        assert_eq!(plan_promotions(&cfg, &table, &registry, 0).len(), 1);
    }

    #[test]
    fn write_heavy_or_gated_objects_are_never_promoted() {
        // All-write history: measured read fraction 0.0 < promote 0.90.
        let (cfg, table, registry) = serving_setup(300, AccessKind::Write);
        assert!(plan_promotions(&cfg, &table, &registry, 0).is_empty());
        // Serving off (or replication off) plans nothing.
        let (mut cfg, table, registry) = serving_setup(300, AccessKind::Read);
        cfg.serve_from_replicas = false;
        assert!(plan_promotions(&cfg, &table, &registry, 0).is_empty());
        // Too few ops last epoch.
        let (cfg, table, registry) = serving_setup(10, AccessKind::Read);
        assert!(plan_promotions(&cfg, &table, &registry, 0).is_empty());
    }

    #[test]
    fn avoided_cores_never_receive_promotions() {
        let (cfg, table, registry) = serving_setup(10_000, AccessKind::Read);
        // Cores 1 and 2 are avoided (offline/degraded): only core 3 may
        // receive a copy.
        let plans = plan_promotions(&cfg, &table, &registry, 0b0110);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].core, 3);
    }

    #[test]
    fn demotion_drops_mixed_objects_but_spares_idle_and_read_heavy_ones() {
        // Mixed history → EWMA read fraction far below the demote
        // threshold → demoted.
        let (cfg, mut table, mut registry) = serving_setup(100, AccessKind::Write);
        table.add_replica(1, 1);
        assert_eq!(plan_demotions(&cfg, &table, &registry), vec![1]);
        // Idle last epoch: no evidence the mix changed, keep the copies.
        registry.roll_epoch();
        assert!(plan_demotions(&cfg, &table, &registry).is_empty());
        // Read-heavy object above the demote threshold stays promoted.
        let (cfg, mut table, registry) = serving_setup(100, AccessKind::Read);
        table.add_replica(1, 1);
        assert!(plan_demotions(&cfg, &table, &registry).is_empty());
        // Unreplicated objects are never demotion candidates.
        let (cfg, table, registry) = serving_setup(100, AccessKind::Write);
        assert!(plan_demotions(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn fill_plan_lists_every_copy_of_the_serving_head_and_skips_avoided_cores() {
        let (cfg, mut table, registry) = serving_setup(300, AccessKind::Read);
        table.add_replica(1, 1);
        table.add_replica(1, 3);
        // Every copy, the primary included, in ascending core order.
        assert_eq!(
            plan_fills(&cfg, &table, &registry, 0),
            vec![(1, 0), (1, 1), (1, 3)]
        );
        // Copies on avoided cores are skipped, not re-targeted.
        assert_eq!(
            plan_fills(&cfg, &table, &registry, 0b0001),
            vec![(1, 1), (1, 3)]
        );
        // Serving off plans nothing even for a qualifying object.
        let mut off = cfg;
        off.serve_from_replicas = false;
        assert!(plan_fills(&off, &table, &registry, 0).is_empty());
        // A write-heavy object is below the promote threshold: its copies
        // are never re-streamed.
        let (cfg, mut table, registry) = serving_setup(300, AccessKind::Write);
        table.add_replica(1, 1);
        assert!(plan_fills(&cfg, &table, &registry, 0).is_empty());
    }

    #[test]
    fn rotated_selection_spreads_distance_ties_and_keeps_local_wins() {
        let hops = |a: CoreId, b: CoreId| u32::from((a / 4) != (b / 4));
        // Copies on 1, 2 and 6; requester on core 0 (chip 0): cores 1 and
        // 2 tie at hop 0 (same chip) and the rotor walks the tied pair
        // round-robin, deterministically.
        let mask = (1u64 << 1) | (1u64 << 2) | (1u64 << 6);
        assert_eq!(select_replica_rotated(mask, 0, hops, 0), Some(1));
        assert_eq!(select_replica_rotated(mask, 0, hops, 1), Some(2));
        assert_eq!(select_replica_rotated(mask, 0, hops, 2), Some(1));
        // A strictly closer copy wins regardless of the rotor.
        assert_eq!(select_replica_rotated(mask, 5, hops, 0), Some(6));
        assert_eq!(select_replica_rotated(mask, 5, hops, 7), Some(6));
        // Empty mask: nothing to pick.
        assert_eq!(select_replica_rotated(0, 0, hops, 3), None);
    }

    #[test]
    fn nearest_replica_prefers_same_chip() {
        // Pretend cores 0-3 are chip 0 and 4-7 chip 1.
        let hops = |a: CoreId, b: CoreId| u32::from((a / 4) != (b / 4));
        assert_eq!(nearest_replica([6, 2], 1, hops), Some(2));
        assert_eq!(nearest_replica([6, 2], 5, hops), Some(6));
        assert_eq!(nearest_replica([], 0, hops), None);
        // Tie: lowest core id wins.
        assert_eq!(nearest_replica([3, 1], 0, hops), Some(1));
    }
}
