//! Read-only object replication (Section 6.2).
//!
//! "Sometimes it is better to replicate read-only objects and other times
//! it might be better to schedule more distinct objects." When enabled,
//! CoreTime replicates hot read-mostly objects into additional caches so
//! that operations on them can run on several cores, trading on-chip
//! capacity for parallelism.

use o2_runtime::{CoreId, DenseObjectId, ObjectId};

use crate::config::CoreTimeConfig;
use crate::object::ObjectRegistry;
use crate::table::AssignmentTable;

/// A planned replica creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// The object to replicate.
    pub object: DenseObjectId,
    /// The core that should receive the new copy.
    pub core: CoreId,
    /// Object size in bytes.
    pub size: u64,
}

/// Plans replica creations for one epoch: read-mostly objects that were
/// operated on at least `replication_hot_ops` times last epoch gain one
/// replica per epoch, up to `max_replicas`, placed on the core with the
/// most free budget.
pub fn plan(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
) -> Vec<Replica> {
    if !cfg.enable_replication {
        return Vec::new();
    }
    let mut plans = Vec::new();
    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();

    // Deterministic order: hottest objects first, ties by external key.
    // With a positive hot-ops threshold only objects operated on last
    // epoch can qualify, so the normal path walks the registry's dirty
    // list instead of scanning every object; a threshold of zero means
    // "replicate every read-mostly object", which needs the full scan.
    let collect = |it: &mut dyn Iterator<Item = (DenseObjectId, &crate::object::ObjectInfo)>| {
        it.filter(|(_, info)| info.desc.read_mostly)
            .filter(|(_, info)| info.ops_last_epoch >= cfg.replication_hot_ops)
            .map(|(id, info)| (id, info.ops_last_epoch, info.key()))
            .collect::<Vec<_>>()
    };
    let mut candidates: Vec<(DenseObjectId, u64, ObjectId)> = if cfg.replication_hot_ops == 0 {
        collect(&mut registry.iter())
    } else {
        collect(&mut registry.active_last_epoch())
    };
    candidates.sort_by_key(|&(_, ops, key)| (std::cmp::Reverse(ops), key));

    for (object, _ops, _key) in candidates {
        let existing = table.replicas(object);
        if existing.is_empty() || existing.len() >= cfg.max_replicas as usize {
            continue;
        }
        // Budget with the size each copy is actually charged at in the
        // table (the assign-time size), not the registry's current size —
        // the two can diverge after re-registration or estimate growth,
        // and `add_replica` will charge the former.
        // Invariant: `object` was taken from the table's assigned set, so
        // it has a charge.
        debug_assert!(table.is_assigned(object));
        let size = table
            .charged_bytes(object)
            .expect("assigned object has a charge");
        // Pick the core with the most free budget that has no copy yet.
        let target = (0..table.num_cores() as CoreId)
            .filter(|&c| !existing.contains(c) && free[c as usize] >= size)
            .max_by_key(|&c| free[c as usize]);
        if let Some(core) = target {
            free[core as usize] -= size;
            plans.push(Replica { object, core, size });
        }
    }
    plans
}

/// Chooses which copy of a replicated object an operation should use: the
/// one closest to the requesting core (by chip hop distance), breaking ties
/// towards the lowest core id for determinism. Takes any core iterator, so
/// it consumes the assignment table's inline bitmask without allocating.
pub fn nearest_replica(
    replicas: impl IntoIterator<Item = CoreId>,
    from_core: CoreId,
    hops: impl Fn(CoreId, CoreId) -> u32,
) -> Option<CoreId> {
    replicas
        .into_iter()
        .min_by_key(|&c| (hops(from_core, c), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::ObjectDescriptor;

    fn setup(hot_ops: u64, read_mostly: bool) -> (CoreTimeConfig, AssignmentTable, ObjectRegistry) {
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_replication = true;
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let mut registry = ObjectRegistry::new(64);
        registry.register(
            1,
            ObjectDescriptor::new(1, 0x1000, 8_000).read_mostly(read_mostly),
        );
        for _ in 0..hot_ops {
            registry.record_op(1, 1, 4, 0.3);
        }
        registry.roll_epoch();
        table.assign(1, 8_000, 0);
        (cfg, table, registry)
    }

    #[test]
    fn hot_read_mostly_objects_gain_replicas() {
        let (cfg, table, registry) = setup(100, true);
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object, 1);
        assert_ne!(plans[0].core, 0);
    }

    #[test]
    fn cold_or_writable_objects_are_not_replicated() {
        let (cfg, table, registry) = setup(10, true);
        assert!(plan(&cfg, &table, &registry).is_empty());
        let (cfg, table, registry) = setup(100, false);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn disabled_replication_plans_nothing() {
        let (mut cfg, table, registry) = setup(100, true);
        cfg.enable_replication = false;
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn replica_count_is_capped() {
        let (mut cfg, mut table, registry) = setup(100, true);
        cfg.max_replicas = 2;
        table.add_replica(1, 1);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn zero_hot_ops_threshold_replicates_idle_read_mostly_objects() {
        // A threshold of zero means every assigned read-mostly object
        // qualifies, even one that was idle last epoch — this takes the
        // full-scan path rather than the dirty-list fast path.
        let (mut cfg, table, mut registry) = setup(0, true);
        cfg.replication_hot_ops = 0;
        registry.roll_epoch(); // object 1 is now idle (no ops last epoch)
        assert_eq!(registry.get(1).unwrap().ops_last_epoch, 0);
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object, 1);
    }

    #[test]
    fn plans_budget_with_the_charged_size_after_a_size_drift() {
        // The object was assigned at 8 000 bytes; a later re-registration
        // shrinks its registry size. The plan must still budget (and
        // report) the charged 8 000, since that is what add_replica will
        // charge.
        let (cfg, table, mut registry) = setup(100, true);
        registry.register(1, ObjectDescriptor::new(1, 0x1000, 4_000).read_mostly(true));
        let plans = plan(&cfg, &table, &registry);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].size, 8_000);
    }

    #[test]
    fn unassigned_objects_are_not_replicated() {
        let (cfg, mut table, registry) = setup(100, true);
        table.unassign(1);
        assert!(plan(&cfg, &table, &registry).is_empty());
    }

    #[test]
    fn nearest_replica_prefers_same_chip() {
        // Pretend cores 0-3 are chip 0 and 4-7 chip 1.
        let hops = |a: CoreId, b: CoreId| u32::from((a / 4) != (b / 4));
        assert_eq!(nearest_replica([6, 2], 1, hops), Some(2));
        assert_eq!(nearest_replica([6, 2], 5, hops), Some(6));
        assert_eq!(nearest_replica([], 0, hops), None);
        // Tie: lowest core id wins.
        assert_eq!(nearest_replica([3, 1], 0, hops), Some(1));
    }
}
