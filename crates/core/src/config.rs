//! CoreTime configuration.

/// Tunable parameters of the CoreTime O2 scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTimeConfig {
    /// EWMA smoothing factor for per-object miss rates (0 < alpha <= 1).
    pub ewma_alpha: f64,
    /// Minimum smoothed private-cache misses per operation for an object to
    /// be considered "expensive to fetch" (Section 4, runtime monitoring).
    pub miss_threshold_per_op: f64,
    /// Operations that must be observed on an object before it can be
    /// assigned (avoids reacting to a single cold-start miss burst).
    pub min_ops_before_assign: u64,
    /// Estimated cost of one private-cache miss, in cycles, used in the
    /// "is migration worth it" comparison. The paper's criterion: migrating
    /// an operation is only beneficial when the migration cost is less than
    /// the cost of fetching the object from DRAM or a remote cache.
    pub miss_cost_estimate: u64,
    /// Estimated one-way migration cost in cycles (the paper measured
    /// ~2000 on the AMD system).
    pub migration_cost_estimate: u64,
    /// Fraction of each core's cache budget (L2 + its share of the L3) that
    /// the packer is allowed to fill.
    pub capacity_fraction: f64,
    /// Idle fraction below which a core counts as saturated for the
    /// rebalancer.
    pub low_idle_fraction: f64,
    /// Idle fraction above which a core counts as under-used.
    pub high_idle_fraction: f64,
    /// DRAM loads per thousand busy cycles above which a core counts as
    /// memory-starved.
    pub high_dram_rate: f64,
    /// Fraction of an overloaded core's assigned bytes moved per rebalance.
    pub rebalance_move_fraction: f64,
    /// Minimum operations per core per epoch before the rebalancer and the
    /// pathology detector act: with fewer samples the per-core counters are
    /// noise and reacting to them just churns the caches.
    pub min_epoch_ops_per_core: u64,
    /// Operations-per-epoch imbalance factor that triggers pathology
    /// handling (a single core receiving far more operations than average).
    pub pathology_factor: f64,
    /// Maximum objects moved away from one hot core per epoch by the
    /// pathology detector.
    pub pathology_max_moves: usize,
    /// Whether idle assignments are ever released ("decay"). The paper's
    /// CoreTime never unassigns an object; decay is part of the
    /// Section 6.2 replacement discussion and is therefore off by default.
    pub enable_decay: bool,
    /// Epochs of inactivity after which an assigned object is released.
    pub decay_epochs: u64,
    /// Fraction of the total packing capacity that must be in use before
    /// idle assignments are released. Decaying assignments only matters
    /// when the budget is scarce; releasing them under no pressure just
    /// throws away placement the workload may come back to.
    pub decay_pressure_threshold: f64,
    /// Enable replication of read-mostly objects (Section 6.2).
    pub enable_replication: bool,
    /// Maximum **total copies** of a replicated object, the primary
    /// included: `max_replicas = 4` means one primary plus at most three
    /// extra replicas.
    pub max_replicas: u32,
    /// Operations per epoch above which a read-mostly object is considered
    /// hot enough to replicate.
    pub replication_hot_ops: u64,
    /// Serve operations from replicas based on the *measured* per-object
    /// read fraction instead of the static `read_mostly` hint: promotion
    /// replicates the hot head proportionally to its heat, a write
    /// invalidates every non-primary copy at `ct_start`, and replica
    /// selection rotates across equal-distance copies. Requires
    /// `enable_replication`. Off by default so the legacy hint-driven
    /// replication path stays bit-identical.
    pub serve_from_replicas: bool,
    /// Measured read fraction (EWMA) at or above which a hot object is
    /// promoted to extra replicas when `serve_from_replicas` is on.
    pub replica_promote_read_fraction: f64,
    /// Measured read fraction (EWMA) below which a replicated object loses
    /// its extra replicas at the epoch boundary. Kept well under the
    /// promotion threshold so a borderline object does not flap between
    /// promoted and demoted every epoch.
    pub replica_demote_read_fraction: f64,
    /// Enable object clustering: objects used together are co-located
    /// (Section 6.2).
    pub enable_clustering: bool,
    /// Co-access count after which two objects are considered clustered.
    pub clustering_threshold: u64,
    /// Enable frequency-based admission when the expensive working set is
    /// larger than the total on-chip budget (Section 6.2).
    pub enable_replacement: bool,
}

impl Default for CoreTimeConfig {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.3,
            miss_threshold_per_op: 8.0,
            min_ops_before_assign: 3,
            miss_cost_estimate: 120,
            migration_cost_estimate: 2000,
            capacity_fraction: 0.90,
            low_idle_fraction: 0.02,
            high_idle_fraction: 0.20,
            high_dram_rate: 20.0,
            rebalance_move_fraction: 0.25,
            min_epoch_ops_per_core: 16,
            pathology_factor: 3.0,
            pathology_max_moves: 2,
            enable_decay: false,
            decay_epochs: 8,
            decay_pressure_threshold: 0.70,
            enable_replication: false,
            max_replicas: 4,
            replication_hot_ops: 64,
            serve_from_replicas: false,
            replica_promote_read_fraction: 0.90,
            replica_demote_read_fraction: 0.60,
            enable_clustering: false,
            clustering_threshold: 16,
            enable_replacement: false,
        }
    }
}

impl CoreTimeConfig {
    /// Enables every Section-6.2 extension (replication, clustering and
    /// frequency-based replacement).
    pub fn with_all_extensions() -> Self {
        Self {
            enable_decay: true,
            enable_replication: true,
            enable_clustering: true,
            enable_replacement: true,
            ..Self::default()
        }
    }

    /// Whether an object with the given smoothed miss rate is worth
    /// assigning: the expected fetch cost per operation must exceed the
    /// migration cost.
    pub fn migration_is_beneficial(&self, ewma_misses_per_op: f64) -> bool {
        ewma_misses_per_op >= self.miss_threshold_per_op
            && ewma_misses_per_op * self.miss_cost_estimate as f64
                > self.migration_cost_estimate as f64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.ewma_alpha) || self.ewma_alpha == 0.0 {
            return Err("ewma_alpha must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.capacity_fraction) || self.capacity_fraction == 0.0 {
            return Err("capacity_fraction must be in (0, 1]".into());
        }
        if self.rebalance_move_fraction < 0.0 || self.rebalance_move_fraction > 1.0 {
            return Err("rebalance_move_fraction must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.decay_pressure_threshold) {
            return Err("decay_pressure_threshold must be in [0, 1]".into());
        }
        if self.max_replicas == 0 {
            return Err("max_replicas must be at least 1".into());
        }
        if self.serve_from_replicas && !self.enable_replication {
            return Err("serve_from_replicas requires enable_replication".into());
        }
        if !(0.0..=1.0).contains(&self.replica_promote_read_fraction)
            || !(0.0..=1.0).contains(&self.replica_demote_read_fraction)
        {
            return Err("replica read-fraction thresholds must be in [0, 1]".into());
        }
        if self.replica_demote_read_fraction > self.replica_promote_read_fraction {
            return Err(
                "replica_demote_read_fraction must not exceed the promote threshold".into(),
            );
        }
        if self.pathology_factor < 1.0 {
            return Err("pathology_factor must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        CoreTimeConfig::default().validate().unwrap();
        CoreTimeConfig::with_all_extensions().validate().unwrap();
    }

    #[test]
    fn extensions_preset_enables_everything() {
        let c = CoreTimeConfig::with_all_extensions();
        assert!(c.enable_replication && c.enable_clustering && c.enable_replacement);
    }

    #[test]
    fn benefit_test_matches_the_papers_criterion() {
        let c = CoreTimeConfig::default();
        // 250 misses/op at ~120 cycles each is far more than 2000 cycles.
        assert!(c.migration_is_beneficial(250.0));
        // 4 misses/op is under the floor.
        assert!(!c.migration_is_beneficial(4.0));
        // 10 misses/op clears the floor but not the cost comparison
        // (10 * 120 = 1200 < 2000).
        assert!(!c.migration_is_beneficial(10.0));
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut c = CoreTimeConfig::default();
        c.ewma_alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = CoreTimeConfig::default();
        c.capacity_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = CoreTimeConfig::default();
        c.rebalance_move_fraction = -0.1;
        assert!(c.validate().is_err());
        let mut c = CoreTimeConfig::default();
        c.max_replicas = 0;
        assert!(c.validate().is_err());
        let mut c = CoreTimeConfig::default();
        c.pathology_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = CoreTimeConfig::default();
        c.serve_from_replicas = true;
        assert!(c.validate().is_err(), "serving needs enable_replication");
        c.enable_replication = true;
        assert!(c.validate().is_ok());
        c.replica_demote_read_fraction = 0.95;
        assert!(c.validate().is_err(), "demote above promote must fail");
        let mut c = CoreTimeConfig::default();
        c.replica_promote_read_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn extensions_preset_keeps_replica_serving_off() {
        // The legacy hint-driven replication path (what the golden storms
        // pin) must stay the default even with every extension enabled;
        // measured-read-fraction serving is a separate opt-in.
        assert!(!CoreTimeConfig::with_all_extensions().serve_from_replicas);
    }
}
