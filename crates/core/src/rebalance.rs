//! Counter-driven rebalancing.
//!
//! "CoreTime also uses hardware event counters to detect when too many
//! operations are assigned to a core or too many objects are assigned to a
//! cache. CoreTime tracks the number of idle cycles, loads from DRAM, and
//! loads from the L2 cache for each core. If a core is rarely idle or often
//! loads from DRAM, CoreTime will periodically move a portion of the
//! objects from that core's cache to the cache of a core that has more idle
//! cycles and rarely loads from the L2 cache." (Section 4)

use o2_runtime::{CoreId, DenseObjectId};
use o2_sim::CounterDelta;

use crate::config::CoreTimeConfig;
use crate::object::ObjectRegistry;
use crate::table::AssignmentTable;

/// One planned object move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The object to move.
    pub object: DenseObjectId,
    /// The core it currently lives on.
    pub from: CoreId,
    /// The core it should move to.
    pub to: CoreId,
    /// Its size in bytes.
    pub size: u64,
}

/// Classification of a core's load for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreLoad {
    /// Rarely idle or frequently loading from DRAM.
    Overloaded,
    /// Plenty of idle cycles and few DRAM loads.
    Underloaded,
    /// Neither.
    Normal,
}

/// Classifies a core from its per-epoch counter delta.
pub fn classify(cfg: &CoreTimeConfig, delta: &CounterDelta) -> CoreLoad {
    let idle = delta.idle_fraction();
    let dram_rate = delta.dram_load_rate();
    if idle < cfg.low_idle_fraction || dram_rate > cfg.high_dram_rate {
        CoreLoad::Overloaded
    } else if idle > cfg.high_idle_fraction && dram_rate < cfg.high_dram_rate / 2.0 {
        CoreLoad::Underloaded
    } else {
        CoreLoad::Normal
    }
}

/// Plans rebalancing moves for one epoch.
///
/// For every overloaded core (most DRAM-bound first) the planner moves up
/// to `rebalance_move_fraction` of its assigned bytes — coldest objects
/// first, so the hot object that made the core busy keeps its cache — to
/// underloaded cores with free budget.
pub fn plan(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
    deltas: &[CounterDelta],
) -> Vec<Move> {
    let n = table.num_cores().min(deltas.len());
    let mut overloaded: Vec<CoreId> = Vec::new();
    let mut underloaded: Vec<CoreId> = Vec::new();
    for core in 0..n as CoreId {
        match classify(cfg, &deltas[core as usize]) {
            CoreLoad::Overloaded => {
                if !table.objects_on(core).is_empty() {
                    overloaded.push(core);
                }
            }
            CoreLoad::Underloaded => underloaded.push(core),
            CoreLoad::Normal => {}
        }
    }
    if overloaded.is_empty() || underloaded.is_empty() {
        return Vec::new();
    }

    // Most DRAM-starved overloaded cores first; ties broken by core id so
    // the plan is a pure function of the counter values.
    overloaded.sort_by_key(|&c| (std::cmp::Reverse(deltas[c as usize].dram_loads), c));
    // Most idle receivers first, same tie-break.
    underloaded.sort_by_key(|&c| (std::cmp::Reverse(deltas[c as usize].idle_cycles), c));

    let mut moves = Vec::new();
    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();

    for &from in &overloaded {
        let budget = (table.used_bytes(from) as f64 * cfg.rebalance_move_fraction) as u64;
        if budget == 0 {
            continue;
        }
        // Move the coldest objects first; ties broken by external key so
        // the victim order does not depend on the table's internal layout.
        let mut objs: Vec<DenseObjectId> = table.objects_on(from).to_vec();
        objs.sort_by_key(|&o| {
            (
                registry.get(o).map(|i| i.ops_last_epoch).unwrap_or(0),
                registry.key_of(o),
            )
        });
        let mut moved = 0u64;
        for obj in objs {
            if moved >= budget {
                break;
            }
            let size = registry.get(obj).map(|i| i.size()).unwrap_or(0);
            if size == 0 {
                continue;
            }
            // Find an underloaded core with room.
            if let Some(&to) = underloaded
                .iter()
                .find(|&&c| c != from && free[c as usize] >= size)
            {
                free[to as usize] -= size;
                moved += size;
                moves.push(Move {
                    object: obj,
                    from,
                    to,
                    size,
                });
            }
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::ObjectDescriptor;

    fn delta(busy: u64, idle: u64, dram: u64) -> CounterDelta {
        CounterDelta {
            busy_cycles: busy,
            idle_cycles: idle,
            dram_loads: dram,
            ..Default::default()
        }
    }

    #[test]
    fn classification_thresholds() {
        let cfg = CoreTimeConfig::default();
        // No idle time: overloaded.
        assert_eq!(classify(&cfg, &delta(100_000, 0, 0)), CoreLoad::Overloaded);
        // Lots of DRAM loads: overloaded even with some idle time.
        assert_eq!(
            classify(&cfg, &delta(100_000, 10_000, 4_000)),
            CoreLoad::Overloaded
        );
        // Mostly idle, no DRAM: underloaded.
        assert_eq!(
            classify(&cfg, &delta(50_000, 50_000, 0)),
            CoreLoad::Underloaded
        );
        // In between: normal.
        assert_eq!(classify(&cfg, &delta(95_000, 5_000, 10)), CoreLoad::Normal);
    }

    fn registry_with(sizes: &[(u32, u64)]) -> ObjectRegistry {
        let mut reg = ObjectRegistry::new(64);
        for &(id, size) in sizes {
            reg.register(
                id,
                ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x10000, size),
            );
        }
        reg
    }

    #[test]
    fn moves_go_from_overloaded_to_underloaded() {
        let cfg = CoreTimeConfig::default();
        let mut table = AssignmentTable::new(vec![10_000; 4]);
        let registry = registry_with(&[(1, 4000), (2, 4000), (3, 1000)]);
        table.assign(1, 4000, 0);
        table.assign(2, 4000, 0);
        table.assign(3, 1000, 1);
        // Core 0 overloaded (no idle, lots of DRAM), cores 2 and 3 idle.
        let deltas = vec![
            delta(200_000, 0, 2_000),
            delta(150_000, 30_000, 10),
            delta(50_000, 150_000, 0),
            delta(50_000, 150_000, 0),
        ];
        let moves = plan(&cfg, &table, &registry, &deltas);
        assert!(!moves.is_empty());
        for m in &moves {
            assert_eq!(m.from, 0);
            assert!(m.to == 2 || m.to == 3);
        }
        // At most the configured fraction of core 0's bytes moves.
        let moved: u64 = moves.iter().map(|m| m.size).sum();
        assert!(moved <= (8000_f64 * cfg.rebalance_move_fraction) as u64 + 4000);
    }

    #[test]
    fn no_moves_without_underloaded_receivers() {
        let cfg = CoreTimeConfig::default();
        let mut table = AssignmentTable::new(vec![10_000; 2]);
        let registry = registry_with(&[(1, 4000)]);
        table.assign(1, 4000, 0);
        let deltas = vec![delta(200_000, 0, 2_000), delta(200_000, 0, 1_000)];
        assert!(plan(&cfg, &table, &registry, &deltas).is_empty());
    }

    #[test]
    fn no_moves_when_nothing_is_assigned() {
        let cfg = CoreTimeConfig::default();
        let table = AssignmentTable::new(vec![10_000; 2]);
        let registry = registry_with(&[]);
        let deltas = vec![delta(200_000, 0, 2_000), delta(10_000, 190_000, 0)];
        assert!(plan(&cfg, &table, &registry, &deltas).is_empty());
    }

    #[test]
    fn receivers_must_have_free_space() {
        let cfg = CoreTimeConfig::default();
        let mut table = AssignmentTable::new(vec![10_000, 1_000]);
        let registry = registry_with(&[(1, 4000), (2, 4000)]);
        table.assign(1, 4000, 0);
        table.assign(2, 4000, 0);
        let deltas = vec![delta(200_000, 0, 2_000), delta(10_000, 190_000, 0)];
        // Core 1 is idle but has only 1000 bytes of budget: nothing fits.
        assert!(plan(&cfg, &table, &registry, &deltas).is_empty());
    }
}
