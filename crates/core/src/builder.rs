//! A small facade for constructing CoreTime policies.

use o2_runtime::SchedPolicy;
use o2_sim::MachineConfig;

use crate::config::CoreTimeConfig;
use crate::policy::O2Policy;

/// Entry point for applications: builds CoreTime scheduling policies that
/// plug into the `o2-runtime` engine.
///
/// # Examples
///
/// ```
/// use o2_core::CoreTime;
/// use o2_runtime::{Engine, RuntimeConfig};
/// use o2_sim::{Machine, MachineConfig};
///
/// let machine_cfg = MachineConfig::amd16();
/// let machine = Machine::new(machine_cfg.clone());
/// let engine = Engine::new(machine, CoreTime::policy(&machine_cfg), RuntimeConfig::default());
/// assert_eq!(engine.policy().name(), "coretime");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreTime;

impl CoreTime {
    /// A CoreTime policy with the default configuration.
    pub fn policy(machine: &MachineConfig) -> Box<dyn SchedPolicy + Send> {
        Box::new(O2Policy::with_defaults(machine))
    }

    /// A CoreTime policy with an explicit configuration.
    pub fn policy_with(
        machine: &MachineConfig,
        cfg: CoreTimeConfig,
    ) -> Box<dyn SchedPolicy + Send> {
        Box::new(O2Policy::new(machine, cfg))
    }

    /// A CoreTime policy with every Section-6.2 extension enabled
    /// (replication, clustering, frequency-based replacement).
    pub fn policy_with_extensions(machine: &MachineConfig) -> Box<dyn SchedPolicy + Send> {
        Box::new(O2Policy::new(
            machine,
            CoreTimeConfig::with_all_extensions(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_coretime_policies() {
        let cfg = MachineConfig::amd16();
        assert_eq!(CoreTime::policy(&cfg).name(), "coretime");
        assert_eq!(
            CoreTime::policy_with(&cfg, CoreTimeConfig::default()).name(),
            "coretime"
        );
        assert_eq!(CoreTime::policy_with_extensions(&cfg).name(), "coretime");
    }
}
