//! Performance-pathology detection.
//!
//! "Cache packing might assign several popular objects to a single core and
//! threads will stall waiting to operate on the objects. For example,
//! several cores may migrate threads to the same core simultaneously. Our
//! current solution is to detect performance pathologies at runtime and to
//! improve performance by rearranging objects." (Section 4)
//!
//! The detector looks at per-core operation counts for the last epoch: if a
//! single core completed far more operations than the average (it is a
//! migration hot-spot), its less-popular objects are spread to the cores
//! that completed the fewest operations.

use o2_runtime::{CoreId, DenseObjectId};
use o2_sim::CounterDelta;

use crate::config::CoreTimeConfig;
use crate::object::ObjectRegistry;
use crate::rebalance::Move;
use crate::table::AssignmentTable;

/// Detects operation hot-spots: cores whose completed-operation count this
/// epoch exceeds `pathology_factor` times the machine average.
pub fn hot_cores(cfg: &CoreTimeConfig, deltas: &[CounterDelta]) -> Vec<CoreId> {
    if deltas.is_empty() {
        return Vec::new();
    }
    let total: u64 = deltas.iter().map(|d| d.operations_completed).sum();
    let mean = total as f64 / deltas.len() as f64;
    if mean <= 0.0 {
        return Vec::new();
    }
    deltas
        .iter()
        .enumerate()
        .filter(|(_, d)| d.operations_completed as f64 > cfg.pathology_factor * mean)
        .map(|(i, _)| i as CoreId)
        .collect()
}

/// Detects degraded cores: cores that were busy this epoch but completed
/// operations at less than `1 / pathology_factor` of the mean
/// ops-per-busy-cycle rate. This is the fault plane's detector — a core
/// the fault plan slowed down burns `slowdown × cost` cycles per
/// operation, so its rate collapses relative to its peers and CoreTime
/// stops migrating operations to it (data moves instead). Idle cores are
/// excluded: completing nothing while doing nothing is not degradation.
pub fn slow_cores(cfg: &CoreTimeConfig, deltas: &[CounterDelta]) -> Vec<CoreId> {
    let rates: Vec<Option<f64>> = deltas
        .iter()
        .map(|d| (d.busy_cycles > 0).then(|| d.operations_completed as f64 / d.busy_cycles as f64))
        .collect();
    let live: Vec<f64> = rates.iter().flatten().copied().collect();
    if live.is_empty() {
        return Vec::new();
    }
    let mean = live.iter().sum::<f64>() / live.len() as f64;
    if mean <= 0.0 {
        return Vec::new();
    }
    rates
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Some(rate) if *rate < mean / cfg.pathology_factor))
        .map(|(i, _)| i as CoreId)
        .collect()
}

/// Plans moves that spread a hot core's objects (all but its single hottest
/// object, which stays) to the coldest cores with room.
pub fn plan(
    cfg: &CoreTimeConfig,
    table: &AssignmentTable,
    registry: &ObjectRegistry,
    deltas: &[CounterDelta],
) -> Vec<Move> {
    let hot = hot_cores(cfg, deltas);
    if hot.is_empty() {
        return Vec::new();
    }
    // Receivers: the cores with the fewest completed operations, coldest
    // first.
    let mut receivers: Vec<CoreId> = (0..table.num_cores() as CoreId)
        .filter(|c| !hot.contains(c))
        .collect();
    receivers.sort_by_key(|&c| {
        (
            deltas
                .get(c as usize)
                .map(|d| d.operations_completed)
                .unwrap_or(0),
            c,
        )
    });
    if receivers.is_empty() {
        return Vec::new();
    }

    let mut free: Vec<u64> = (0..table.num_cores() as CoreId)
        .map(|c| table.free_bytes(c))
        .collect();
    let mut moves = Vec::new();

    for &from in &hot {
        let mut objs: Vec<DenseObjectId> = table.objects_on(from).to_vec();
        if objs.len() <= 1 {
            // A single popular object cannot be split by moving; replication
            // (Section 6.2) handles that case when enabled.
            continue;
        }
        // Keep the hottest object where it is, spread the rest (bounded per
        // epoch so one noisy sample cannot trigger a mass migration of
        // cached data).
        objs.sort_by_key(|&o| {
            (
                std::cmp::Reverse(registry.get(o).map(|i| i.ops_last_epoch).unwrap_or(0)),
                registry.key_of(o),
            )
        });
        let mut receiver_idx = 0usize;
        for &obj in objs.iter().skip(1).take(cfg.pathology_max_moves) {
            let size = registry.get(obj).map(|i| i.size()).unwrap_or(0);
            if size == 0 {
                continue;
            }
            // Round-robin over receivers that still have room.
            let mut placed = false;
            for _ in 0..receivers.len() {
                let to = receivers[receiver_idx % receivers.len()];
                receiver_idx += 1;
                if to != from && free[to as usize] >= size {
                    free[to as usize] -= size;
                    moves.push(Move {
                        object: obj,
                        from,
                        to,
                        size,
                    });
                    placed = true;
                    break;
                }
            }
            if !placed {
                break;
            }
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::ObjectDescriptor;

    fn ops_delta(ops: u64) -> CounterDelta {
        CounterDelta {
            busy_cycles: 100_000,
            operations_completed: ops,
            ..Default::default()
        }
    }

    #[test]
    fn hot_core_detection_uses_the_factor() {
        let cfg = CoreTimeConfig::default();
        let deltas = vec![ops_delta(1000), ops_delta(10), ops_delta(10), ops_delta(10)];
        assert_eq!(hot_cores(&cfg, &deltas), vec![0]);
        let even = vec![ops_delta(100); 4];
        assert!(hot_cores(&cfg, &even).is_empty());
        assert!(hot_cores(&cfg, &[]).is_empty());
    }

    #[test]
    fn slow_core_detection_compares_ops_per_busy_cycle() {
        let cfg = CoreTimeConfig::default(); // pathology_factor = 3
        let rate = |ops, busy| CounterDelta {
            busy_cycles: busy,
            operations_completed: ops,
            ..Default::default()
        };
        // Core 2 completes ops at 1/8 the rate of its peers: degraded.
        let deltas = vec![
            rate(800, 100_000),
            rate(800, 100_000),
            rate(100, 100_000),
            rate(800, 100_000),
        ];
        assert_eq!(slow_cores(&cfg, &deltas), vec![2]);
        // An idle core (busy = 0) is parked, not degraded.
        let deltas = vec![rate(800, 100_000), rate(0, 0), rate(800, 100_000)];
        assert!(slow_cores(&cfg, &deltas).is_empty());
        // Uniform rates: nothing is slow.
        assert!(slow_cores(&cfg, &vec![rate(500, 100_000); 4]).is_empty());
        assert!(slow_cores(&cfg, &[]).is_empty());
    }

    #[test]
    fn zero_ops_everywhere_is_not_a_pathology() {
        let cfg = CoreTimeConfig::default();
        let deltas = vec![ops_delta(0); 4];
        assert!(hot_cores(&cfg, &deltas).is_empty());
    }

    fn registry_with_ops(objs: &[(u32, u64, u64)]) -> ObjectRegistry {
        // (id, size, ops_last_epoch approximated by recording ops then rolling)
        let mut reg = ObjectRegistry::new(64);
        for &(id, size, ops) in objs {
            reg.register(
                id,
                ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x10000, size),
            );
            for _ in 0..ops {
                reg.record_op(id, u64::from(id), 1, 0.3, o2_runtime::AccessKind::Write);
            }
        }
        reg.roll_epoch();
        reg
    }

    #[test]
    fn spreads_all_but_the_hottest_object() {
        let cfg = CoreTimeConfig::default();
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let registry = registry_with_ops(&[(1, 10_000, 50), (2, 10_000, 20), (3, 10_000, 5)]);
        table.assign(1, 10_000, 0);
        table.assign(2, 10_000, 0);
        table.assign(3, 10_000, 0);
        let deltas = vec![ops_delta(900), ops_delta(10), ops_delta(10), ops_delta(10)];
        let moves = plan(&cfg, &table, &registry, &deltas);
        // Objects 2 and 3 move away; object 1 (hottest) stays.
        let moved: Vec<DenseObjectId> = moves.iter().map(|m| m.object).collect();
        assert!(moved.contains(&2) && moved.contains(&3));
        assert!(!moved.contains(&1));
        for m in &moves {
            assert_eq!(m.from, 0);
            assert_ne!(m.to, 0);
        }
    }

    #[test]
    fn single_object_hot_core_is_left_alone() {
        let cfg = CoreTimeConfig::default();
        let mut table = AssignmentTable::new(vec![100_000; 4]);
        let registry = registry_with_ops(&[(1, 10_000, 100)]);
        table.assign(1, 10_000, 0);
        let deltas = vec![ops_delta(900), ops_delta(10), ops_delta(10), ops_delta(10)];
        assert!(plan(&cfg, &table, &registry, &deltas).is_empty());
    }
}
