//! Object clustering (Section 6.2).
//!
//! "It is likely that some workloads would benefit from object clustering:
//! if one thread or operation uses two objects simultaneously then it might
//! be best to place both objects in the same cache, if they fit."
//!
//! The tracker observes the sequence of objects each thread operates on and
//! counts co-accesses (consecutive operations by the same thread on
//! different objects). Pairs whose count crosses a threshold are considered
//! clustered, and the placement logic prefers putting a new object on the
//! core that already holds one of its cluster partners.
//!
//! `record` runs on every `ct_start`, so the tracker keeps its state flat:
//! the per-thread last-object memory is a plain slab, and the pair counts
//! live in an [`o2_collections::FlatTable`] keyed by the two dense ids
//! packed into one `u64` (power-of-two capacity, Fibonacci hashing, linear
//! probing, backward-shift deletion on decay) — no `HashMap`, no
//! per-entry heap nodes.

use o2_collections::FlatTable;
use o2_runtime::{DenseObjectId, ObjectId, ThreadId};

/// Sentinel for "thread has no previous object".
const NO_OBJECT: DenseObjectId = DenseObjectId::MAX;

/// Packs an unordered pair of dense ids into one table key. Dense ids are
/// `u32`, so a packed key of `u64::MAX` (both halves `u32::MAX`) never
/// collides with the table's vacant-slot sentinel.
#[inline]
fn pack(a: DenseObjectId, b: DenseObjectId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Tracks which objects are used together.
#[derive(Debug)]
pub struct CoAccessTracker {
    /// Last object each thread operated on, indexed by thread id.
    last_by_thread: Vec<DenseObjectId>,
    /// Co-access counts per unordered object pair.
    pairs: FlatTable<u64, u64>,
    /// Scratch for decay's two-pass halve-then-remove.
    doomed: Vec<u64>,
}

impl Default for CoAccessTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl CoAccessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            last_by_thread: Vec::new(),
            pairs: FlatTable::with_capacity(64),
            doomed: Vec::new(),
        }
    }

    /// Records that `thread` started an operation on `object`.
    #[inline]
    pub fn record(&mut self, thread: ThreadId, object: DenseObjectId) {
        if thread >= self.last_by_thread.len() {
            self.last_by_thread.resize(thread + 1, NO_OBJECT);
        }
        let prev = self.last_by_thread[thread];
        if prev != NO_OBJECT && prev != object {
            *self.pairs.entry(pack(prev, object)) += 1;
        }
        self.last_by_thread[thread] = object;
    }

    /// Co-access count of a pair.
    pub fn pair_count(&self, a: DenseObjectId, b: DenseObjectId) -> u64 {
        self.pairs.peek(pack(a, b)).copied().unwrap_or(0)
    }

    /// Objects co-accessed with `object` at least `threshold` times,
    /// strongest partnership first, ties broken by the partner's external
    /// key (via `key_of`) so the placement preference is a pure function
    /// of the operation history.
    pub fn partners(
        &self,
        object: DenseObjectId,
        threshold: u64,
        key_of: impl Fn(DenseObjectId) -> ObjectId,
    ) -> Vec<DenseObjectId> {
        let mut partners: Vec<(u64, ObjectId, DenseObjectId)> = self
            .pairs
            .iter()
            .map(|(key, &count)| (key, count))
            .filter(|&(_, count)| count >= threshold)
            .filter_map(|(key, count)| {
                let lo = (key >> 32) as DenseObjectId;
                let hi = key as DenseObjectId;
                if lo == object {
                    Some((count, hi))
                } else if hi == object {
                    Some((count, lo))
                } else {
                    None
                }
            })
            .map(|(count, partner)| (count, key_of(partner), partner))
            .collect();
        partners.sort_by_key(|&(count, key, _)| (std::cmp::Reverse(count), key));
        partners.into_iter().map(|(_, _, p)| p).collect()
    }

    /// Number of distinct pairs observed.
    pub fn pairs_observed(&self) -> usize {
        self.pairs.len()
    }

    /// Heap bytes held by the tracker. Scales with threads and observed
    /// co-access pairs, not with the object count — at a million objects
    /// the tracker costs nothing unless operations actually pair them.
    pub fn footprint_bytes(&self) -> u64 {
        (self.last_by_thread.capacity() * std::mem::size_of::<DenseObjectId>()) as u64
            + self.pairs.footprint_bytes()
            + (self.doomed.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Ages the counts (halving them), so stale partnerships fade. Called
    /// once per epoch.
    pub fn decay(&mut self) {
        self.doomed.clear();
        for (key, count) in self.pairs.iter_mut() {
            *count /= 2;
            if *count == 0 {
                self.doomed.push(key);
            }
        }
        for i in 0..self.doomed.len() {
            self.pairs.remove(self.doomed[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: Vec<DenseObjectId>) -> Vec<DenseObjectId> {
        v
    }

    #[test]
    fn consecutive_ops_by_one_thread_form_pairs() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(0, 20);
        t.record(0, 10);
        t.record(0, 20);
        assert_eq!(t.pair_count(10, 20), 3);
        assert_eq!(t.pair_count(20, 10), 3);
        assert_eq!(t.pairs_observed(), 1);
    }

    #[test]
    fn repeated_ops_on_the_same_object_do_not_pair() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(0, 10);
        t.record(0, 10);
        assert_eq!(t.pairs_observed(), 0);
    }

    #[test]
    fn different_threads_do_not_pair_with_each_other() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(1, 20);
        assert_eq!(t.pair_count(10, 20), 0);
    }

    #[test]
    fn partners_respects_threshold_and_orders_by_strength() {
        let mut t = CoAccessTracker::new();
        for _ in 0..10 {
            t.record(0, 1);
            t.record(0, 2);
        }
        for _ in 0..3 {
            t.record(1, 1);
            t.record(1, 3);
        }
        let key_of = |d: DenseObjectId| u64::from(d);
        assert_eq!(t.partners(1, 2, key_of), ids(vec![2, 3]));
        assert_eq!(t.partners(1, 6, key_of), ids(vec![2]));
        assert_eq!(t.partners(1, 100, key_of), ids(vec![]));
        assert_eq!(t.partners(2, 2, key_of), ids(vec![1]));
    }

    #[test]
    fn partner_ties_break_by_external_key() {
        let mut t = CoAccessTracker::new();
        // Partners 2 and 3 are each co-accessed with object 1 twice, on
        // separate threads so the counts stay symmetric.
        for _ in 0..2 {
            t.record(0, 1);
            t.record(0, 2);
            t.record(1, 1);
            t.record(1, 3);
        }
        assert_eq!(t.pair_count(1, 2), t.pair_count(1, 3));
        // External keys invert the dense order: partner 3 has key 5,
        // partner 2 has key 9, so 3 wins the tie.
        let key_of = |d: DenseObjectId| match d {
            2 => 9u64,
            3 => 5u64,
            other => u64::from(other),
        };
        assert_eq!(t.partners(1, 1, key_of), ids(vec![3, 2]));
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut t = CoAccessTracker::new();
        t.record(0, 1);
        t.record(0, 2); // count 1
        for _ in 0..4 {
            t.record(1, 3);
            t.record(1, 4);
        }
        t.decay();
        assert_eq!(t.pair_count(1, 2), 0);
        assert_eq!(t.pair_count(3, 4), 3);
        assert_eq!(t.pairs_observed(), 1);
    }

    #[test]
    fn many_pairs_survive_growth_and_decay() {
        let mut t = CoAccessTracker::new();
        // 512 distinct pairs, counts 2 each, interleaved across threads.
        for i in 0..512u32 {
            let (a, b) = (i * 2, i * 2 + 1);
            t.record(i as usize % 7, a);
            t.record(i as usize % 7, b);
            t.record(i as usize % 7, a);
        }
        // Each cycle above produces (a,b) twice, plus cross-pairs from
        // thread reuse; check a few exact counts instead of the total.
        assert_eq!(t.pair_count(0, 1), 2);
        assert_eq!(t.pair_count(1022, 1023), 2);
        let before = t.pairs_observed();
        t.decay();
        // Counts of 2 halve to 1 and survive; cross-pairs of 1 vanish.
        assert_eq!(t.pair_count(0, 1), 1);
        assert!(t.pairs_observed() <= before);
        t.decay();
        assert_eq!(t.pairs_observed(), 0);
    }
}
