//! Object clustering (Section 6.2).
//!
//! "It is likely that some workloads would benefit from object clustering:
//! if one thread or operation uses two objects simultaneously then it might
//! be best to place both objects in the same cache, if they fit."
//!
//! The tracker observes the sequence of objects each thread operates on and
//! counts co-accesses (consecutive operations by the same thread on
//! different objects). Pairs whose count crosses a threshold are considered
//! clustered, and the placement logic prefers putting a new object on the
//! core that already holds one of its cluster partners.

use std::collections::HashMap;

use o2_runtime::{ObjectId, ThreadId};

/// Tracks which objects are used together.
#[derive(Debug, Default)]
pub struct CoAccessTracker {
    /// Last object each thread operated on.
    last_by_thread: HashMap<ThreadId, ObjectId>,
    /// Co-access counts per unordered object pair.
    pair_counts: HashMap<(ObjectId, ObjectId), u64>,
}

impl CoAccessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `thread` started an operation on `object`.
    pub fn record(&mut self, thread: ThreadId, object: ObjectId) {
        if let Some(&prev) = self.last_by_thread.get(&thread) {
            if prev != object {
                let key = if prev < object {
                    (prev, object)
                } else {
                    (object, prev)
                };
                *self.pair_counts.entry(key).or_insert(0) += 1;
            }
        }
        self.last_by_thread.insert(thread, object);
    }

    /// Co-access count of a pair.
    pub fn pair_count(&self, a: ObjectId, b: ObjectId) -> u64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pair_counts.get(&key).copied().unwrap_or(0)
    }

    /// Objects co-accessed with `object` at least `threshold` times,
    /// strongest partnership first.
    pub fn partners(&self, object: ObjectId, threshold: u64) -> Vec<ObjectId> {
        let mut partners: Vec<(ObjectId, u64)> = self
            .pair_counts
            .iter()
            .filter(|((a, b), &count)| count >= threshold && (*a == object || *b == object))
            .map(|((a, b), &count)| (if *a == object { *b } else { *a }, count))
            .collect();
        partners.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        partners.into_iter().map(|(o, _)| o).collect()
    }

    /// Number of distinct pairs observed.
    pub fn pairs_observed(&self) -> usize {
        self.pair_counts.len()
    }

    /// Ages the counts (halving them), so stale partnerships fade. Called
    /// once per epoch.
    pub fn decay(&mut self) {
        self.pair_counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_ops_by_one_thread_form_pairs() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(0, 20);
        t.record(0, 10);
        t.record(0, 20);
        assert_eq!(t.pair_count(10, 20), 3);
        assert_eq!(t.pair_count(20, 10), 3);
        assert_eq!(t.pairs_observed(), 1);
    }

    #[test]
    fn repeated_ops_on_the_same_object_do_not_pair() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(0, 10);
        t.record(0, 10);
        assert_eq!(t.pairs_observed(), 0);
    }

    #[test]
    fn different_threads_do_not_pair_with_each_other() {
        let mut t = CoAccessTracker::new();
        t.record(0, 10);
        t.record(1, 20);
        assert_eq!(t.pair_count(10, 20), 0);
    }

    #[test]
    fn partners_respects_threshold_and_orders_by_strength() {
        let mut t = CoAccessTracker::new();
        for _ in 0..10 {
            t.record(0, 1);
            t.record(0, 2);
        }
        for _ in 0..3 {
            t.record(1, 1);
            t.record(1, 3);
        }
        assert_eq!(t.partners(1, 2), vec![2, 3]);
        assert_eq!(t.partners(1, 6), vec![2]);
        assert_eq!(t.partners(1, 100), Vec::<ObjectId>::new());
        assert_eq!(t.partners(2, 2), vec![1]);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut t = CoAccessTracker::new();
        t.record(0, 1);
        t.record(0, 2); // count 1
        for _ in 0..4 {
            t.record(1, 3);
            t.record(1, 4);
        }
        t.decay();
        assert_eq!(t.pair_count(1, 2), 0);
        assert_eq!(t.pair_count(3, 4), 3);
        assert_eq!(t.pairs_observed(), 1);
    }
}
