//! # o2-core — CoreTime, an O2 (objects-and-operations) scheduler
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Reinventing Scheduling for Multicore Systems"* (HotOS 2009): a
//! scheduler that assigns **data objects to on-chip caches** and migrates
//! **operations** (annotated regions of a thread) to the core that caches
//! the object they manipulate, instead of assigning threads to cores and
//! letting the hardware place data implicitly.
//!
//! The pieces map to the paper as follows:
//!
//! | Paper (Section 4)              | Module |
//! |--------------------------------|--------|
//! | `ct_start`/`ct_end` lookup     | [`policy`] (`O2Policy::on_ct_start`) + [`table`] |
//! | greedy first-fit cache packing | [`packing`] |
//! | event-counter monitoring       | [`monitor`] + [`object`] |
//! | idle/DRAM/L2-load rebalancing  | [`rebalance`] |
//! | pathology detection            | [`pathology`] |
//! | §6.2 read-only replication     | [`replication`] |
//! | §6.2 object clustering         | [`clustering`] |
//! | §6.2 frequency-based placement | [`replacement`] |
//!
//! The scheduler is expressed as an [`o2_runtime::SchedPolicy`], so it can
//! be swapped against the baselines in `o2-baseline` without touching the
//! workload, exactly as the paper's evaluation compares "With CoreTime"
//! and "Without CoreTime".
//!
//! ## Quick start
//!
//! ```
//! use o2_core::CoreTime;
//! use o2_runtime::{Engine, ObjectDescriptor, OpBuilder, RepeatBehaviour, RuntimeConfig};
//! use o2_sim::{Machine, MachineConfig};
//!
//! let machine_cfg = MachineConfig::quad4();
//! let mut machine = Machine::new(machine_cfg.clone());
//! let data = machine.memory_mut().alloc(128 * 1024, 0);
//!
//! let mut engine = Engine::new(machine, CoreTime::policy(&machine_cfg), RuntimeConfig::default());
//! engine.register_object(ObjectDescriptor::new(data.addr, data.addr, data.size));
//!
//! // A thread that repeatedly scans the object inside ct_start/ct_end.
//! let op = OpBuilder::annotated(data.addr).read(data.addr, data.size).finish();
//! engine.spawn(0, Box::new(RepeatBehaviour::new(op, Some(20))));
//! engine.run_until_cycles(50_000_000);
//! assert_eq!(engine.total_ops(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod clustering;
pub mod config;
pub mod monitor;
pub mod object;
pub mod packing;
pub mod pathology;
pub mod policy;
pub mod rebalance;
pub mod replacement;
pub mod replication;
pub mod table;

pub use builder::CoreTime;
pub use config::CoreTimeConfig;
pub use monitor::MonitorVerdict;
pub use object::{ObjectInfo, ObjectRegistry};
pub use packing::{pack, place_balanced, place_most_free, place_one, PackItem, Packing};
pub use policy::{O2Policy, O2Stats};
pub use table::AssignmentTable;
