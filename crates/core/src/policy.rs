//! `O2Policy`: the CoreTime scheduler as a runtime policy.
//!
//! This is the piece that ties the paper's design together:
//!
//! * `ct_start` performs a table lookup and migrates the operation to the
//!   core caching the object (Section 4, "Interface");
//! * `ct_end` attributes the operation's cache misses to the object and
//!   assigns the object to a cache when it is expensive to fetch
//!   (Section 4, "Runtime monitoring" + the greedy cache-packing
//!   algorithm);
//! * at every epoch the policy rebalances objects away from saturated
//!   cores, spreads migration hot-spots, ages out idle assignments, and —
//!   when the Section 6.2 extensions are enabled — replicates hot
//!   read-mostly objects and admits objects by frequency when the on-chip
//!   budget is oversubscribed.

use o2_metrics::{LatencyRecorder, LatencySummary};
use o2_runtime::{
    AccessKind, DenseObjectId, EpochView, ObjectDescriptor, OpContext, Placement, PolicyCommand,
    PolicyReplicationStats, SchedPolicy,
};
use o2_sim::{CounterDelta, MachineConfig};

use crate::clustering::CoAccessTracker;
use crate::config::CoreTimeConfig;
use crate::monitor::{verdict, MonitorVerdict};
use crate::object::ObjectRegistry;
use crate::packing;
use crate::pathology;
use crate::rebalance;
use crate::replacement;
use crate::replication;
use crate::table::AssignmentTable;

/// Counters describing what the policy has done, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct O2Stats {
    /// Objects assigned to caches by the monitor + packer.
    pub assignments: u64,
    /// Objects released because they idled for too long.
    pub decays: u64,
    /// Object moves planned by the counter-driven rebalancer.
    pub rebalance_moves: u64,
    /// Object moves planned by the pathology detector.
    pub pathology_moves: u64,
    /// Replicas created for read-mostly objects.
    pub replications: u64,
    /// Objects evicted by the frequency-based replacement policy.
    pub replacement_evictions: u64,
    /// Operations the policy asked to migrate.
    pub migrations_requested: u64,
    /// Operations that ran where the thread already was.
    pub local_operations: u64,
    /// Policy epochs processed.
    pub epochs: u64,
    /// `core_down` notifications received from the fault plane.
    pub core_down_events: u64,
    /// Objects re-placed onto live cores after an offlining.
    pub objects_rehomed: u64,
    /// Objects that found no room on the surviving cores and fell back to
    /// hardware-managed caching.
    pub objects_stranded: u64,
    /// Migrations skipped because the target core was degraded — the
    /// "flip from migration to data movement" path.
    pub degraded_avoids: u64,
    /// Objects promoted to extra replicas by the measured-read-fraction
    /// planner (`serve_from_replicas`); counts replica copies created.
    pub replica_promotions: u64,
    /// Objects whose extra replicas were dropped at an epoch boundary
    /// because their measured read fraction fell below the demote
    /// threshold.
    pub replica_demotions: u64,
    /// Replica copies invalidated by a write at `ct_start`.
    pub replica_invalidations: u64,
    /// Operations served from a non-primary copy of a replicated object.
    pub replica_served: u64,
    /// Streaming percentiles of per-operation busy cycles seen at
    /// `ct_end`, from the policy's constant-memory quantile sketch.
    pub op_latency: LatencySummary,
}

/// Iterates the set bits of a core bitmask in ascending core order,
/// without allocating — used on the `ct_start` hot path.
fn mask_bits(mut mask: u64) -> impl Iterator<Item = o2_runtime::CoreId> {
    std::iter::from_fn(move || {
        if mask == 0 {
            return None;
        }
        let core = mask.trailing_zeros();
        mask &= mask - 1;
        Some(core)
    })
}

/// Fixed compaction seed for the policy's latency sketch: determinism
/// requires the same compaction schedule in every run.
const POLICY_LATENCY_SEED: u64 = 0x6f32_636f_7265_6c61;

/// The CoreTime O2 scheduling policy.
pub struct O2Policy {
    cfg: CoreTimeConfig,
    registry: ObjectRegistry,
    table: AssignmentTable,
    clustering: CoAccessTracker,
    stats: O2Stats,
    /// Objects that could not be placed since the last epoch; used to gate
    /// decay (releasing idle assignments only helps when something is
    /// actually waiting for the space).
    placement_failures_this_epoch: u64,
    /// Scratch for the epoch decay pass, reused across epochs so the
    /// decision path stays allocation-free in steady state.
    idle_scratch: Vec<DenseObjectId>,
    /// Cores the fault plane took permanently offline.
    offline_mask: u64,
    /// Cores whose announced slowdown crossed the degradation threshold
    /// (`pathology_factor` as a percentage of nominal cost).
    degraded_mask: u64,
    /// Cores the pathology detector flagged as slow from counters alone,
    /// recomputed every epoch — the detector half of the fault plane.
    detected_mask: u64,
    /// Set (stickily) the first time the fault plane signals anything.
    /// The counter detector only runs when armed, so a zero-fault run
    /// stays bit-identical to one with no fault plane at all.
    fault_plane_armed: bool,
    /// Constant-memory sketch of per-operation busy cycles, recorded at
    /// `ct_end`. Pure observation: it never feeds a placement decision.
    op_latency: LatencyRecorder,
    /// Rotation counter for replica selection under `serve_from_replicas`:
    /// advanced once per multi-copy selection so equal-distance copies
    /// take turns deterministically instead of funnelling onto the lowest
    /// core id.
    replica_rotor: u64,
}

impl O2Policy {
    /// Creates a CoreTime policy for a machine, using each core's
    /// L2-plus-L3-share budget scaled by `capacity_fraction` as its packing
    /// capacity.
    pub fn new(machine: &MachineConfig, cfg: CoreTimeConfig) -> Self {
        cfg.validate().expect("invalid CoreTime configuration");
        let per_core = (machine.per_core_budget_bytes() as f64 * cfg.capacity_fraction) as u64;
        let capacities = vec![per_core; machine.total_cores() as usize];
        Self {
            cfg,
            registry: ObjectRegistry::new(machine.line_size),
            table: AssignmentTable::new(capacities),
            clustering: CoAccessTracker::new(),
            stats: O2Stats::default(),
            placement_failures_this_epoch: 0,
            idle_scratch: Vec::new(),
            offline_mask: 0,
            degraded_mask: 0,
            detected_mask: 0,
            fault_plane_armed: false,
            op_latency: LatencyRecorder::new(POLICY_LATENCY_SEED),
            replica_rotor: 0,
        }
    }

    /// Cores `ct_start` refuses to migrate to: offline cores, cores with
    /// an announced slowdown past the threshold, and cores the counter
    /// detector flagged this epoch.
    #[inline]
    fn avoid_mask(&self) -> u64 {
        self.offline_mask | self.degraded_mask | self.detected_mask
    }

    /// Creates a CoreTime policy with the default configuration.
    pub fn with_defaults(machine: &MachineConfig) -> Self {
        Self::new(machine, CoreTimeConfig::default())
    }

    /// The policy's activity counters, with the latency sketch summarized
    /// into `op_latency`.
    pub fn stats(&self) -> O2Stats {
        let mut s = self.stats;
        s.op_latency = self.op_latency.summary();
        s
    }

    /// The current object→core assignment table.
    pub fn table(&self) -> &AssignmentTable {
        &self.table
    }

    /// The object registry (monitoring state).
    pub fn registry(&self) -> &ObjectRegistry {
        &self.registry
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreTimeConfig {
        &self.cfg
    }

    /// Attempts to place a newly expensive object, in priority order:
    /// next to a cluster partner, then greedy first fit, then (if enabled)
    /// frequency-based replacement.
    fn place_object(&mut self, object: DenseObjectId) {
        let Some(info) = self.registry.get(object) else {
            return;
        };
        let size = info.size();
        let frequency = info.ops_this_epoch.max(info.ops_last_epoch);

        // 1. Object clustering: prefer the core already holding a partner.
        if self.cfg.enable_clustering {
            let registry = &self.registry;
            let partners =
                self.clustering
                    .partners(object, self.cfg.clustering_threshold, |partner| {
                        registry.key_of(partner)
                    });
            for partner in partners {
                if let Some(core) = self.table.primary(partner) {
                    if self.table.free_bytes(core) >= size && self.table.assign(object, size, core)
                    {
                        self.stats.assignments += 1;
                        return;
                    }
                }
            }
        }

        // 2. Greedy first fit into the per-core budgets, visiting the
        //    least-loaded core first so objects and the operations that
        //    follow them stay balanced across cores (Section 3).
        if packing::place_balanced(&mut self.table, object, size).is_some() {
            self.stats.assignments += 1;
            return;
        }

        // 3. The on-chip budget is full: frequency-based replacement.
        if self.cfg.enable_replacement {
            if let Some(adm) = replacement::admit_with_replacement(
                &mut self.table,
                &self.registry,
                object,
                size,
                frequency,
            ) {
                self.stats.assignments += 1;
                self.stats.replacement_evictions += adm.evicted.len() as u64;
                return;
            }
        }
        self.placement_failures_this_epoch += 1;
    }
}

impl SchedPolicy for O2Policy {
    fn name(&self) -> &'static str {
        "coretime"
    }

    fn register_object(&mut self, id: DenseObjectId, object: &ObjectDescriptor) {
        self.registry.register(id, *object);
    }

    fn reserve_objects(&mut self, n: usize) {
        self.registry.reserve(n);
        self.table.reserve(n);
    }

    fn footprint_bytes(&self) -> u64 {
        self.registry.footprint_bytes()
            + self.table.footprint_bytes()
            + self.clustering.footprint_bytes()
            + (self.idle_scratch.capacity() * std::mem::size_of::<DenseObjectId>()) as u64
            + self.op_latency.footprint_bytes()
    }

    fn on_ct_start(&mut self, ctx: &OpContext<'_>) -> Placement {
        // Co-access tracking only feeds the clustering heuristic; skip the
        // pair-table work entirely when that extension is off.
        if self.cfg.enable_clustering {
            self.clustering.record(ctx.thread, ctx.object);
        }
        let serving = self.cfg.serve_from_replicas;
        if serving && ctx.kind == AccessKind::Write {
            // First write to a replicated object: every non-primary copy
            // is invalidated *before* the operation runs, so no stale
            // replica can be read afterwards; the copies' budget comes
            // back immediately. The write itself runs in place — the
            // hardware invalidates the other caches' lines line-by-line
            // as the store stream touches them, and measurement showed
            // routing writes to the primary only adds a migration round
            // trip on top of that coherence traffic (closed loop: −9%
            // throughput; open loop: +62% arrival p99).
            let dropped = self.table.drop_replicas(ctx.object);
            self.stats.replica_invalidations += u64::from(dropped);
            self.stats.local_operations += 1;
            return Placement::Local;
        }
        let replicas = self.table.replicas(ctx.object);
        if replicas.is_empty() {
            self.stats.local_operations += 1;
            return Placement::Local;
        }
        // Drop copies on cores the fault plane ruled out. With no faults
        // `avoid_mask()` is zero and this is the full replica set.
        let usable = replicas.mask() & !self.avoid_mask();
        if usable == 0 {
            // Every copy lives on a degraded or dead core: run in place
            // and let the object's lines move — the flip from thread
            // migration to data movement.
            if replication::nearest_replica(replicas.iter(), ctx.core, |a, b| {
                ctx.machine.hops_between_cores(a, b)
            }) != Some(ctx.core)
            {
                self.stats.degraded_avoids += 1;
            }
            self.stats.local_operations += 1;
            return Placement::Local;
        }
        // Serving-mode reads at a core with no local copy but with cap
        // headroom: demand-fill. A qualifying read leaves a replica on
        // this core and runs in place — the read-sharing refill of a
        // write-invalidate protocol. The simulator charges the refill
        // honestly (this core's first fetch of the object's lines is
        // remote), and the next write drops the copies again. The heat
        // gate decides the serving tier: an object re-read on every core
        // within its cache lifetime (`ops ≥ replication_hot_ops` per
        // epoch) is worth a copy per core, and because the op counters
        // survive a write, the head re-fills immediately after each
        // invalidation instead of convoying on its primary until the next
        // epoch's promotion pass. Reads that do not qualify (or find the
        // budget full) still run in place: measurement showed every
        // migration variant — reads to the primary, reads to mid-tier
        // copies — loses to letting the hardware fetch the lines, because
        // a migration round trip costs more than the remote fetch it
        // avoids unless the target's L2 is provably warm.
        if serving
            && ctx.kind == AccessKind::Read
            && usable & (1u64 << ctx.core) == 0
            && self.avoid_mask() & (1u64 << ctx.core) == 0
            && replicas.mask().count_ones() < self.cfg.max_replicas
        {
            let qualifies = self.registry.get(ctx.object).is_some_and(|info| {
                info.ewma_read_fraction >= self.cfg.replica_promote_read_fraction
                    && info.ops_this_epoch.max(info.ops_last_epoch)
                        >= self.cfg.replication_hot_ops.max(1)
            });
            if qualifies && self.table.add_replica(ctx.object, ctx.core) {
                self.stats.replica_promotions += 1;
                self.stats.replica_served += 1;
            }
            self.stats.local_operations += 1;
            return Placement::Local;
        }
        // What reaches the selector: serving-mode reads at a core that
        // already holds a copy (the local copy wins), reads at a
        // fault-avoided core (migrate off the degraded core), reads of a
        // cap-saturated object (rotate across its k copies), and — with
        // serving off — every operation on an assigned object (the
        // legacy nearest-copy migration path).
        // Invariant: `usable != 0` was checked above, so the bit iterator
        // yields at least one core and both selectors return `Some`.
        debug_assert!(usable != 0);
        let target = if serving && usable.count_ones() > 1 {
            // Measured serving spreads distance ties across copies with a
            // rotation counter; the legacy lowest-core-id tie-break would
            // re-serialize a fully replicated object onto one core.
            let rotor = self.replica_rotor;
            self.replica_rotor = self.replica_rotor.wrapping_add(1);
            replication::select_replica_rotated(
                usable,
                ctx.core,
                |a, b| ctx.machine.hops_between_cores(a, b),
                rotor,
            )
            .expect("non-empty replica list")
        } else {
            replication::nearest_replica(mask_bits(usable), ctx.core, |a, b| {
                ctx.machine.hops_between_cores(a, b)
            })
            .expect("non-empty replica list")
        };
        if serving && Some(target) != self.table.primary(ctx.object) {
            self.stats.replica_served += 1;
        }
        if target == ctx.core {
            self.stats.local_operations += 1;
            Placement::Local
        } else {
            self.stats.migrations_requested += 1;
            Placement::On(target)
        }
    }

    fn on_ct_end(&mut self, ctx: &OpContext<'_>, delta: &CounterDelta) {
        self.op_latency.record(delta.busy_cycles);
        let misses = delta.object_fetch_misses();
        let info = self.registry.record_op(
            ctx.object,
            ctx.object_key,
            misses,
            self.cfg.ewma_alpha,
            ctx.kind,
        );
        let assigned = self.table.is_assigned(ctx.object);
        let decision = verdict(&self.cfg, info, assigned);
        if decision == MonitorVerdict::Assign {
            self.place_object(ctx.object);
        }
    }

    fn on_epoch(&mut self, view: &EpochView<'_>) -> Vec<PolicyCommand> {
        self.stats.epochs += 1;
        self.registry.roll_epoch();
        self.clustering.decay();

        // Release assignments that have been idle for too long, freeing
        // budget for the objects the workload is actually using (this is
        // what lets CoreTime follow a shifting working set when the cache
        // budget is scarce). Only done under capacity pressure: with spare
        // budget an idle assignment costs nothing and the workload may come
        // back to it.
        let pressure =
            self.table.total_assigned_bytes() as f64 / self.table.total_capacity().max(1) as f64;
        if self.cfg.enable_decay
            && pressure >= self.cfg.decay_pressure_threshold
            && self.placement_failures_this_epoch > 0
        {
            // Release roughly one idle assignment per object that failed to
            // find room, rather than everything idle at once: mass releases
            // at the capacity edge just trade one set of cached objects for
            // another and the refills swamp the machine.
            let mut budget = self.placement_failures_this_epoch;
            let mut idle = std::mem::take(&mut self.idle_scratch);
            self.registry
                .idle_objects_into(self.cfg.decay_epochs, &mut idle);
            for &object in &idle {
                if budget == 0 {
                    break;
                }
                if self.table.unassign(object) {
                    self.stats.decays += 1;
                    budget -= 1;
                }
            }
            self.idle_scratch = idle;
        }
        self.placement_failures_this_epoch = 0;

        // Moving an assignment invalidates the cache affinity it has built
        // up, so the reactive mechanisms only act when the epoch carries a
        // meaningful number of samples per core.
        let epoch_ops: u64 = view.deltas.iter().map(|d| d.operations_completed).sum();
        let enough_signal =
            epoch_ops >= self.cfg.min_epoch_ops_per_core * view.deltas.len().max(1) as u64;

        if enough_signal {
            // Counter-driven rebalancing away from saturated cores.
            let moves = rebalance::plan(&self.cfg, &self.table, &self.registry, view.deltas);
            for m in moves {
                if self.table.reassign(m.object, m.size, m.to) {
                    self.stats.rebalance_moves += 1;
                }
            }

            // Spread migration hot-spots.
            let moves = pathology::plan(&self.cfg, &self.table, &self.registry, view.deltas);
            for m in moves {
                if self.table.reassign(m.object, m.size, m.to) {
                    self.stats.pathology_moves += 1;
                }
            }
        }

        let mut commands = Vec::new();
        if self.cfg.serve_from_replicas {
            // Measured-read-fraction serving: demote first (a cooled-off
            // object's copies come back to the budget this epoch), then
            // promote the hot read-heavy head proportionally to its heat.
            // Avoided cores never receive new copies, so replica sets stay
            // on live cores under the fault plane.
            for object in replication::plan_demotions(&self.cfg, &self.table, &self.registry) {
                if self.table.drop_replicas(object) > 0 {
                    self.stats.replica_demotions += 1;
                }
            }
            let avoid = self.avoid_mask();
            for r in replication::plan_promotions(&self.cfg, &self.table, &self.registry, avoid) {
                if self.table.add_replica(r.object, r.core) {
                    self.stats.replica_promotions += 1;
                    // Promotion's data-movement half: a copy created at an
                    // epoch boundary is *cold* — the core has not touched
                    // the object since its last invalidation — so it is
                    // the most profitable fill and goes to the front of
                    // the engine's idle-time queue.
                    commands.push(PolicyCommand::FillReplica {
                        object: r.object,
                        core: r.core,
                    });
                }
            }
            // Behind the cold copies, refresh every copy of the serving
            // head: lines decayed by capacity evictions or partial
            // invalidations re-stream cheaply, and a saturated run never
            // finds a gap so the commands cost nothing there.
            commands.extend(
                replication::plan_fills(&self.cfg, &self.table, &self.registry, avoid)
                    .into_iter()
                    .map(|(object, core)| PolicyCommand::FillReplica { object, core }),
            );
        } else {
            // Replicate hot read-mostly objects (Section 6.2 extension).
            for r in replication::plan(&self.cfg, &self.table, &self.registry) {
                if self.table.add_replica(r.object, r.core) {
                    self.stats.replications += 1;
                }
            }
        }

        // The pathology detector doubles as the degradation detector: a
        // core completing operations at a fraction of its peers' rate per
        // busy cycle is treated exactly like a core with an announced
        // slowdown — `ct_start` stops migrating there until the counters
        // recover. Recomputed from scratch each epoch so the flag clears
        // itself. Only armed runs pay for it: until the fault plane
        // signals something, placement must be bit-identical to a run
        // with no fault plane at all (the existing pathology machinery
        // already handles fault-free imbalance by moving objects).
        if self.fault_plane_armed {
            self.detected_mask = 0;
            for core in pathology::slow_cores(&self.cfg, view.deltas) {
                if core < 64 {
                    self.detected_mask |= 1u64 << core;
                }
            }
        }

        commands
    }

    fn core_down(&mut self, core: o2_runtime::CoreId) {
        self.fault_plane_armed = true;
        self.stats.core_down_events += 1;
        if core < 64 {
            self.offline_mask |= 1u64 << core;
        }
        // Zero the dead core's packing budget so no packer (first-fit,
        // balanced, replacement) ever places there again, then re-home
        // everything it held onto the surviving cores through the normal
        // balanced packer. Objects that no longer fit anywhere are left
        // unassigned — operations on them run wherever the thread is and
        // the hardware manages their lines.
        self.table.set_capacity(core, 0);
        let objects: Vec<DenseObjectId> = self.table.objects_on(core).to_vec();
        for object in objects {
            let Some(size) = self.table.charged_bytes(object) else {
                continue;
            };
            self.table.unassign(object);
            if packing::place_balanced(&mut self.table, object, size).is_some() {
                self.stats.objects_rehomed += 1;
            } else {
                self.stats.objects_stranded += 1;
            }
        }
    }

    fn core_degraded(&mut self, core: o2_runtime::CoreId, slowdown_percent: u32) {
        self.fault_plane_armed = true;
        if core >= 64 {
            return;
        }
        // The degradation threshold reuses the pathology factor: a core
        // announced at `pathology_factor`× nominal cost (or worse) is no
        // longer a profitable migration target.
        let threshold = (self.cfg.pathology_factor * 100.0) as u32;
        if slowdown_percent >= threshold {
            self.degraded_mask |= 1u64 << core;
        } else {
            self.degraded_mask &= !(1u64 << core);
        }
    }

    fn fault_stats(&self) -> o2_runtime::PolicyFaultStats {
        o2_runtime::PolicyFaultStats {
            core_down_events: self.stats.core_down_events,
            objects_rehomed: self.stats.objects_rehomed,
            objects_stranded: self.stats.objects_stranded,
            degraded_avoids: self.stats.degraded_avoids,
        }
    }

    fn replication_stats(&self) -> PolicyReplicationStats {
        PolicyReplicationStats {
            promotions: self.stats.replica_promotions,
            demotions: self.stats.replica_demotions,
            invalidations: self.stats.replica_invalidations,
            replica_served: self.stats.replica_served,
        }
    }
}

impl std::fmt::Debug for O2Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("O2Policy")
            .field("objects_known", &self.registry.len())
            .field("objects_assigned", &self.table.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::{
        Action, BehaviourCtx, Engine, ObjectDescriptor, OpBehaviour, OpBuilder, OpGenerator,
        RuntimeConfig,
    };
    use o2_sim::{ContentionModel, Machine};

    fn quad_machine() -> Machine {
        let mut cfg = MachineConfig::quad4();
        cfg.contention = ContentionModel::None;
        Machine::new(cfg)
    }

    /// A generator that round-robins annotated scans over a set of objects.
    struct ScanGen {
        regions: Vec<(u64, u64, u64)>, // (object id, addr, size)
        next: usize,
        remaining: u64,
    }

    impl OpGenerator for ScanGen {
        fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
            if self.remaining == 0 {
                return vec![];
            }
            self.remaining -= 1;
            let (id, addr, size) = self.regions[self.next % self.regions.len()];
            self.next += 1;
            OpBuilder::annotated(id)
                .read(addr, size)
                .compute(200)
                .finish()
        }
    }

    #[test]
    fn expensive_objects_become_assigned_and_operations_migrate() {
        let mut machine = quad_machine();
        // Four 256 KB objects: far larger than what stays in a 64 KB L1 and
        // big enough that scanning them misses heavily.
        let regions: Vec<(u64, u64, u64)> = (0..4)
            .map(|i| {
                let r = machine.memory_mut().alloc(256 * 1024, i);
                (r.addr, r.addr, r.size)
            })
            .collect();
        let policy = O2Policy::with_defaults(machine.config());
        let mut engine = Engine::new(machine, Box::new(policy), RuntimeConfig::default());
        for (id, addr, size) in &regions {
            engine.register_object(ObjectDescriptor::new(*id, *addr, *size));
        }
        // One thread per core scanning all four objects round-robin.
        for core in 0..4 {
            engine.spawn(
                core,
                Box::new(OpBehaviour::new(ScanGen {
                    regions: regions.clone(),
                    next: core as usize,
                    remaining: 60,
                })),
            );
        }
        engine.run_until_cycles(60_000_000);
        assert_eq!(engine.total_ops(), 240);
        // The policy should have assigned the objects and begun migrating
        // operations to them.
        let migrations: u64 = (0..4).map(|t| engine.thread_stats(t).migrations).sum();
        assert!(migrations > 0, "no operations migrated");
        let in_migrations: u64 = (0..4)
            .map(|c| engine.machine().counters(c).migrations_in)
            .sum();
        assert!(in_migrations > 0);
    }

    #[test]
    fn cheap_objects_are_never_assigned() {
        let machine = quad_machine();
        let mut policy = O2Policy::with_defaults(machine.config());
        // Simulate many cheap operations via the SchedPolicy interface.
        let desc = ObjectDescriptor::new(0x1000, 0x1000, 4096);
        policy.register_object(0, &desc);
        for _ in 0..50 {
            let ctx = OpContext {
                thread: 0,
                core: 0,
                home_core: 0,
                object: 0,
                object_key: 0x1000,
                kind: AccessKind::Write,
                now: 0,
                machine: &machine,
            };
            let delta = CounterDelta {
                l2_misses: 1,
                busy_cycles: 1000,
                ..Default::default()
            };
            policy.on_ct_end(&ctx, &delta);
        }
        assert!(policy.table().is_empty());
        assert_eq!(policy.stats().assignments, 0);
    }

    #[test]
    fn expensive_object_is_assigned_after_min_ops() {
        let machine = quad_machine();
        let mut policy = O2Policy::with_defaults(machine.config());
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for i in 0..5 {
            let ctx = OpContext {
                thread: 0,
                core: 0,
                home_core: 0,
                object: 0,
                object_key: 0x1000,
                kind: AccessKind::Write,
                now: i,
                machine: &machine,
            };
            let delta = CounterDelta {
                l2_misses: 400,
                busy_cycles: 50_000,
                ..Default::default()
            };
            policy.on_ct_end(&ctx, &delta);
        }
        assert!(policy.table().is_assigned(0));
        assert_eq!(policy.stats().assignments, 1);

        // Subsequent ct_start calls from another core now migrate.
        let ctx = OpContext {
            thread: 1,
            core: 3,
            home_core: 3,
            object: 0,
            object_key: 0x1000,
            kind: AccessKind::Write,
            now: 100,
            machine: &machine,
        };
        let placement = policy.on_ct_start(&ctx);
        assert!(matches!(placement, Placement::On(_)));
        assert_eq!(policy.stats().migrations_requested, 1);
    }

    #[test]
    fn idle_assignments_decay_after_the_configured_epochs() {
        let machine = quad_machine();
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_decay = true;
        cfg.decay_epochs = 2;
        // Force decay regardless of how little of the budget is in use.
        cfg.decay_pressure_threshold = 0.0;
        let mut policy = O2Policy::new(machine.config(), cfg);
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            let ctx = OpContext {
                thread: 0,
                core: 0,
                home_core: 0,
                object: 0,
                object_key: 0x1000,
                kind: AccessKind::Write,
                now: 0,
                machine: &machine,
            };
            let delta = CounterDelta {
                l2_misses: 400,
                busy_cycles: 50_000,
                ..Default::default()
            };
            policy.on_ct_end(&ctx, &delta);
        }
        assert!(policy.table().is_assigned(0));
        // A second object, too large to place anywhere, keeps failing
        // placement: that demand is what allows idle assignments to decay.
        policy.register_object(1, &ObjectDescriptor::new(0x2000, 0x2000, 64 * 1024 * 1024));
        let idle_delta = vec![CounterDelta::default(); 4];
        for epoch in 0..3u64 {
            let ctx = OpContext {
                thread: 1,
                core: 1,
                home_core: 1,
                object: 1,
                object_key: 0x2000,
                kind: AccessKind::Write,
                now: epoch * 100_000,
                machine: &machine,
            };
            let delta = CounterDelta {
                l2_misses: 100_000,
                busy_cycles: 1_000_000,
                ..Default::default()
            };
            policy.on_ct_end(&ctx, &delta);
            let view = EpochView {
                now: (epoch + 1) * 100_000,
                machine: &machine,
                deltas: &idle_delta,
            };
            policy.on_epoch(&view);
        }
        assert!(!policy.table().is_assigned(0));
        assert_eq!(policy.stats().decays, 1);
    }

    /// Drives `on_ct_end` for one expensive operation on `(dense, key)`.
    fn expensive_op(policy: &mut O2Policy, machine: &Machine, dense: u32, key: u64) {
        let ctx = OpContext {
            thread: dense as usize,
            core: dense % 4,
            home_core: dense % 4,
            object: dense,
            object_key: key,
            kind: AccessKind::Write,
            now: 0,
            machine,
        };
        let delta = CounterDelta {
            l2_misses: 5_000,
            busy_cycles: 500_000,
            ..Default::default()
        };
        policy.on_ct_end(&ctx, &delta);
    }

    fn fire_idle_epoch(policy: &mut O2Policy, machine: &Machine, epoch: u64) {
        let idle = vec![CounterDelta::default(); 4];
        let view = EpochView {
            now: (epoch + 1) * 100_000,
            machine,
            deltas: &idle,
        };
        policy.on_epoch(&view);
    }

    #[test]
    fn idle_assignments_survive_when_nothing_fails_placement() {
        // The decay gate: idle assignments are only released when
        // `placement_failures_this_epoch > 0`. Without demand, an idle
        // assignment stays put no matter how long it idles or how full
        // the budget looks.
        let machine = quad_machine();
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_decay = true;
        cfg.decay_epochs = 1;
        cfg.decay_pressure_threshold = 0.0;
        let mut policy = O2Policy::new(machine.config(), cfg);
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            expensive_op(&mut policy, &machine, 0, 0x1000);
        }
        assert!(policy.table().is_assigned(0));
        for epoch in 0..6 {
            fire_idle_epoch(&mut policy, &machine, epoch);
        }
        assert!(
            policy.table().is_assigned(0),
            "idle assignment released without any placement failure"
        );
        assert_eq!(policy.stats().decays, 0);
    }

    #[test]
    fn decayed_bytes_return_to_the_packing_budget() {
        // Fill every core, then keep failing to place one more object:
        // decay must release an idle assignment and the freed bytes must
        // be usable by the very object whose failures opened the gate.
        let machine = quad_machine();
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_decay = true;
        cfg.decay_epochs = 2;
        let mut policy = O2Policy::new(machine.config(), cfg);
        let per_core = policy.table().capacity(0);
        let big = per_core - 40 * 1024; // fills a core, leaves ~40 KB
        for dense in 0..4u32 {
            let key = 0x1000 * (u64::from(dense) + 1);
            policy.register_object(dense, &ObjectDescriptor::new(key, key, big));
            for _ in 0..5 {
                expensive_op(&mut policy, &machine, dense, key);
            }
        }
        assert_eq!(policy.table().len(), 4, "one filler per core");
        assert!(policy.table().free_bytes(0) < 64 * 1024);
        // Object 4 needs more than any core's leftover, less than a core.
        policy.register_object(4, &ObjectDescriptor::new(0x9000, 0x9000, 600 * 1024));
        let mut epoch = 0u64;
        // Two epochs of failing demand: fillers idle up but are not yet
        // idle for `decay_epochs`, so nothing decays.
        for _ in 0..2 {
            expensive_op(&mut policy, &machine, 4, 0x9000);
            fire_idle_epoch(&mut policy, &machine, epoch);
            epoch += 1;
        }
        assert_eq!(policy.stats().decays, 0);
        assert!(!policy.table().is_assigned(4));
        // Third epoch: the fillers are now idle long enough and the gate
        // is open (pressure high, failures pending) — exactly one decays
        // (one release per failing placement, not a mass flush).
        expensive_op(&mut policy, &machine, 4, 0x9000);
        fire_idle_epoch(&mut policy, &machine, epoch);
        epoch += 1;
        assert_eq!(policy.stats().decays, 1);
        // The longest-idle tie broke by key: object 0 (key 0x1000) went.
        assert!(!policy.table().is_assigned(0));
        let freed_core = 0u32;
        assert_eq!(
            policy.table().free_bytes(freed_core),
            policy.table().capacity(freed_core),
            "decayed bytes did not return to the packing budget"
        );
        // The returned budget is immediately usable: the next operation on
        // the starved object places it into the freed space.
        expensive_op(&mut policy, &machine, 4, 0x9000);
        assert!(policy.table().is_assigned(4));
        assert_eq!(policy.table().primary(4), Some(freed_core));
        let _ = epoch;
    }

    #[test]
    fn core_down_rehomes_objects_and_blocks_the_dead_core() {
        let machine = quad_machine();
        let mut policy = O2Policy::with_defaults(machine.config());
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            expensive_op(&mut policy, &machine, 0, 0x1000);
        }
        let dead = policy.table().primary(0).expect("object assigned");
        policy.core_down(dead);
        let s = policy.stats();
        assert_eq!(s.core_down_events, 1);
        assert_eq!(s.objects_rehomed, 1);
        assert_eq!(s.objects_stranded, 0);
        let new_home = policy.table().primary(0).expect("object re-homed");
        assert_ne!(new_home, dead);
        assert_eq!(policy.table().capacity(dead), 0);
        // ct_start now targets the new home, never the dead core.
        let ctx = OpContext {
            thread: 0,
            core: dead,
            home_core: dead,
            object: 0,
            object_key: 0x1000,
            kind: AccessKind::Write,
            now: 0,
            machine: &machine,
        };
        assert_eq!(policy.on_ct_start(&ctx), Placement::On(new_home));
        let fs = policy.fault_stats();
        assert_eq!(fs.core_down_events, 1);
        assert_eq!(fs.objects_rehomed, 1);
    }

    #[test]
    fn degraded_core_flips_migration_to_data_movement() {
        let machine = quad_machine();
        let mut policy = O2Policy::with_defaults(machine.config());
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            expensive_op(&mut policy, &machine, 0, 0x1000);
        }
        let home = policy.table().primary(0).expect("object assigned");
        let other = (home + 1) % 4;
        let ctx = OpContext {
            thread: 0,
            core: other,
            home_core: other,
            object: 0,
            object_key: 0x1000,
            kind: AccessKind::Write,
            now: 0,
            machine: &machine,
        };
        assert_eq!(policy.on_ct_start(&ctx), Placement::On(home));
        // A 4x slowdown crosses the default threshold (3x): run local.
        policy.core_degraded(home, 400);
        assert_eq!(policy.on_ct_start(&ctx), Placement::Local);
        assert_eq!(policy.stats().degraded_avoids, 1);
        // A mild slowdown below the threshold does not block migration,
        // and recovery (100) clears the flag.
        policy.core_degraded(home, 150);
        assert_eq!(policy.on_ct_start(&ctx), Placement::On(home));
        policy.core_degraded(home, 400);
        policy.core_degraded(home, 100);
        assert_eq!(policy.on_ct_start(&ctx), Placement::On(home));
    }

    #[test]
    fn counter_detector_flags_and_clears_slow_cores() {
        let machine = quad_machine();
        let mut policy = O2Policy::with_defaults(machine.config());
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            expensive_op(&mut policy, &machine, 0, 0x1000);
        }
        let home = policy.table().primary(0).expect("object assigned");
        let other = (home + 1) % 4;
        // A sub-threshold degradation announcement arms the detector
        // without avoiding anything by itself.
        policy.core_degraded(home, 100);
        let rate = |ops, busy| CounterDelta {
            busy_cycles: busy,
            operations_completed: ops,
            ..Default::default()
        };
        // The assigned core completes ops at 1/10 its peers' per-cycle
        // rate: the armed detector flags it without any announced fault
        // crossing the threshold.
        let mut deltas = vec![rate(1000, 100_000); 4];
        deltas[home as usize] = rate(100, 100_000);
        policy.on_epoch(&EpochView {
            now: 100_000,
            machine: &machine,
            deltas: &deltas,
        });
        let ctx = OpContext {
            thread: 0,
            core: other,
            home_core: other,
            object: 0,
            object_key: 0x1000,
            kind: AccessKind::Write,
            now: 0,
            machine: &machine,
        };
        assert_eq!(policy.on_ct_start(&ctx), Placement::Local);
        assert!(policy.stats().degraded_avoids >= 1);
        // Rates even out: the next epoch clears the flag.
        policy.on_epoch(&EpochView {
            now: 200_000,
            machine: &machine,
            deltas: &vec![rate(1000, 100_000); 4],
        });
        assert_eq!(policy.on_ct_start(&ctx), Placement::On(home));
    }

    #[test]
    fn policy_name_and_debug() {
        let machine = quad_machine();
        let policy = O2Policy::with_defaults(machine.config());
        assert_eq!(policy.name(), "coretime");
        let dbg = format!("{policy:?}");
        assert!(dbg.contains("O2Policy"));
    }

    /// Measured-read-fraction serving on the quad test machine: every
    /// core may hold a copy, two ops per epoch make an object hot, and
    /// the 0.60/0.40 hysteresis band matches the scale scenarios.
    fn serving_config() -> CoreTimeConfig {
        let mut cfg = CoreTimeConfig::default();
        cfg.enable_replication = true;
        cfg.serve_from_replicas = true;
        cfg.max_replicas = 4;
        cfg.replication_hot_ops = 2;
        cfg.replica_promote_read_fraction = 0.60;
        cfg.replica_demote_read_fraction = 0.40;
        cfg
    }

    /// Runs one expensive operation on object 0 from `core` with the
    /// given access kind, through both halves of the ct interface.
    fn serving_op(
        policy: &mut O2Policy,
        machine: &Machine,
        core: u32,
        kind: AccessKind,
    ) -> Placement {
        let ctx = OpContext {
            thread: core as usize,
            core,
            home_core: core,
            object: 0,
            object_key: 0x1000,
            kind,
            now: 0,
            machine,
        };
        let placement = policy.on_ct_start(&ctx);
        let delta = CounterDelta {
            l2_misses: 5_000,
            busy_cycles: 500_000,
            ..Default::default()
        };
        policy.on_ct_end(&ctx, &delta);
        placement
    }

    /// Assigns object 0 and spreads a copy onto every core via the
    /// demand-fill path; returns the primary core.
    fn replicate_everywhere(policy: &mut O2Policy, machine: &Machine) -> u32 {
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            serving_op(policy, machine, 0, AccessKind::Read);
        }
        assert!(policy.table().is_assigned(0), "reads never assigned");
        let primary = policy.table().primary(0).expect("assigned");
        for core in 0..4 {
            serving_op(policy, machine, core, AccessKind::Read);
        }
        assert_eq!(policy.table().replicas(0).len(), 4);
        primary
    }

    #[test]
    fn first_write_invalidates_every_replica_and_frees_the_budget() {
        let machine = quad_machine();
        let mut policy = O2Policy::new(machine.config(), serving_config());
        let primary = replicate_everywhere(&mut policy, &machine);
        for core in 0..4u32 {
            assert_eq!(
                policy.table().used_bytes(core),
                32 * 1024,
                "core {core} does not charge its copy"
            );
        }
        // The first write runs in place, and by the time it does, every
        // non-primary copy is already gone — no stale replica can serve a
        // read afterwards.
        let placement = serving_op(&mut policy, &machine, (primary + 2) % 4, AccessKind::Write);
        assert_eq!(placement, Placement::Local);
        assert_eq!(policy.stats().replica_invalidations, 3);
        assert_eq!(policy.table().replicas(0).len(), 1);
        assert_eq!(policy.table().primary(0), Some(primary));
        // The dropped copies' bytes return to the packing budget at once.
        for core in 0..4u32 {
            let expected = if core == primary { 32 * 1024 } else { 0 };
            assert_eq!(policy.table().used_bytes(core), expected);
        }
    }

    #[test]
    fn alternating_reads_and_writes_hold_the_hysteresis_band() {
        let machine = quad_machine();
        let mut policy = O2Policy::new(machine.config(), serving_config());
        replicate_everywhere(&mut policy, &machine);
        // Alternating read/write accounting traffic settles the EWMA into
        // the (0.40, 0.60) band — strictly between the thresholds — so
        // twenty epochs of it must neither demote the copies nor flap
        // them down and up.
        let idle = vec![CounterDelta::default(); 4];
        let promotions_before = policy.stats().replica_promotions;
        for epoch in 0..20u64 {
            for i in 0..10 {
                let kind = if i % 2 == 0 {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                let ctx = OpContext {
                    thread: 0,
                    core: 0,
                    home_core: 0,
                    object: 0,
                    object_key: 0x1000,
                    kind,
                    now: epoch * 100_000,
                    machine: &machine,
                };
                let delta = CounterDelta {
                    l2_misses: 100,
                    busy_cycles: 10_000,
                    ..Default::default()
                };
                policy.on_ct_end(&ctx, &delta);
            }
            policy.on_epoch(&EpochView {
                now: (epoch + 1) * 100_000,
                machine: &machine,
                deltas: &idle,
            });
        }
        assert_eq!(policy.stats().replica_demotions, 0, "band traffic demoted");
        assert_eq!(
            policy.stats().replica_promotions,
            promotions_before,
            "band traffic re-promoted"
        );
        assert_eq!(policy.table().replicas(0).len(), 4);
        // A sustained write-only phase leaves the band: exactly one
        // demotion tears the copies down to the primary.
        for epoch in 20..24u64 {
            for _ in 0..10 {
                let ctx = OpContext {
                    thread: 0,
                    core: 0,
                    home_core: 0,
                    object: 0,
                    object_key: 0x1000,
                    kind: AccessKind::Write,
                    now: epoch * 100_000,
                    machine: &machine,
                };
                policy.on_ct_end(
                    &ctx,
                    &CounterDelta {
                        l2_misses: 100,
                        busy_cycles: 10_000,
                        ..Default::default()
                    },
                );
            }
            policy.on_epoch(&EpochView {
                now: (epoch + 1) * 100_000,
                machine: &machine,
                deltas: &idle,
            });
        }
        assert_eq!(policy.stats().replica_demotions, 1);
        assert_eq!(policy.table().replicas(0).len(), 1);
    }

    #[test]
    fn replica_sets_stay_on_live_cores_under_the_fault_plane() {
        let machine = quad_machine();
        let mut policy = O2Policy::new(machine.config(), serving_config());
        let primary = replicate_everywhere(&mut policy, &machine);
        let dead = (primary + 1) % 4;
        policy.core_down(dead);
        assert_eq!(
            policy.table().replicas(0).mask() & (1 << dead),
            0,
            "dead core still holds a copy"
        );
        // A demand read arriving on the dead core must not re-create a
        // copy there (the thread is being drained; placement still works).
        serving_op(&mut policy, &machine, dead, AccessKind::Read);
        assert_eq!(policy.table().replicas(0).mask() & (1 << dead), 0);
        // Hot read traffic on the survivors re-spreads the object, but
        // only across live cores — both the demand path and the epoch
        // promotion planner respect the avoid mask.
        let idle = vec![CounterDelta::default(); 4];
        for epoch in 0..3u64 {
            for core in 0..4u32 {
                if core != dead {
                    serving_op(&mut policy, &machine, core, AccessKind::Read);
                }
            }
            policy.on_epoch(&EpochView {
                now: (epoch + 1) * 100_000,
                machine: &machine,
                deltas: &idle,
            });
        }
        let mask = policy.table().replicas(0).mask();
        assert_eq!(mask & (1 << dead), 0, "promotion targeted a dead core");
        assert_eq!(mask.count_ones(), 3, "survivors did not all regain copies");
    }

    #[test]
    fn cap_saturated_reads_rotate_across_every_copy() {
        let machine = quad_machine();
        let mut cfg = serving_config();
        cfg.max_replicas = 2;
        let mut policy = O2Policy::new(machine.config(), cfg);
        policy.register_object(0, &ObjectDescriptor::new(0x1000, 0x1000, 32 * 1024));
        for _ in 0..5 {
            serving_op(&mut policy, &machine, 0, AccessKind::Read);
        }
        let primary = policy.table().primary(0).expect("assigned");
        // One demand fill reaches the cap of two copies.
        let second = (primary + 1) % 4;
        serving_op(&mut policy, &machine, second, AccessKind::Read);
        assert_eq!(policy.table().replicas(0).len(), 2);
        // A seeded storm of reads from the two copyless cores: the
        // rotated selector must spread them across both copies instead of
        // funnelling every request onto one core.
        let mut per_copy = [0u64; 4];
        for i in 0..100u32 {
            let from = [(primary + 2) % 4, (primary + 3) % 4][(i % 2) as usize];
            match serving_op(&mut policy, &machine, from, AccessKind::Read) {
                Placement::On(core) => per_copy[core as usize] += 1,
                Placement::Local => per_copy[from as usize] += 1,
            }
        }
        assert!(
            per_copy[primary as usize] > 0 && per_copy[second as usize] > 0,
            "a copy served zero operations in the storm: {per_copy:?}"
        );
        assert!(policy.stats().replica_served > 0);
        // Nothing landed on the copyless cores.
        assert_eq!(per_copy[(primary as usize + 2) % 4], 0);
        assert_eq!(per_copy[(primary as usize + 3) % 4], 0);
    }
}
