//! The greedy first-fit "cache packing" algorithm (Section 4).
//!
//! "CoreTime uses a greedy first fit cache packing algorithm to decide
//! what core to assign an object to. [...] The cache packing algorithm
//! works by assigning each object that is expensive to fetch to a cache
//! with free space. The algorithm executes in Θ(n·log n) time, where n is
//! the number of objects."
//!
//! Two forms are provided:
//!
//! * [`pack`] — the batch algorithm from the paper: sort objects by
//!   decreasing expense and first-fit each into the per-core budgets
//!   (dominated by the sort, hence Θ(n·log n));
//! * [`place_one`] — the incremental form used online by the policy when
//!   monitoring promotes a single object.

use o2_runtime::{CoreId, DenseObjectId};

use crate::table::AssignmentTable;

/// An object to be packed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackItem {
    /// The object.
    pub object: DenseObjectId,
    /// Its size in bytes.
    pub size: u64,
    /// Its expense (expected fetch cost per operation); more expensive
    /// objects are packed first.
    pub expense: f64,
}

/// The outcome of a batch packing run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Packing {
    /// Object → core assignments produced.
    pub placed: Vec<(DenseObjectId, CoreId)>,
    /// Objects that did not fit in any core's remaining budget; these stay
    /// under hardware management.
    pub unplaced: Vec<DenseObjectId>,
}

impl Packing {
    /// The core an object was packed onto, if any.
    pub fn core_of(&self, object: DenseObjectId) -> Option<CoreId> {
        self.placed
            .iter()
            .find(|(o, _)| *o == object)
            .map(|(_, c)| *c)
    }
}

/// Batch cache packing: sorts by decreasing expense (ties broken by object
/// id for determinism) and first-fits each object into the per-core
/// capacities.
pub fn pack(items: &[PackItem], capacities: &[u64]) -> Packing {
    let mut sorted: Vec<&PackItem> = items.iter().collect();
    sorted.sort_by(|a, b| {
        b.expense
            .partial_cmp(&a.expense)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.object.cmp(&b.object))
    });

    let mut free: Vec<u64> = capacities.to_vec();
    let mut out = Packing::default();
    for item in sorted {
        // First fit: scan cores in index order, take the first with space.
        let slot = free.iter().position(|&f| f >= item.size);
        match slot {
            Some(core) => {
                free[core] -= item.size;
                out.placed.push((item.object, core as CoreId));
            }
            None => out.unplaced.push(item.object),
        }
    }
    out
}

/// Incremental first-fit placement of a single object into an existing
/// [`AssignmentTable`]. Scans cores in index order and assigns the object
/// to the first core whose remaining budget fits it; falls back to the
/// core with the most free space if `best_effort` is set and no core has
/// room (without overflowing — it simply fails otherwise).
pub fn place_one(table: &mut AssignmentTable, object: DenseObjectId, size: u64) -> Option<CoreId> {
    for core in 0..table.num_cores() as CoreId {
        if table.free_bytes(core) >= size {
            let ok = table.assign(object, size, core);
            debug_assert!(ok);
            return Some(core);
        }
    }
    None
}

/// Places an object on the core that currently has the most free budget,
/// if it fits there.
pub fn place_most_free(
    table: &mut AssignmentTable,
    object: DenseObjectId,
    size: u64,
) -> Option<CoreId> {
    let core = table.most_free_core();
    if table.free_bytes(core) >= size {
        table.assign(object, size, core);
        Some(core)
    } else {
        None
    }
}

/// Balanced incremental placement: first fit over cores ordered by
/// ascending assigned bytes (ties broken by core id).
///
/// Plain first fit in core-index order (the literal reading of the paper's
/// algorithm, [`place_one`]) concentrates the first objects on the first
/// cores and relies entirely on the runtime rebalancer to spread them —
/// which shows up as a migration hot-spot exactly as Section 4 predicts.
/// Visiting the least-loaded core first keeps the same greedy structure
/// while also satisfying the Section 3 requirement that the scheduler
/// "balance both objects and operations across caches and cores"; it is
/// the default used by [`crate::O2Policy`].
///
/// Cores are visited in ascending `(used_bytes, core)` order by repeated
/// selection rather than by materialising a sorted `Vec` — this runs on
/// the placement path, which is allocation-free end to end.
pub fn place_balanced(
    table: &mut AssignmentTable,
    object: DenseObjectId,
    size: u64,
) -> Option<CoreId> {
    let n = table.num_cores() as CoreId;
    let mut prev: Option<(u64, CoreId)> = None;
    for _ in 0..n {
        let mut best: Option<(u64, CoreId)> = None;
        for c in 0..n {
            let key = (table.used_bytes(c), c);
            let after_prev = prev.map_or(true, |p| key > p);
            if after_prev && best.map_or(true, |b| key < b) {
                best = Some(key);
            }
        }
        let (_, core) = best?;
        if table.free_bytes(core) >= size {
            let ok = table.assign(object, size, core);
            debug_assert!(ok);
            return Some(core);
        }
        prev = best;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(sizes_expenses: &[(u64, f64)]) -> Vec<PackItem> {
        sizes_expenses
            .iter()
            .enumerate()
            .map(|(i, &(size, expense))| PackItem {
                object: i as DenseObjectId + 1,
                size,
                expense,
            })
            .collect()
    }

    #[test]
    fn packs_most_expensive_first() {
        // Two cores of 100 bytes; three 60-byte objects with different
        // expenses: the two most expensive fit, the cheapest does not.
        let its = items(&[(60, 1.0), (60, 5.0), (60, 3.0)]);
        let p = pack(&its, &[100, 100]);
        assert_eq!(p.placed.len(), 2);
        assert_eq!(p.core_of(2), Some(0)); // most expensive -> first core
        assert_eq!(p.core_of(3), Some(1));
        assert_eq!(p.unplaced, vec![1]);
    }

    #[test]
    fn first_fit_fills_cores_in_order() {
        let its = items(&[(40, 4.0), (40, 3.0), (40, 2.0), (40, 1.0)]);
        let p = pack(&its, &[100, 100]);
        // 40+40 fit on core 0, the next two go to core 1.
        assert_eq!(p.core_of(1), Some(0));
        assert_eq!(p.core_of(2), Some(0));
        assert_eq!(p.core_of(3), Some(1));
        assert_eq!(p.core_of(4), Some(1));
        assert!(p.unplaced.is_empty());
    }

    #[test]
    fn oversized_objects_are_unplaced() {
        let its = items(&[(500, 10.0)]);
        let p = pack(&its, &[100, 100]);
        assert!(p.placed.is_empty());
        assert_eq!(p.unplaced, vec![1]);
    }

    #[test]
    fn equal_expense_is_deterministic_by_object_id() {
        let its = items(&[(50, 1.0), (50, 1.0), (50, 1.0)]);
        let a = pack(&its, &[100, 100]);
        let b = pack(&its, &[100, 100]);
        assert_eq!(a, b);
        assert_eq!(a.core_of(1), Some(0));
        assert_eq!(a.core_of(2), Some(0));
        assert_eq!(a.core_of(3), Some(1));
    }

    #[test]
    fn empty_inputs() {
        let p = pack(&[], &[100]);
        assert!(p.placed.is_empty() && p.unplaced.is_empty());
        let its = items(&[(10, 1.0)]);
        let p = pack(&its, &[]);
        assert_eq!(p.unplaced, vec![1]);
    }

    #[test]
    fn place_one_uses_first_fitting_core() {
        let mut t = AssignmentTable::new(vec![100, 100, 100]);
        t.assign(99, 80, 0);
        assert_eq!(place_one(&mut t, 1, 50), Some(1));
        assert_eq!(place_one(&mut t, 2, 80), Some(2));
        assert_eq!(place_one(&mut t, 3, 90), None);
        assert_eq!(t.primary(1), Some(1));
        assert!(!t.is_assigned(3));
    }

    #[test]
    fn place_balanced_spreads_equal_objects_across_cores() {
        let mut t = AssignmentTable::new(vec![100, 100, 100, 100]);
        for obj in 1..=4u32 {
            place_balanced(&mut t, obj, 60).expect("fits");
        }
        // One object per core rather than two on core 0 and two on core 1.
        for core in 0..4 {
            assert_eq!(t.objects_on(core).len(), 1, "core {core} unbalanced");
        }
        // A fifth object of the same size no longer fits anywhere.
        assert_eq!(place_balanced(&mut t, 5, 60), None);
        // A smaller one still does.
        assert!(place_balanced(&mut t, 6, 30).is_some());
    }

    #[test]
    fn place_most_free_balances() {
        let mut t = AssignmentTable::new(vec![100, 100]);
        t.assign(1, 70, 0);
        assert_eq!(place_most_free(&mut t, 2, 50), Some(1));
        assert_eq!(place_most_free(&mut t, 3, 80), None);
    }

    #[test]
    fn packing_respects_total_capacity() {
        // Property-style check: nothing placed can exceed per-core budgets.
        let its: Vec<PackItem> = (0..50u32)
            .map(|i| PackItem {
                object: i,
                size: 10 + u64::from(i % 7) * 5,
                expense: (i % 13) as f64,
            })
            .collect();
        let caps = [120u64, 80, 60, 40];
        let p = pack(&its, &caps);
        let mut used = vec![0u64; caps.len()];
        for (obj, core) in &p.placed {
            let size = its.iter().find(|it| it.object == *obj).unwrap().size;
            used[*core as usize] += size;
        }
        for (u, c) in used.iter().zip(caps.iter()) {
            assert!(u <= c, "core over budget: {u} > {c}");
        }
        assert_eq!(p.placed.len() + p.unplaced.len(), its.len());
    }
}
