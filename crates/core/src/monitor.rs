//! Runtime monitoring decisions.
//!
//! "For each object, CoreTime counts the number of cache misses that occur
//! between a pair of CoreTime annotations and assumes the misses are caused
//! by fetching the object. [...] When there are many cache misses while
//! manipulating an object, CoreTime will assign the object to a cache [...]
//! otherwise, CoreTime will do nothing and the shared-memory hardware will
//! manage the object." (Section 4)
//!
//! The per-object miss statistics live in [`crate::object::ObjectRegistry`];
//! this module holds the decision logic that turns those statistics into an
//! assignment decision.

use crate::config::CoreTimeConfig;
use crate::object::ObjectInfo;

/// What the monitor wants to do with an object after an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Leave the object to the shared-memory hardware.
    LeaveToHardware,
    /// The object is expensive to fetch: assign it to a cache.
    Assign,
    /// The object is already assigned; keep it where it is.
    KeepAssigned,
}

/// Decides whether an object should be assigned to a cache.
///
/// The criteria follow Section 4: the object must have been observed for a
/// minimum number of operations, its smoothed miss rate must exceed the
/// threshold, and the expected per-operation fetch cost must exceed the
/// migration cost (otherwise migrating the operation cannot pay off).
pub fn verdict(cfg: &CoreTimeConfig, info: &ObjectInfo, already_assigned: bool) -> MonitorVerdict {
    if already_assigned {
        return MonitorVerdict::KeepAssigned;
    }
    if info.ops_total < cfg.min_ops_before_assign {
        return MonitorVerdict::LeaveToHardware;
    }
    if cfg.migration_is_beneficial(info.ewma_misses_per_op) {
        MonitorVerdict::Assign
    } else {
        MonitorVerdict::LeaveToHardware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectRegistry;

    fn info_with(misses_per_op: u64, ops: u64) -> ObjectInfo {
        let mut reg = ObjectRegistry::new(64);
        for _ in 0..ops {
            reg.record_op(1, 0x1000, misses_per_op, 1.0, o2_runtime::AccessKind::Write);
        }
        reg.get(1).unwrap().clone()
    }

    #[test]
    fn cheap_objects_stay_with_hardware() {
        let cfg = CoreTimeConfig::default();
        let info = info_with(2, 10);
        assert_eq!(verdict(&cfg, &info, false), MonitorVerdict::LeaveToHardware);
    }

    #[test]
    fn expensive_objects_get_assigned_after_enough_ops() {
        let cfg = CoreTimeConfig::default();
        let warm = info_with(300, 1);
        assert_eq!(
            verdict(&cfg, &warm, false),
            MonitorVerdict::LeaveToHardware,
            "one operation is not enough history"
        );
        let seasoned = info_with(300, 5);
        assert_eq!(verdict(&cfg, &seasoned, false), MonitorVerdict::Assign);
    }

    #[test]
    fn assigned_objects_are_kept() {
        let cfg = CoreTimeConfig::default();
        let info = info_with(300, 5);
        assert_eq!(verdict(&cfg, &info, true), MonitorVerdict::KeepAssigned);
    }

    #[test]
    fn marginal_objects_fail_the_cost_benefit_test() {
        let cfg = CoreTimeConfig::default();
        // 10 misses/op * 120 cycles = 1200 < 2000-cycle migration.
        let info = info_with(10, 10);
        assert_eq!(verdict(&cfg, &info, false), MonitorVerdict::LeaveToHardware);
    }
}
