//! Frequency-based on-chip replacement (Section 6.2).
//!
//! "Working sets larger than the total on-chip memory present another
//! interesting tradeoff. In these situations O2 schedulers might want to
//! use a cache replacement policy that, for example, stores the objects
//! accessed most frequently on-chip and stores the less frequently accessed
//! objects off-chip."
//!
//! When the packer finds no core with room for a newly expensive object,
//! this module decides whether the object deserves a slot more than some
//! already-assigned objects; if so, it evicts the colder objects and admits
//! the new one.

use o2_runtime::{CoreId, DenseObjectId, ObjectId};

use crate::object::ObjectRegistry;
use crate::table::AssignmentTable;

/// The outcome of a replacement attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// The core the new object was assigned to.
    pub core: CoreId,
    /// Objects that were evicted (unassigned) to make room.
    pub evicted: Vec<DenseObjectId>,
}

/// Tries to admit `object` (of `size` bytes, with `frequency` operations
/// last epoch) by evicting strictly colder objects from a single core.
///
/// The core chosen is the one where the needed room can be freed by
/// evicting the coldest victims; eviction only happens if every victim is
/// strictly colder than the incoming object, so the policy converges to
/// keeping the most frequently used objects on-chip.
pub fn admit_with_replacement(
    table: &mut AssignmentTable,
    registry: &ObjectRegistry,
    object: DenseObjectId,
    size: u64,
    frequency: u64,
) -> Option<Admission> {
    // (core, victims to evict, bytes freed by evicting them)
    type Candidate = (CoreId, Vec<(DenseObjectId, u64)>, u64);
    let mut best: Option<Candidate> = None;

    for core in 0..table.num_cores() as CoreId {
        if table.capacity(core) < size {
            continue;
        }
        let needed = size.saturating_sub(table.free_bytes(core));
        if needed == 0 {
            // There is room without evicting anything; the caller should
            // have used plain placement, but handle it gracefully.
            best = Some((core, Vec::new(), 0));
            break;
        }
        // Candidate victims: strictly colder objects on this core, coldest
        // first, ties broken by external key. Sizes come from the table's
        // charged bytes, so the freed estimate matches what eviction will
        // actually release.
        let mut victims: Vec<(DenseObjectId, ObjectId, u64, u64)> = table
            .objects_on(core)
            .iter()
            .filter_map(|&o| {
                let charged = table.charged_bytes(o)?;
                registry
                    .get(o)
                    .map(|info| (o, info.key(), info.ops_last_epoch, charged))
            })
            .filter(|&(_, _, ops, _)| ops < frequency)
            .collect();
        victims.sort_by_key(|&(_, key, ops, _)| (ops, key));

        let mut freed = 0u64;
        let mut chosen: Vec<(DenseObjectId, u64)> = Vec::new();
        let mut victim_heat = 0u64;
        for (id, _, ops, vsize) in victims {
            if freed >= needed {
                break;
            }
            freed += vsize;
            victim_heat += ops;
            chosen.push((id, vsize));
        }
        if freed < needed {
            continue;
        }
        // Prefer the core whose victims are collectively the coldest.
        let better = match &best {
            None => true,
            Some((_, _, heat)) => victim_heat < *heat,
        };
        if better {
            best = Some((core, chosen, victim_heat));
        }
    }

    let (core, victims, _) = best?;
    let mut evicted = Vec::new();
    for (victim, _vsize) in victims {
        table.unassign(victim);
        evicted.push(victim);
    }
    if !table.assign(object, size, core) {
        // Should not happen (we freed enough room), but keep the table
        // consistent if it does.
        return None;
    }
    Some(Admission { core, evicted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::ObjectDescriptor;

    fn registry(entries: &[(u32, u64, u64)]) -> ObjectRegistry {
        // (id, size, ops_last_epoch)
        let mut reg = ObjectRegistry::new(64);
        for &(id, size, ops) in entries {
            reg.register(
                id,
                ObjectDescriptor::new(u64::from(id), u64::from(id) * 0x10000, size),
            );
            for _ in 0..ops {
                reg.record_op(id, u64::from(id), 1, 0.3, o2_runtime::AccessKind::Write);
            }
        }
        reg.roll_epoch();
        reg
    }

    #[test]
    fn evicts_colder_objects_to_admit_a_hotter_one() {
        let mut table = AssignmentTable::new(vec![10_000, 10_000]);
        let reg = registry(&[(1, 6_000, 2), (2, 6_000, 3), (3, 6_000, 50)]);
        table.assign(1, 6_000, 0);
        table.assign(2, 6_000, 1);
        let adm = admit_with_replacement(&mut table, &reg, 3, 6_000, 50).expect("admitted");
        assert_eq!(adm.evicted.len(), 1);
        assert!(table.is_assigned(3));
        // The evicted object is no longer assigned.
        assert!(!table.is_assigned(adm.evicted[0]));
    }

    #[test]
    fn does_not_evict_hotter_objects() {
        let mut table = AssignmentTable::new(vec![10_000]);
        let reg = registry(&[(1, 6_000, 100), (2, 6_000, 5)]);
        table.assign(1, 6_000, 0);
        assert!(admit_with_replacement(&mut table, &reg, 2, 6_000, 5).is_none());
        assert!(table.is_assigned(1));
        assert!(!table.is_assigned(2));
    }

    #[test]
    fn prefers_the_core_with_the_coldest_victims() {
        let mut table = AssignmentTable::new(vec![10_000, 10_000]);
        let reg = registry(&[(1, 8_000, 20), (2, 8_000, 1), (3, 8_000, 40)]);
        table.assign(1, 8_000, 0);
        table.assign(2, 8_000, 1);
        let adm = admit_with_replacement(&mut table, &reg, 3, 8_000, 40).expect("admitted");
        assert_eq!(adm.core, 1);
        assert_eq!(adm.evicted, vec![2]);
    }

    #[test]
    fn uses_free_space_when_available() {
        let mut table = AssignmentTable::new(vec![10_000]);
        let reg = registry(&[(1, 4_000, 10)]);
        table.assign(1, 4_000, 0);
        let adm = admit_with_replacement(&mut table, &reg, 2, 4_000, 1).expect("admitted");
        assert!(adm.evicted.is_empty());
        assert!(table.is_assigned(1) && table.is_assigned(2));
    }

    #[test]
    fn object_larger_than_any_core_is_rejected() {
        let mut table = AssignmentTable::new(vec![10_000, 10_000]);
        let reg = registry(&[]);
        assert!(admit_with_replacement(&mut table, &reg, 1, 50_000, 100).is_none());
    }

    #[test]
    fn may_evict_several_victims() {
        let mut table = AssignmentTable::new(vec![12_000]);
        let reg = registry(&[(1, 4_000, 1), (2, 4_000, 2), (3, 4_000, 3), (4, 12_000, 99)]);
        table.assign(1, 4_000, 0);
        table.assign(2, 4_000, 0);
        table.assign(3, 4_000, 0);
        let adm = admit_with_replacement(&mut table, &reg, 4, 12_000, 99).expect("admitted");
        assert_eq!(adm.evicted.len(), 3);
        assert_eq!(table.objects_on(0), &[4]);
    }
}
