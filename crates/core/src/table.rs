//! The object→core assignment table consulted by `ct_start`.
//!
//! "`ct_start(o)` performs a table lookup to determine if the object `o`
//! is scheduled to a specific core" (Section 4). The table also tracks how
//! many bytes each core's cache budget has been packed with, which is what
//! the greedy cache-packing algorithm consumes.
//!
//! The table is a flat slab indexed by dense object id: one
//! [`AssignmentSlot`] per object holding the primary core and an inline
//! bitmask of every core with a copy. The `ct_start` lookup is two array
//! reads and the whole decision path allocates nothing — the previous
//! implementation kept a `HashMap<ObjectId, Vec<CoreId>>` and paid a hash
//! plus a heap-allocated core list per object.

use o2_runtime::{CoreId, DenseObjectId};

/// Sentinel primary core for "not assigned".
const NO_CORE: CoreId = CoreId::MAX;

/// Per-object assignment state: the primary core, a bitmask of every
/// core holding a copy (primary included), and the bytes each copy was
/// charged at. Kept inline in the table's slab.
///
/// Recording the charged size in the slot makes release exact: an
/// object's *registry* size may drift after assignment (the estimated
/// size of an auto-registered object grows towards the largest observed
/// footprint), and releasing at the drifted size would corrupt the
/// per-core byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignmentSlot {
    primary: CoreId,
    cores: u64,
    bytes: u64,
}

impl AssignmentSlot {
    const VACANT: AssignmentSlot = AssignmentSlot {
        primary: NO_CORE,
        cores: 0,
        bytes: 0,
    };

    fn is_assigned(&self) -> bool {
        self.primary != NO_CORE
    }
}

/// The set of cores holding an object, as an inline bitmask. Iteration is
/// in ascending core order; all set operations are branch-free bit tricks,
/// so `ct_start` never touches the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreSet(u64);

impl CoreSet {
    /// Whether no core holds the object.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores holding the object.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `core` holds a copy.
    pub fn contains(self, core: CoreId) -> bool {
        core < 64 && self.0 & (1u64 << core) != 0
    }

    /// The cores in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let core = bits.trailing_zeros();
            bits &= bits - 1;
            Some(core)
        })
    }

    /// The raw bitmask.
    pub fn mask(self) -> u64 {
        self.0
    }
}

/// The assignment table: object → one primary core plus optional replicas.
#[derive(Debug, Clone)]
pub struct AssignmentTable {
    /// Assignment slot per dense object id.
    slots: Vec<AssignmentSlot>,
    /// Bytes of objects assigned to each core.
    used_bytes: Vec<u64>,
    /// Per-core capacity budgets in bytes.
    capacities: Vec<u64>,
    /// Objects assigned to each core (primary or replica), in assignment
    /// order. Kept for the epoch planners; the per-operation path never
    /// reads it.
    per_core: Vec<Vec<DenseObjectId>>,
    /// Number of currently assigned objects.
    assigned: usize,
}

impl AssignmentTable {
    /// Creates a table for cores with the given capacity budgets.
    pub fn new(capacities: Vec<u64>) -> Self {
        let n = capacities.len();
        assert!(n <= 64, "AssignmentTable supports at most 64 cores");
        Self {
            slots: Vec::new(),
            used_bytes: vec![0; n],
            capacities,
            per_core: vec![Vec::new(); n],
            assigned: 0,
        }
    }

    /// Number of cores covered by the table.
    pub fn num_cores(&self) -> usize {
        self.capacities.len()
    }

    /// Pre-sizes the slot slab for `additional` more dense ids.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(
            additional.saturating_sub(self.slots.capacity().saturating_sub(self.slots.len())),
        );
    }

    /// Heap bytes held by the table: the per-object slot slab, the
    /// per-core byte counters, and the per-core assignment lists. The
    /// slot slab dominates at scale: one fixed-size [`AssignmentSlot`]
    /// per dense id, no per-object heap lists.
    pub fn footprint_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<AssignmentSlot>()) as u64
            + ((self.used_bytes.capacity() + self.capacities.capacity())
                * std::mem::size_of::<u64>()) as u64
            + self
                .per_core
                .iter()
                .map(|v| (v.capacity() * std::mem::size_of::<DenseObjectId>()) as u64)
                .sum::<u64>()
    }

    #[inline]
    fn slot(&self, object: DenseObjectId) -> AssignmentSlot {
        self.slots
            .get(object as usize)
            .copied()
            .unwrap_or(AssignmentSlot::VACANT)
    }

    #[inline]
    fn slot_mut(&mut self, object: DenseObjectId) -> &mut AssignmentSlot {
        let idx = object as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, AssignmentSlot::VACANT);
        }
        &mut self.slots[idx]
    }

    /// The primary core an object is assigned to, if any.
    #[inline]
    pub fn primary(&self, object: DenseObjectId) -> Option<CoreId> {
        let s = self.slot(object);
        s.is_assigned().then_some(s.primary)
    }

    /// Every core holding the object (primary included), as a bitmask set.
    #[inline]
    pub fn replicas(&self, object: DenseObjectId) -> CoreSet {
        CoreSet(self.slot(object).cores)
    }

    /// Whether the object is assigned anywhere.
    #[inline]
    pub fn is_assigned(&self, object: DenseObjectId) -> bool {
        self.slot(object).is_assigned()
    }

    /// Number of assigned objects.
    pub fn len(&self) -> usize {
        self.assigned
    }

    /// Whether no objects are assigned.
    pub fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// Free bytes remaining in a core's budget.
    #[inline]
    pub fn free_bytes(&self, core: CoreId) -> u64 {
        self.capacities[core as usize].saturating_sub(self.used_bytes[core as usize])
    }

    /// Bytes currently assigned to a core.
    #[inline]
    pub fn used_bytes(&self, core: CoreId) -> u64 {
        self.used_bytes[core as usize]
    }

    /// Capacity budget of a core.
    pub fn capacity(&self, core: CoreId) -> u64 {
        self.capacities[core as usize]
    }

    /// Changes a core's capacity budget. The fault plane zeroes a dead
    /// core's budget so every packer (first-fit, balanced, replacement)
    /// naturally skips it; existing assignments are not touched — the
    /// caller re-homes them.
    pub fn set_capacity(&mut self, core: CoreId, bytes: u64) {
        self.capacities[core as usize] = bytes;
    }

    /// Objects assigned (primary or replica) to a core, in assignment
    /// order. Consumers that care about a specific order must sort with a
    /// total key — see the epoch planners.
    pub fn objects_on(&self, core: CoreId) -> &[DenseObjectId] {
        &self.per_core[core as usize]
    }

    /// Assigns an object of `size` bytes to `core` as its primary location.
    /// Any previous assignment (including replicas) is removed first.
    /// Returns `false` (leaving the table unchanged) if the core lacks
    /// space.
    pub fn assign(&mut self, object: DenseObjectId, size: u64, core: CoreId) -> bool {
        if self.free_bytes(core) < size && !self.replicas(object).contains(core) {
            return false;
        }
        self.unassign(object);
        self.place(object, size, core);
        true
    }

    /// Forces an assignment even if it overflows the core's budget (used by
    /// the replacement policy after it has made room).
    pub fn assign_unchecked(&mut self, object: DenseObjectId, size: u64, core: CoreId) {
        self.unassign(object);
        self.place(object, size, core);
    }

    fn place(&mut self, object: DenseObjectId, size: u64, core: CoreId) {
        self.used_bytes[core as usize] += size;
        self.per_core[core as usize].push(object);
        *self.slot_mut(object) = AssignmentSlot {
            primary: core,
            cores: 1u64 << core,
            bytes: size,
        };
        self.assigned += 1;
    }

    /// The bytes an object was charged at when it was assigned (the size
    /// of each of its copies in the budget accounting), if assigned.
    pub fn charged_bytes(&self, object: DenseObjectId) -> Option<u64> {
        let s = self.slot(object);
        s.is_assigned().then_some(s.bytes)
    }

    /// Adds a replica of an already-assigned object on another core,
    /// charged at the same size as the primary copy. Returns `false` if
    /// the object is unassigned, the core lacks space, or the core
    /// already holds a copy.
    pub fn add_replica(&mut self, object: DenseObjectId, core: CoreId) -> bool {
        let s = self.slot(object);
        if !s.is_assigned() || CoreSet(s.cores).contains(core) || self.free_bytes(core) < s.bytes {
            return false;
        }
        self.slot_mut(object).cores |= 1u64 << core;
        self.used_bytes[core as usize] += s.bytes;
        self.per_core[core as usize].push(object);
        true
    }

    /// Drops every non-primary copy of an object, releasing exactly the
    /// bytes each copy was charged at while leaving the primary assignment
    /// untouched. This is the first-write invalidation path: a write to a
    /// replicated object must retire the stale copies before it runs.
    /// Returns the number of copies dropped (zero if the object is
    /// unassigned or unreplicated).
    pub fn drop_replicas(&mut self, object: DenseObjectId) -> u32 {
        let s = self.slot(object);
        if !s.is_assigned() {
            return 0;
        }
        let extras = s.cores & !(1u64 << s.primary);
        if extras == 0 {
            return 0;
        }
        for core in CoreSet(extras).iter() {
            let c = core as usize;
            self.used_bytes[c] = self.used_bytes[c].saturating_sub(s.bytes);
            self.per_core[c].retain(|&o| o != object);
        }
        self.slot_mut(object).cores = 1u64 << s.primary;
        extras.count_ones()
    }

    /// Removes an object (and all its replicas) from the table, releasing
    /// exactly the bytes each copy was charged at. Returns whether it was
    /// assigned.
    pub fn unassign(&mut self, object: DenseObjectId) -> bool {
        let s = self.slot(object);
        if !s.is_assigned() {
            return false;
        }
        for core in CoreSet(s.cores).iter() {
            let c = core as usize;
            self.used_bytes[c] = self.used_bytes[c].saturating_sub(s.bytes);
            self.per_core[c].retain(|&o| o != object);
        }
        *self.slot_mut(object) = AssignmentSlot::VACANT;
        self.assigned -= 1;
        true
    }

    /// Moves an object's primary copy from one core to another (dropping
    /// replicas), re-charging it at `size`. Returns `false` if the
    /// destination lacks space.
    pub fn reassign(&mut self, object: DenseObjectId, size: u64, to: CoreId) -> bool {
        if !self.is_assigned(object) {
            return false;
        }
        if self.free_bytes(to) < size && !self.replicas(object).contains(to) {
            return false;
        }
        self.unassign(object);
        self.assign(object, size, to)
    }

    /// Core with the most free budget.
    pub fn most_free_core(&self) -> CoreId {
        (0..self.capacities.len() as CoreId)
            .max_by_key(|&c| self.free_bytes(c))
            .unwrap_or(0)
    }

    /// Total bytes assigned across all cores (replicas counted).
    pub fn total_assigned_bytes(&self) -> u64 {
        self.used_bytes.iter().sum()
    }

    /// Total capacity across all cores.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AssignmentTable {
        AssignmentTable::new(vec![1000, 1000, 1000, 1000])
    }

    #[test]
    fn assign_and_lookup() {
        let mut t = table();
        assert!(t.assign(7, 400, 2));
        assert_eq!(t.primary(7), Some(2));
        assert!(t.is_assigned(7));
        assert_eq!(t.used_bytes(2), 400);
        assert_eq!(t.free_bytes(2), 600);
        assert_eq!(t.objects_on(2), &[7]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn assign_fails_when_core_is_full() {
        let mut t = table();
        assert!(t.assign(1, 800, 0));
        assert!(!t.assign(2, 300, 0));
        assert_eq!(t.primary(2), None);
        assert_eq!(t.used_bytes(0), 800);
    }

    #[test]
    fn reassigning_moves_bytes() {
        let mut t = table();
        t.assign(1, 500, 0);
        assert!(t.reassign(1, 500, 3));
        assert_eq!(t.primary(1), Some(3));
        assert_eq!(t.used_bytes(0), 0);
        assert_eq!(t.used_bytes(3), 500);
        assert!(t.objects_on(0).is_empty());
    }

    #[test]
    fn reassign_unknown_object_fails() {
        let mut t = table();
        assert!(!t.reassign(9, 100, 1));
    }

    #[test]
    fn unassign_releases_capacity() {
        let mut t = table();
        t.assign(1, 500, 0);
        assert!(t.unassign(1));
        assert!(!t.unassign(1));
        assert_eq!(t.free_bytes(0), 1000);
        assert!(t.is_empty());
    }

    #[test]
    fn replicas_occupy_space_on_each_core() {
        let mut t = table();
        t.assign(1, 300, 0);
        assert!(t.add_replica(1, 1));
        assert!(t.add_replica(1, 2));
        // Already replicated there.
        assert!(!t.add_replica(1, 1));
        assert_eq!(t.replicas(1).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(t.replicas(1).len(), 3);
        assert!(t.replicas(1).contains(2));
        assert!(!t.replicas(1).contains(3));
        assert_eq!(t.total_assigned_bytes(), 900);
        // Unassign removes every copy.
        t.unassign(1);
        assert_eq!(t.total_assigned_bytes(), 0);
        assert!(t.objects_on(1).is_empty());
        assert!(t.replicas(1).is_empty());
    }

    #[test]
    fn replica_of_unassigned_object_fails() {
        let mut t = table();
        assert!(!t.add_replica(5, 0));
    }

    #[test]
    fn drop_replicas_keeps_the_primary_and_frees_each_copys_budget() {
        let mut t = table();
        t.assign(1, 300, 0);
        assert!(t.add_replica(1, 1));
        assert!(t.add_replica(1, 3));
        assert_eq!(t.total_assigned_bytes(), 900);
        assert_eq!(t.drop_replicas(1), 2);
        assert_eq!(t.primary(1), Some(0));
        assert_eq!(t.replicas(1).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.used_bytes(0), 300, "the primary copy stays charged");
        assert_eq!(t.used_bytes(1), 0);
        assert_eq!(t.used_bytes(3), 0);
        assert!(t.objects_on(1).is_empty());
        assert!(t.objects_on(3).is_empty());
        // Unreplicated and unassigned objects drop nothing.
        assert_eq!(t.drop_replicas(1), 0);
        assert_eq!(t.drop_replicas(9), 0);
    }

    #[test]
    fn assign_unchecked_can_overflow() {
        let mut t = table();
        t.assign_unchecked(1, 5000, 0);
        assert_eq!(t.used_bytes(0), 5000);
        assert_eq!(t.free_bytes(0), 0);
        assert_eq!(t.primary(1), Some(0));
    }

    #[test]
    fn most_free_core_prefers_emptier_cores() {
        let mut t = table();
        t.assign(1, 900, 0);
        t.assign(2, 500, 1);
        let c = t.most_free_core();
        assert!(c == 2 || c == 3);
    }

    #[test]
    fn totals() {
        let t = table();
        assert_eq!(t.total_capacity(), 4000);
        assert_eq!(t.total_assigned_bytes(), 0);
        assert_eq!(t.num_cores(), 4);
    }

    #[test]
    fn reassigning_same_object_to_same_core_keeps_single_copy() {
        let mut t = table();
        t.assign(1, 400, 2);
        assert!(t.assign(1, 400, 2));
        assert_eq!(t.used_bytes(2), 400);
        assert_eq!(t.objects_on(2), &[1]);
    }

    #[test]
    fn release_uses_the_charged_size_not_a_drifted_one() {
        // An auto-registered object's estimated size can grow after it
        // was assigned; release must subtract exactly what was charged,
        // never the drifted registry size.
        let mut t = table();
        t.assign(1, 400, 2);
        t.assign(2, 300, 2);
        assert_eq!(t.charged_bytes(1), Some(400));
        assert!(t.unassign(1));
        assert_eq!(t.used_bytes(2), 300, "object 2's bytes must survive");
        assert_eq!(t.charged_bytes(1), None);
        // Replicas are charged at the primary's assign-time size too.
        t.assign(3, 250, 0);
        assert!(t.add_replica(3, 1));
        assert_eq!(t.used_bytes(1), 250);
        t.unassign(3);
        assert_eq!(t.used_bytes(0) + t.used_bytes(1), 0);
        assert_eq!(t.used_bytes(2), 300);
    }

    #[test]
    fn lookups_past_the_slab_end_are_unassigned() {
        let t = table();
        assert_eq!(t.primary(1_000_000), None);
        assert!(t.replicas(1_000_000).is_empty());
        assert!(!t.is_assigned(1_000_000));
    }

    #[test]
    fn core_set_iteration_is_ascending() {
        let s = CoreSet(0b1010_0001);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 7]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(CoreSet::default().is_empty());
    }
}
