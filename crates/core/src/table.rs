//! The object→core assignment table consulted by `ct_start`.
//!
//! "`ct_start(o)` performs a table lookup to determine if the object `o`
//! is scheduled to a specific core" (Section 4). The table also tracks how
//! many bytes each core's cache budget has been packed with, which is what
//! the greedy cache-packing algorithm consumes.

use std::collections::HashMap;

use o2_runtime::{CoreId, ObjectId};

/// The assignment table: object → one primary core plus optional replicas.
#[derive(Debug, Clone)]
pub struct AssignmentTable {
    /// Assigned cores per object; the first entry is the primary.
    assignments: HashMap<ObjectId, Vec<CoreId>>,
    /// Bytes of objects assigned to each core.
    used_bytes: Vec<u64>,
    /// Per-core capacity budgets in bytes.
    capacities: Vec<u64>,
    /// Objects assigned to each core (primary or replica).
    per_core: Vec<Vec<ObjectId>>,
}

impl AssignmentTable {
    /// Creates a table for cores with the given capacity budgets.
    pub fn new(capacities: Vec<u64>) -> Self {
        let n = capacities.len();
        Self {
            assignments: HashMap::new(),
            used_bytes: vec![0; n],
            capacities,
            per_core: vec![Vec::new(); n],
        }
    }

    /// Number of cores covered by the table.
    pub fn num_cores(&self) -> usize {
        self.capacities.len()
    }

    /// The primary core an object is assigned to, if any.
    pub fn primary(&self, object: ObjectId) -> Option<CoreId> {
        self.assignments
            .get(&object)
            .and_then(|v| v.first().copied())
    }

    /// Every core holding the object (primary first).
    pub fn replicas(&self, object: ObjectId) -> &[CoreId] {
        self.assignments
            .get(&object)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether the object is assigned anywhere.
    pub fn is_assigned(&self, object: ObjectId) -> bool {
        self.assignments.contains_key(&object)
    }

    /// Number of assigned objects.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no objects are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Free bytes remaining in a core's budget.
    pub fn free_bytes(&self, core: CoreId) -> u64 {
        self.capacities[core as usize].saturating_sub(self.used_bytes[core as usize])
    }

    /// Bytes currently assigned to a core.
    pub fn used_bytes(&self, core: CoreId) -> u64 {
        self.used_bytes[core as usize]
    }

    /// Capacity budget of a core.
    pub fn capacity(&self, core: CoreId) -> u64 {
        self.capacities[core as usize]
    }

    /// Objects assigned (primary or replica) to a core.
    pub fn objects_on(&self, core: CoreId) -> &[ObjectId] {
        &self.per_core[core as usize]
    }

    /// Assigns an object of `size` bytes to `core` as its primary location.
    /// Any previous assignment (including replicas) is removed first.
    /// Returns `false` (leaving the table unchanged) if the core lacks
    /// space.
    pub fn assign(&mut self, object: ObjectId, size: u64, core: CoreId) -> bool {
        if self.free_bytes(core) < size && !self.replicas(object).contains(&core) {
            return false;
        }
        self.unassign(object, size);
        self.used_bytes[core as usize] += size;
        self.per_core[core as usize].push(object);
        self.assignments.insert(object, vec![core]);
        true
    }

    /// Forces an assignment even if it overflows the core's budget (used by
    /// the replacement policy after it has made room).
    pub fn assign_unchecked(&mut self, object: ObjectId, size: u64, core: CoreId) {
        self.unassign(object, size);
        self.used_bytes[core as usize] += size;
        self.per_core[core as usize].push(object);
        self.assignments.insert(object, vec![core]);
    }

    /// Adds a replica of an already-assigned object on another core.
    /// Returns `false` if the object is unassigned, the core lacks space,
    /// or the core already holds a copy.
    pub fn add_replica(&mut self, object: ObjectId, size: u64, core: CoreId) -> bool {
        let Some(cores) = self.assignments.get(&object) else {
            return false;
        };
        if cores.contains(&core) || self.free_bytes(core) < size {
            return false;
        }
        self.assignments
            .get_mut(&object)
            .expect("checked")
            .push(core);
        self.used_bytes[core as usize] += size;
        self.per_core[core as usize].push(object);
        true
    }

    /// Removes an object (and all its replicas) from the table, releasing
    /// the bytes it occupied. Returns whether it was assigned.
    pub fn unassign(&mut self, object: ObjectId, size: u64) -> bool {
        let Some(cores) = self.assignments.remove(&object) else {
            return false;
        };
        for core in cores {
            let c = core as usize;
            self.used_bytes[c] = self.used_bytes[c].saturating_sub(size);
            self.per_core[c].retain(|&o| o != object);
        }
        true
    }

    /// Moves an object's primary copy from one core to another (dropping
    /// replicas). Returns `false` if the destination lacks space.
    pub fn reassign(&mut self, object: ObjectId, size: u64, to: CoreId) -> bool {
        if !self.is_assigned(object) {
            return false;
        }
        if self.free_bytes(to) < size && !self.replicas(object).contains(&to) {
            return false;
        }
        self.unassign(object, size);
        self.assign(object, size, to)
    }

    /// Core with the most free budget.
    pub fn most_free_core(&self) -> CoreId {
        (0..self.capacities.len() as u32)
            .max_by_key(|&c| self.free_bytes(c))
            .unwrap_or(0)
    }

    /// Total bytes assigned across all cores (replicas counted).
    pub fn total_assigned_bytes(&self) -> u64 {
        self.used_bytes.iter().sum()
    }

    /// Total capacity across all cores.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AssignmentTable {
        AssignmentTable::new(vec![1000, 1000, 1000, 1000])
    }

    #[test]
    fn assign_and_lookup() {
        let mut t = table();
        assert!(t.assign(7, 400, 2));
        assert_eq!(t.primary(7), Some(2));
        assert!(t.is_assigned(7));
        assert_eq!(t.used_bytes(2), 400);
        assert_eq!(t.free_bytes(2), 600);
        assert_eq!(t.objects_on(2), &[7]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn assign_fails_when_core_is_full() {
        let mut t = table();
        assert!(t.assign(1, 800, 0));
        assert!(!t.assign(2, 300, 0));
        assert_eq!(t.primary(2), None);
        assert_eq!(t.used_bytes(0), 800);
    }

    #[test]
    fn reassigning_moves_bytes() {
        let mut t = table();
        t.assign(1, 500, 0);
        assert!(t.reassign(1, 500, 3));
        assert_eq!(t.primary(1), Some(3));
        assert_eq!(t.used_bytes(0), 0);
        assert_eq!(t.used_bytes(3), 500);
        assert!(t.objects_on(0).is_empty());
    }

    #[test]
    fn reassign_unknown_object_fails() {
        let mut t = table();
        assert!(!t.reassign(9, 100, 1));
    }

    #[test]
    fn unassign_releases_capacity() {
        let mut t = table();
        t.assign(1, 500, 0);
        assert!(t.unassign(1, 500));
        assert!(!t.unassign(1, 500));
        assert_eq!(t.free_bytes(0), 1000);
        assert!(t.is_empty());
    }

    #[test]
    fn replicas_occupy_space_on_each_core() {
        let mut t = table();
        t.assign(1, 300, 0);
        assert!(t.add_replica(1, 300, 1));
        assert!(t.add_replica(1, 300, 2));
        // Already replicated there.
        assert!(!t.add_replica(1, 300, 1));
        assert_eq!(t.replicas(1), &[0, 1, 2]);
        assert_eq!(t.total_assigned_bytes(), 900);
        // Unassign removes every copy.
        t.unassign(1, 300);
        assert_eq!(t.total_assigned_bytes(), 0);
        assert!(t.objects_on(1).is_empty());
    }

    #[test]
    fn replica_of_unassigned_object_fails() {
        let mut t = table();
        assert!(!t.add_replica(5, 100, 0));
    }

    #[test]
    fn assign_unchecked_can_overflow() {
        let mut t = table();
        t.assign_unchecked(1, 5000, 0);
        assert_eq!(t.used_bytes(0), 5000);
        assert_eq!(t.free_bytes(0), 0);
        assert_eq!(t.primary(1), Some(0));
    }

    #[test]
    fn most_free_core_prefers_emptier_cores() {
        let mut t = table();
        t.assign(1, 900, 0);
        t.assign(2, 500, 1);
        let c = t.most_free_core();
        assert!(c == 2 || c == 3);
    }

    #[test]
    fn totals() {
        let t = table();
        assert_eq!(t.total_capacity(), 4000);
        assert_eq!(t.total_assigned_bytes(), 0);
        assert_eq!(t.num_cores(), 4);
    }

    #[test]
    fn reassigning_same_object_to_same_core_keeps_single_copy() {
        let mut t = table();
        t.assign(1, 400, 2);
        assert!(t.assign(1, 400, 2));
        assert_eq!(t.used_bytes(2), 400);
        assert_eq!(t.objects_on(2), &[1]);
    }
}
