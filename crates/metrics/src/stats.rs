//! Summary statistics.

/// Summary of a sample of values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes a summary of the samples; returns `None` for an empty
    /// slice.
    ///
    /// Sorts a copy internally. Callers that also need extra percentiles
    /// should sort once themselves and use [`Summary::of_sorted`] plus
    /// [`percentile_sorted`] instead of paying for a second sort.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self::of_sorted(&sorted)
    }

    /// Computes a summary of an already-sorted (ascending) sample without
    /// re-sorting; returns `None` for an empty slice.
    pub fn of_sorted(sorted: &[f64]) -> Option<Self> {
        if sorted.is_empty() {
            return None;
        }
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "of_sorted requires ascending samples"
        );
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Self {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(sorted, 50.0),
        })
    }

    /// Coefficient of variation (stddev / mean); zero when the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// The `p`-th percentile (0–100) of a sample, by linear interpolation.
///
/// Sorts a copy internally; use [`percentile_sorted`] when the samples
/// are already sorted (e.g. alongside [`Summary::of_sorted`]).
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(percentile_sorted(&sorted, p))
}

/// The `p`-th percentile (0–100) of an already-sorted (ascending) sample,
/// by linear interpolation. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean of strictly positive samples.
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(percentile(&[], 50.0).is_none());
        assert!(geometric_mean(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert!((percentile(&v, 50.0).unwrap() - 25.0).abs() < 1e-12);
        assert!((percentile(&v, 25.0).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_percentile() {
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn geometric_mean_of_powers() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn cv_of_zero_mean_is_zero() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn presorted_entry_points_match_the_sorting_ones() {
        let unsorted = [9.0, 2.0, 4.0, 7.0, 4.0, 5.0, 5.0, 4.0];
        let mut sorted = unsorted;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(Summary::of(&unsorted), Summary::of_sorted(&sorted));
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                percentile(&unsorted, p),
                Some(percentile_sorted(&sorted, p))
            );
        }
        assert!(Summary::of_sorted(&[]).is_none());
    }
}
