//! Comparisons between series: speedups and crossover points.
//!
//! The paper's headline claim is a shape, not an absolute number: CoreTime
//! matches the baseline while the working set fits one chip's cache and is
//! "between two to three times faster" once it does not. These helpers
//! extract that shape from measured series so reports can include it
//! and tests can assert it.

use crate::series::Series;

/// The speedup of `a` over `b` at every x both series share.
pub fn speedup_series(a: &Series, b: &Series) -> Series {
    let mut out = Series::new(format!("{} / {}", a.name, b.name));
    for &(x, ya) in &a.points {
        if let Some(yb) = b.y_at(x) {
            if yb > 0.0 {
                out.push(x, ya / yb);
            }
        }
    }
    out
}

/// The largest speedup of `a` over `b` across shared x values.
pub fn max_speedup(a: &Series, b: &Series) -> Option<(f64, f64)> {
    speedup_series(a, b)
        .points
        .into_iter()
        .fold(None, |acc, (x, s)| match acc {
            None => Some((x, s)),
            Some((_, best)) if s > best => Some((x, s)),
            other => other,
        })
}

/// Mean speedup of `a` over `b` restricted to x values above `min_x`.
pub fn mean_speedup_above(a: &Series, b: &Series, min_x: f64) -> Option<f64> {
    let s = speedup_series(a, b);
    let vals: Vec<f64> = s
        .points
        .iter()
        .filter(|(x, _)| *x >= min_x)
        .map(|(_, v)| *v)
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// The first x at which `a` exceeds `b` by at least `factor` and keeps
/// exceeding it for the rest of the range (the "crossover" the paper places
/// where the working set outgrows one chip's L3).
pub fn crossover(a: &Series, b: &Series, factor: f64) -> Option<f64> {
    let s = speedup_series(a, b);
    let mut candidate: Option<f64> = None;
    for &(x, v) in &s.points {
        if v >= factor {
            if candidate.is_none() {
                candidate = Some(x);
            }
        } else {
            candidate = None;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(name);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn speedup_is_pointwise_ratio() {
        let a = series("a", &[(1.0, 200.0), (2.0, 300.0), (3.0, 400.0)]);
        let b = series("b", &[(1.0, 100.0), (2.0, 100.0)]);
        let s = speedup_series(&a, &b);
        assert_eq!(s.points, vec![(1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(max_speedup(&a, &b), Some((2.0, 3.0)));
    }

    #[test]
    fn zero_baseline_points_are_skipped() {
        let a = series("a", &[(1.0, 200.0)]);
        let b = series("b", &[(1.0, 0.0)]);
        assert!(speedup_series(&a, &b).points.is_empty());
        assert_eq!(max_speedup(&a, &b), None);
    }

    #[test]
    fn mean_speedup_above_filters_by_x() {
        let a = series("a", &[(1.0, 100.0), (10.0, 300.0), (20.0, 300.0)]);
        let b = series("b", &[(1.0, 100.0), (10.0, 100.0), (20.0, 150.0)]);
        let m = mean_speedup_above(&a, &b, 5.0).unwrap();
        assert!((m - 2.5).abs() < 1e-9);
        assert!(mean_speedup_above(&a, &b, 100.0).is_none());
    }

    #[test]
    fn crossover_finds_sustained_advantage() {
        let a = series(
            "with",
            &[
                (1.0, 100.0),
                (2.0, 110.0),
                (4.0, 300.0),
                (8.0, 280.0),
                (16.0, 250.0),
            ],
        );
        let b = series(
            "without",
            &[
                (1.0, 100.0),
                (2.0, 100.0),
                (4.0, 120.0),
                (8.0, 100.0),
                (16.0, 100.0),
            ],
        );
        assert_eq!(crossover(&a, &b, 2.0), Some(4.0));
        // A transient advantage that later disappears is not a crossover.
        let c = series(
            "flaky",
            &[
                (1.0, 300.0),
                (2.0, 90.0),
                (4.0, 90.0),
                (8.0, 90.0),
                (16.0, 90.0),
            ],
        );
        assert_eq!(crossover(&c, &b, 2.0), None);
        // Never exceeding the factor gives no crossover.
        assert_eq!(crossover(&b, &a, 2.0), None);
    }
}
