//! # o2-metrics — measurement and reporting utilities
//!
//! Small, dependency-free helpers used by the benchmark harness and the
//! integration tests: summary statistics ([`stats`]), streaming quantile
//! sketches and cycle-domain latency recorders for the scale tier
//! ([`sketch`]), named data series and text/CSV tables ([`series`]),
//! series comparisons — speedups and crossover points — ([`compare`]) and
//! experiment reports rendered as markdown or plain text ([`report`]).
//!
//! ```
//! use o2_metrics::{Series, SeriesTable};
//!
//! let mut with = Series::new("With CoreTime");
//! with.push(4096.0, 2400.0);
//! let mut table = SeriesTable::new("Total data size (KB)");
//! table.add(with);
//! assert!(table.render_csv().contains("4096,2400"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod report;
pub mod series;
pub mod sketch;
pub mod stats;

pub use compare::{crossover, max_speedup, mean_speedup_above, speedup_series};
pub use report::Report;
pub use series::{Series, SeriesTable};
pub use sketch::{LatencyRecorder, LatencySummary, QuantileSketch, DEFAULT_SKETCH_K};
pub use stats::{geometric_mean, percentile, percentile_sorted, Summary};
