//! Streaming quantile sketches for the scale tier.
//!
//! At millions of operations per run, storing every latency sample for an
//! exact [`crate::percentile`] is exactly the per-object/per-op memory
//! the footprint audit forbids. [`QuantileSketch`] is a compact-merge
//! (KLL-style) sketch over `u64` values: a ladder of fixed-capacity
//! buffers where level `l` holds items of weight `2^l`. When a level
//! fills, it is sorted and every other item — starting at a seeded,
//! reproducible random parity — is promoted one level up with doubled
//! weight. The whole structure is bounded by `k × levels` items
//! (`levels ≈ log2(n/k) + 1`), independent of how many samples it has
//! absorbed beyond that.
//!
//! ## Error bound
//!
//! One compaction of a level with item weight `w` perturbs the rank of
//! any value by at most `w`; level `l` compacts at most `n / (k·2^l)`
//! times, so the total rank error after `n` inserts is at most
//! `Σ_l (n / (k·2^l)) · 2^l = H·n/k` where `H` is the number of levels —
//! a worst-case *rank* error of `ε = H/k` ([`QuantileSketch::rank_error_bound`]).
//! With the default `k = 4096` and `n = 10^7` that is `H = 13`,
//! `ε ≈ 0.32%`. The random parity makes each compaction unbiased, so the
//! observed error is typically far below the bound; the accuracy harness
//! in `tests/` checks the worst case against the exact oracle. `min` and
//! `max` are tracked exactly on the side.
//!
//! ## Determinism
//!
//! The compaction parity comes from an xorshift64 stream seeded at
//! construction and advanced only by compactions, so the final sketch
//! state is a pure function of `(seed, input stream)` — byte-identical
//! across runs, hosts and `--jobs` worker counts.

/// Default per-level buffer capacity.
pub const DEFAULT_SKETCH_K: usize = 4096;

/// A deterministic compact-merge streaming quantile sketch over `u64`
/// values (cycle counts, byte counts, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Per-level buffer capacity.
    k: usize,
    /// Construction seed (kept so `reset` restores the exact initial state).
    seed: u64,
    /// `levels[l]` holds items of weight `2^l`, unsorted until compaction.
    levels: Vec<Vec<u64>>,
    /// Total items absorbed.
    count: u64,
    /// Exact smallest sample.
    min: u64,
    /// Exact largest sample.
    max: u64,
    /// xorshift64 state feeding the compaction parity bits.
    rng: u64,
    /// Total compactions performed (telemetry).
    compactions: u64,
}

impl QuantileSketch {
    /// Creates a sketch with the default capacity ([`DEFAULT_SKETCH_K`]).
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(DEFAULT_SKETCH_K, seed)
    }

    /// Creates a sketch with per-level capacity `k` (clamped to an even
    /// value of at least 8). Larger `k` tightens the error bound and
    /// costs proportionally more memory.
    pub fn with_capacity(k: usize, seed: u64) -> Self {
        let k = (k.max(8)) & !1;
        Self {
            k,
            seed,
            levels: vec![Vec::with_capacity(k)],
            count: 0,
            min: u64::MAX,
            max: 0,
            rng: Self::scramble(seed),
            compactions: 0,
        }
    }

    /// A non-zero xorshift64 state derived from an arbitrary seed.
    fn scramble(seed: u64) -> u64 {
        let s = seed ^ 0x9e37_79b9_7f4a_7c15;
        if s == 0 {
            0x2545_f491_4f6c_dd1d
        } else {
            s
        }
    }

    /// Absorbs one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        if self.levels[0].len() >= self.k {
            self.cascade();
        }
    }

    /// Compacts every full level, bottom up.
    fn cascade(&mut self) {
        let mut l = 0;
        while l < self.levels.len() && self.levels[l].len() >= self.k {
            if l + 1 == self.levels.len() {
                self.levels.push(Vec::with_capacity(self.k));
            }
            let parity = self.next_parity();
            // Split borrow: sort level l in place, promote into level l+1.
            let (lo, hi) = self.levels.split_at_mut(l + 1);
            let src = &mut lo[l];
            src.sort_unstable();
            hi[0].extend(src.iter().copied().skip(parity).step_by(2));
            src.clear();
            self.compactions += 1;
            l += 1;
        }
    }

    /// The next compaction parity bit (0 or 1) from the seeded stream.
    fn next_parity(&mut self) -> usize {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 63) as usize
    }

    /// Number of values absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has absorbed no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Exact largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Total compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The documented worst-case rank error of this sketch in its current
    /// state: `levels / k` (see the module docs for the derivation).
    pub fn rank_error_bound(&self) -> f64 {
        self.levels.len() as f64 / self.k as f64
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`); returns the exact
    /// `min`/`max` at the endpoints and `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // Materialize the weighted retained sample and walk the ranks.
        let mut items: Vec<(u64, u64)> = Vec::with_capacity(self.retained());
        for (l, level) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items.sort_unstable();
        // Retained weights may undercount `count` slightly mid-cascade;
        // walk against the actual retained mass so q = 1-δ stays in range.
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = (q * (total.saturating_sub(1)) as f64).round() as u64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum > target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Convenience: the p50/p99/p999/max summary used by the scale tier.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(0.50).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            p999: self.quantile(0.999).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }

    /// Items currently retained across all levels.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Heap bytes held by the sketch's buffers (capacity, not length).
    pub fn footprint_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| (l.capacity() * std::mem::size_of::<u64>()) as u64)
            .sum()
    }

    /// Clears the sketch back to its exact post-construction state
    /// (including the compaction-parity stream).
    pub fn reset(&mut self) {
        self.levels.truncate(1);
        self.levels[0].clear();
        self.count = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.rng = Self::scramble(self.seed);
        self.compactions = 0;
    }

    /// FNV-1a fingerprint of the full sketch state (levels, counts,
    /// parity stream) — two sketches fed the same stream with the same
    /// seed fingerprint identically.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.k as u64);
        mix(self.count);
        mix(self.min);
        mix(self.max);
        mix(self.rng);
        mix(self.compactions);
        for level in &self.levels {
            mix(level.len() as u64);
            for &v in level {
                mix(v);
            }
        }
        h
    }
}

/// The fixed latency digest reported by the scale tier: exact count and
/// max, sketched p50/p99/p999, all in the cycle domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded latencies.
    pub count: u64,
    /// Sketched median, in cycles.
    pub p50: u64,
    /// Sketched 99th percentile, in cycles.
    pub p99: u64,
    /// Sketched 99.9th percentile, in cycles.
    pub p999: u64,
    /// Exact maximum, in cycles.
    pub max: u64,
}

/// A cycle-domain latency recorder: a [`QuantileSketch`] with the
/// reset-between-windows discipline the measurement loops need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyRecorder {
    sketch: QuantileSketch,
}

impl LatencyRecorder {
    /// Creates a recorder with the default sketch capacity.
    pub fn new(seed: u64) -> Self {
        Self {
            sketch: QuantileSketch::new(seed),
        }
    }

    /// Records one latency, in cycles.
    pub fn record(&mut self, cycles: u64) {
        self.sketch.record(cycles);
    }

    /// Number of latencies recorded since the last reset.
    pub fn count(&self) -> u64 {
        self.sketch.count()
    }

    /// The p50/p99/p999/max digest of everything since the last reset.
    pub fn summary(&self) -> LatencySummary {
        self.sketch.summary()
    }

    /// The underlying sketch (for quantiles beyond the fixed digest).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Clears recorded samples (e.g. between warm-up and the measurement
    /// window) back to the exact post-construction state.
    pub fn reset(&mut self) {
        self.sketch.reset();
    }

    /// Heap bytes held by the recorder.
    pub fn footprint_bytes(&self) -> u64 {
        self.sketch.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_streams_are_exact() {
        // Below k, nothing compacts: every quantile is an exact retained
        // sample.
        let mut s = QuantileSketch::with_capacity(64, 1);
        for v in 0..50u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 50);
        assert_eq!(s.compactions(), 0);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(49));
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(49));
        let p50 = s.quantile(0.5).unwrap();
        assert!((24..=25).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn memory_stays_bounded_under_a_long_stream() {
        let mut s = QuantileSketch::with_capacity(256, 2);
        for v in 0..200_000u64 {
            s.record(v.wrapping_mul(0x9e37_79b9) % 10_000);
        }
        assert!(s.compactions() > 0);
        // Retained items bounded by k × levels, far below the stream.
        assert!(s.retained() <= 256 * 12, "retained {}", s.retained());
        assert!(s.footprint_bytes() < 256 * 8 * 16);
    }

    #[test]
    fn identical_streams_and_seeds_give_identical_state() {
        let feed = |seed| {
            let mut s = QuantileSketch::with_capacity(128, seed);
            for i in 0..50_000u64 {
                s.record(i.wrapping_mul(6364136223846793005) >> 40);
            }
            s
        };
        let (a, b) = (feed(7), feed(7));
        assert_eq!(a, b);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        // A different compaction seed produces a different state but the
        // same count/min/max.
        let c = feed(8);
        assert_ne!(a.state_fingerprint(), c.state_fingerprint());
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn reset_restores_the_exact_initial_state() {
        let mut a = QuantileSketch::new(3);
        let b = QuantileSketch::new(3);
        for v in 0..10_000u64 {
            a.record(v);
        }
        a.reset();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        // And the post-reset stream behaves like a fresh sketch.
        let mut c = QuantileSketch::new(3);
        for v in 0..5_000u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        assert_eq!(a.state_fingerprint(), c.state_fingerprint());
    }

    #[test]
    fn empty_sketch_yields_none_and_zero_summary() {
        let s = QuantileSketch::new(0);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.summary(), LatencySummary::default());
    }

    #[test]
    fn recorder_summary_and_reset() {
        let mut r = LatencyRecorder::new(11);
        for v in 1..=1000u64 {
            r.record(v);
        }
        let s = r.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 450 && s.p50 <= 550, "p50 = {}", s.p50);
        assert!(s.p99 >= 970 && s.p99 <= 1000, "p99 = {}", s.p99);
        assert!(s.p999 >= s.p99 && s.p999 <= 1000);
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.summary(), LatencySummary::default());
    }
}
