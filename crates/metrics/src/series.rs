//! Data series and tables, with plain-text and CSV rendering.
//!
//! The benchmark harness prints every figure of the paper as a table of
//! series (e.g. "With CoreTime" / "Without CoreTime" versus total data
//! size), so that the numbers can be compared directly against the plots.

/// A named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (e.g. "With CoreTime").
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// All x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|(x, _)| *x).collect()
    }

    /// Maximum y value (None if empty).
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|(_, y)| *y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(a) => a.max(y),
            })
        })
    }
}

/// A table built from several series sharing an x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesTable {
    /// Label of the x column.
    pub x_label: String,
    /// The series (columns).
    pub series: Vec<Series>,
}

impl SeriesTable {
    /// Creates a table with the given x-axis label.
    pub fn new(x_label: impl Into<String>) -> Self {
        Self {
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The union of all x values, sorted.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self.series.iter().flat_map(|s| s.xs()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders an aligned plain-text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let xs = self.xs();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &x in &xs {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(match s.y_at(x) {
                    Some(y) => format_num(y),
                    None => "-".to_string(),
                });
            }
            rows.push(row);
        }
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                rows.iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format_num(x));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    out.push_str(&format_num(y));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SeriesTable {
        let mut with = Series::new("With CoreTime");
        with.push(1024.0, 3000.0);
        with.push(4096.0, 2500.0);
        let mut without = Series::new("Without CoreTime");
        without.push(1024.0, 2900.0);
        without.push(4096.0, 1000.0);
        let mut t = SeriesTable::new("Total data size (KB)");
        t.add(with);
        t.add(without);
        t
    }

    #[test]
    fn series_accessors() {
        let mut s = Series::new("x");
        s.push(1.0, 10.0);
        s.push(2.0, 30.0);
        assert_eq!(s.y_at(2.0), Some(30.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.xs(), vec![1.0, 2.0]);
        assert_eq!(s.max_y(), Some(30.0));
        assert_eq!(Series::new("empty").max_y(), None);
    }

    #[test]
    fn xs_are_merged_and_sorted() {
        let mut t = table();
        let mut extra = Series::new("extra");
        extra.push(2048.0, 5.0);
        t.add(extra);
        assert_eq!(t.xs(), vec![1024.0, 2048.0, 4096.0]);
    }

    #[test]
    fn text_rendering_contains_headers_and_values() {
        let text = table().render_text();
        assert!(text.contains("Total data size (KB)"));
        assert!(text.contains("With CoreTime"));
        assert!(text.contains("3000"));
        assert!(text.contains("1000"));
        // Missing points render as '-'.
        let mut t = table();
        let mut sparse = Series::new("sparse");
        sparse.push(1024.0, 1.0);
        t.add(sparse);
        assert!(t.render_text().contains('-'));
    }

    #[test]
    fn csv_rendering_is_machine_readable() {
        let csv = table().render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "Total data size (KB),With CoreTime,Without CoreTime"
        );
        assert_eq!(lines[1], "1024,3000,2900");
        assert_eq!(lines[2], "4096,2500,1000");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(2.0), "2");
        assert_eq!(format_num(2.5), "2.50");
    }
}
