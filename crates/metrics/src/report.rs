//! Experiment reports: parameters + a results table + free-form notes,
//! rendered as markdown or plain text.

use crate::series::SeriesTable;

/// A self-describing experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Title, e.g. "Figure 4(a): uniform directory popularity".
    pub title: String,
    /// Experiment parameters as (name, value) pairs.
    pub params: Vec<(String, String)>,
    /// The result table.
    pub table: SeriesTable,
    /// Free-form observations (e.g. measured speedups, crossover points).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates a report around a result table.
    pub fn new(title: impl Into<String>, table: SeriesTable) -> Self {
        Self {
            title: title.into(),
            params: Vec::new(),
            table,
            notes: Vec::new(),
        }
    }

    /// Adds a parameter.
    pub fn param(mut self, name: impl Into<String>, value: impl std::fmt::Display) -> Self {
        self.params.push((name.into(), value.to_string()));
        self
    }

    /// Adds a note.
    pub fn note(mut self, text: impl Into<String>) -> Self {
        self.notes.push(text.into());
        self
    }

    /// Renders the report as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        if !self.params.is_empty() {
            out.push_str("**Parameters**\n\n");
            for (k, v) in &self.params {
                out.push_str(&format!("- {k}: {v}\n"));
            }
            out.push('\n');
        }
        out.push_str("```text\n");
        out.push_str(&self.table.render_text());
        out.push_str("```\n");
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Renders the report as plain text for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        for (k, v) in &self.params {
            out.push_str(&format!("  {k}: {v}\n"));
        }
        out.push('\n');
        out.push_str(&self.table.render_text());
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("  * {n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn report() -> Report {
        let mut s = Series::new("With CoreTime");
        s.push(1024.0, 2000.0);
        let mut table = SeriesTable::new("Total data size (KB)");
        table.add(s);
        Report::new("Figure 4(a)", table)
            .param("directories", 64)
            .param("entries per directory", 1000)
            .note("CoreTime is 2.4x faster beyond 2 MB")
    }

    #[test]
    fn markdown_contains_all_sections() {
        let md = report().render_markdown();
        assert!(md.starts_with("## Figure 4(a)"));
        assert!(md.contains("- directories: 64"));
        assert!(md.contains("With CoreTime"));
        assert!(md.contains("2.4x faster"));
        assert!(md.contains("```text"));
    }

    #[test]
    fn text_rendering_contains_title_params_and_notes() {
        let txt = report().render_text();
        assert!(txt.contains("=== Figure 4(a) ==="));
        assert!(txt.contains("entries per directory: 1000"));
        assert!(txt.contains("* CoreTime"));
    }

    #[test]
    fn report_without_params_or_notes_renders() {
        let table = SeriesTable::new("x");
        let r = Report::new("Empty", table);
        let md = r.render_markdown();
        assert!(md.contains("## Empty"));
        assert!(!md.contains("**Parameters**"));
    }
}
