//! # o2-collections — the one flat table
//!
//! Three crates of this workspace independently hand-rolled the same
//! open-addressed hash-table recipe before it was extracted here: the
//! simulator's coherence directory, the runtime's object interner, and
//! CoreTime's co-access pair table. The recipe:
//!
//! * **Power-of-two capacity, mask indexing.** The home slot of a key is
//!   `(hash(key) >> 32) & (capacity - 1)` where `hash` is Fibonacci
//!   hashing — one multiply by `0x9e37_79b9_7f4a_7c15`, keeping the high
//!   bits that the mask would otherwise discard. Collisions probe
//!   linearly, which is sequential in memory.
//! * **Inline slots.** A slot is the key plus the value, in one flat
//!   allocation; a probe touches at most a cache line or two, and nothing
//!   on the lookup/insert/remove path allocates.
//! * **Tombstone-free deletion.** [`FlatTable::remove`] backward-shifts
//!   the following cluster instead of leaving tombstones, so probe chains
//!   never grow from churn. Users that never remove (the interner) are
//!   tombstone-free by construction and simply never call it.
//! * **Probe counting.** Every slot inspection on the counting paths is
//!   tallied so hot-path users (the coherence directory) can report
//!   pressure; [`FlatTable::peek`] is the non-counting lookup for
//!   diagnostics that must not skew the statistics.
//!
//! Empty slots are marked with a sentinel key ([`FlatKey::EMPTY`]) rather
//! than a side bitmap — every user has a key value that cannot occur
//! (`u64::MAX` for line addresses, object addresses and packed id pairs).
//!
//! [`Interner`] and [`Slab`] build the dense-id idiom on top: sparse
//! `u64` keys are interned to contiguous `u32` ids in first-touch order,
//! and per-id payloads live in plain indexable slabs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Index, IndexMut};

/// The Fibonacci hashing multiplier (the golden ratio in 0.64 fixed
/// point), shared by every table in the workspace.
pub const FIB_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A key storable in a [`FlatTable`].
///
/// Implementations provide the sentinel marking an empty slot (a value
/// that can never be inserted) and a 64-bit hash whose *high* 32 bits are
/// well mixed — the table derives the home slot from them.
pub trait FlatKey: Copy + Eq {
    /// The vacant-slot sentinel. Inserting it is a logic error (checked
    /// in debug builds).
    const EMPTY: Self;

    /// Full 64-bit hash of the key. The table uses `(hash >> 32) & mask`.
    fn hash(self) -> u64;
}

/// `u64` keys hash with a single Fibonacci multiply — exactly the recipe
/// the coherence directory, object interner and pair table always used.
impl FlatKey for u64 {
    const EMPTY: Self = u64::MAX;

    #[inline]
    fn hash(self) -> u64 {
        self.wrapping_mul(FIB_MULT)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot<K, V> {
    key: K,
    value: V,
}

/// Open-addressed `K → V` table (see crate docs for the recipe).
#[derive(Debug, Clone)]
pub struct FlatTable<K: FlatKey, V: Copy + Default> {
    slots: Box<[Slot<K, V>]>,
    mask: usize,
    len: usize,
    probes: u64,
}

impl<K: FlatKey, V: Copy + Default> Default for FlatTable<K, V> {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

impl<K: FlatKey, V: Copy + Default> FlatTable<K, V> {
    /// Creates a table with at least `cap` slots (rounded up to a power
    /// of two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(8);
        Self {
            slots: Self::vacant_slots(cap),
            mask: cap - 1,
            len: 0,
            probes: 0,
        }
    }

    fn vacant_slots(cap: usize) -> Box<[Slot<K, V>]> {
        vec![
            Slot {
                key: K::EMPTY,
                value: V::default(),
            };
            cap
        ]
        .into_boxed_slice()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative slot inspections across all counting operations
    /// (everything except [`FlatTable::peek`], [`FlatTable::iter`] and
    /// [`FlatTable::clear`]).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Grows the table up front so that `additional` more entries fit
    /// without crossing the 7/8 load factor — pre-sizing for callers that
    /// know their population (the scale tier), so steady-state inserts
    /// never reallocate.
    pub fn reserve(&mut self, additional: usize) {
        let mut cap = self.capacity();
        while (self.len + additional + 1) * 8 > cap * 7 {
            cap *= 2;
        }
        if cap > self.capacity() {
            self.rehash_to(cap);
        }
    }

    /// Heap bytes held by the slot array (capacity × slot size).
    pub fn footprint_bytes(&self) -> u64 {
        (self.capacity() * std::mem::size_of::<Slot<K, V>>()) as u64
    }

    #[inline]
    fn home(&self, key: K) -> usize {
        (key.hash() >> 32) as usize & self.mask
    }

    /// Index of the slot holding `key`, if present, counting probes.
    #[inline]
    fn find(&mut self, key: K) -> Option<usize> {
        debug_assert!(key != K::EMPTY, "the vacant-slot sentinel is not a key");
        let mut i = self.home(key);
        loop {
            self.probes += 1;
            let k = self.slots[i].key;
            if k == key {
                return Some(i);
            }
            if k == K::EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The value of `key`, or `None` if absent.
    #[inline]
    pub fn get(&mut self, key: K) -> Option<&V> {
        self.find(key).map(|i| &self.slots[i].value)
    }

    /// Like [`FlatTable::get`] but without counting probes: for
    /// diagnostics and assertions that must not skew
    /// [`FlatTable::probes`].
    pub fn peek(&self, key: K) -> Option<&V> {
        debug_assert!(key != K::EMPTY, "the vacant-slot sentinel is not a key");
        let mut i = self.home(key);
        loop {
            let k = self.slots[i].key;
            if k == key {
                return Some(&self.slots[i].value);
            }
            if k == K::EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable access to the value of `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.find(key).map(move |i| &mut self.slots[i].value)
    }

    /// Mutable access to the value of `key`, inserting `make()` if the
    /// key is absent. Returns the value and whether an insertion
    /// happened.
    ///
    /// The growth check (at 7/8 load, so probe chains stay short) runs
    /// before the probe, exactly as in the original three tables.
    #[inline]
    pub fn or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> (&mut V, bool) {
        debug_assert!(key != K::EMPTY, "the vacant-slot sentinel is not a key");
        if (self.len + 1) * 8 > self.capacity() * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            self.probes += 1;
            let k = self.slots[i].key;
            if k == key {
                return (&mut self.slots[i].value, false);
            }
            if k == K::EMPTY {
                self.slots[i] = Slot { key, value: make() };
                self.len += 1;
                return (&mut self.slots[i].value, true);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable access to the value of `key`, inserting the default if
    /// absent (the equivalent of `entry(..).or_default()`).
    #[inline]
    pub fn entry(&mut self, key: K) -> &mut V {
        self.or_insert_with(key, V::default).0
    }

    /// Inserts or overwrites, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (slot, inserted) = self.or_insert_with(key, || value);
        if inserted {
            None
        } else {
            Some(std::mem::replace(slot, value))
        }
    }

    /// Removes a key, returning its value if it was present. Deletion
    /// backward-shifts the following cluster — no tombstones.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let mut hole = self.find(key)?;
        let removed = self.slots[hole].value;
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            self.probes += 1;
            let k = self.slots[i].key;
            if k == K::EMPTY {
                break;
            }
            // The entry at `i` may move into the hole only if the hole lies
            // on its probe path, i.e. cyclically within [home(k), i).
            let h = self.home(k);
            let on_path = if h <= i {
                h <= hole && hole < i
            } else {
                hole >= h || hole < i
            };
            if on_path {
                self.slots[hole] = self.slots[i];
                hole = i;
            }
        }
        self.slots[hole] = Slot {
            key: K::EMPTY,
            value: V::default(),
        };
        Some(removed)
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.slots.fill(Slot {
            key: K::EMPTY,
            value: V::default(),
        });
        self.len = 0;
    }

    /// Iterates over every stored `(key, value)` pair in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.key != K::EMPTY)
            .map(|s| (s.key, &s.value))
    }

    /// Iterates mutably over every stored pair in slot order (keys stay
    /// fixed; only values may change).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> + '_ {
        self.slots
            .iter_mut()
            .filter(|s| s.key != K::EMPTY)
            .map(|s| (s.key, &mut s.value))
    }

    fn grow(&mut self) {
        self.rehash_to(self.capacity() * 2);
    }

    fn rehash_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.capacity());
        let old = std::mem::replace(&mut self.slots, Self::vacant_slots(new_cap));
        self.mask = new_cap - 1;
        for slot in old.iter().filter(|s| s.key != K::EMPTY) {
            // Plain reinsertion; the table is known not to contain the key.
            let mut i = self.home(slot.key);
            loop {
                self.probes += 1;
                if self.slots[i].key == K::EMPTY {
                    self.slots[i] = *slot;
                    break;
                }
                i = (i + 1) & self.mask;
            }
        }
    }
}

/// The interner's dense-id space is exhausted: a new key would need an id
/// at or beyond the interner's limit (`u32::MAX` by default — the last
/// `u32` is reserved as a niche/sentinel by dense-id consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSpaceExhausted {
    /// The interner's id limit (ids `0..limit` are assignable).
    pub limit: u32,
}

impl std::fmt::Display for IdSpaceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dense-id space exhausted: all {} ids below the limit are assigned",
            self.limit
        )
    }
}

impl std::error::Error for IdSpaceExhausted {}

/// Interns sparse `u64` keys into dense `u32` ids, assigned contiguously
/// in first-touch order so they index straight into [`Slab`]s.
///
/// Keys are never removed — an interned key keeps its dense id for the
/// lifetime of the interner — which keeps the underlying table
/// tombstone-free by construction.
///
/// Ids below the id limit (`u32::MAX` by default, since consumers use the
/// all-ones `u32` as a sentinel) are assignable; once they run out,
/// [`Interner::try_intern`] reports [`IdSpaceExhausted`] for unseen keys
/// instead of silently wrapping the 32-bit counter.
#[derive(Debug, Clone)]
pub struct Interner {
    table: FlatTable<u64, u32>,
    id_limit: u32,
}

impl Default for Interner {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

impl Interner {
    /// Creates an interner with at least `cap` slots.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            table: FlatTable::with_capacity(cap),
            id_limit: u32::MAX,
        }
    }

    /// Creates an interner whose assignable ids are `0..limit` — a
    /// synthetic small id space for exercising the exhaustion path in
    /// tests without interning four billion keys.
    pub fn with_id_limit(cap: usize, limit: u32) -> Self {
        Self {
            table: FlatTable::with_capacity(cap),
            id_limit: limit,
        }
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Pre-sizes the table for `additional` more keys, so steady-state
    /// interning never reallocates.
    pub fn reserve(&mut self, additional: usize) {
        self.table.reserve(additional);
    }

    /// Heap bytes held by the interner's table.
    pub fn footprint_bytes(&self) -> u64 {
        self.table.footprint_bytes()
    }

    /// Dense id of `key`, interning it on first sight. Returns the id and
    /// whether this call was the first sight.
    ///
    /// Panics when the dense-id space is exhausted; use
    /// [`Interner::try_intern`] to handle that as a typed error.
    #[inline]
    pub fn intern(&mut self, key: u64) -> (u32, bool) {
        self.try_intern(key)
            .expect("interner dense-id space exhausted")
    }

    /// Dense id of `key`, interning it on first sight, or
    /// [`IdSpaceExhausted`] if the key is unseen and every assignable id
    /// is taken. Returns the id and whether this call was the first
    /// sight.
    #[inline]
    pub fn try_intern(&mut self, key: u64) -> Result<(u32, bool), IdSpaceExhausted> {
        // A hard assert (not debug-only): `u64::MAX` is the vacant-slot
        // sentinel, and letting it through would silently alias the key
        // to whatever dense id sits in the first vacant slot probed.
        assert_ne!(key, u64::MAX, "interner key u64::MAX is reserved");
        if self.table.len() as u64 >= u64::from(self.id_limit) {
            // At the limit: existing keys still resolve, new ones error
            // instead of wrapping the 32-bit counter.
            return match self.table.get(key) {
                Some(&dense) => Ok((dense, false)),
                None => Err(IdSpaceExhausted {
                    limit: self.id_limit,
                }),
            };
        }
        let next = self.table.len() as u32;
        let (dense, new) = self.table.or_insert_with(key, || next);
        Ok((*dense, new))
    }

    /// Dense id of `key` if it has been seen before.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if key == u64::MAX {
            // The sentinel would "match" any vacant slot.
            return None;
        }
        self.table.peek(key).copied()
    }
}

/// Dense-id-indexed storage: the slab side of the interner idiom. Ids are
/// `u32` (matching [`Interner`] dense ids) and assigned by push order.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    items: Vec<T>,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Creates an empty slab with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
        }
    }

    /// Pre-sizes the slab for `additional` more items.
    pub fn reserve(&mut self, additional: usize) {
        self.items.reserve(additional);
    }

    /// Heap bytes held by the slab (capacity × item size).
    pub fn footprint_bytes(&self) -> u64 {
        (self.items.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an item, returning its dense id.
    pub fn push(&mut self, item: T) -> u32 {
        let id = self.items.len() as u32;
        self.items.push(item);
        id
    }

    /// The item with dense id `id`, if in bounds.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.items.get(id as usize)
    }

    /// Mutable access to the item with dense id `id`, if in bounds.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.items.get_mut(id as usize)
    }

    /// Iterates over the items in id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.items.iter()
    }
}

impl<T> Index<u32> for Slab<T> {
    type Output = T;

    fn index(&self, id: u32) -> &T {
        &self.items[id as usize]
    }
}

impl<T> IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, id: u32) -> &mut T {
        &mut self.items[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FlatTable<u64, u64> = FlatTable::default();
        *t.entry(42) = 7;
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(42), Some(&7));
        assert_eq!(t.get(43), None);
        assert_eq!(t.remove(42), Some(7));
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(42), None);
    }

    #[test]
    fn or_insert_with_reports_insertion() {
        let mut t: FlatTable<u64, u32> = FlatTable::with_capacity(8);
        let (v, new) = t.or_insert_with(5, || 99);
        assert_eq!((*v, new), (99, true));
        let (v, new) = t.or_insert_with(5, || 11);
        assert_eq!((*v, new), (99, false));
        assert_eq!(t.insert(5, 3), Some(99));
        assert_eq!(t.insert(6, 4), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        for k in 0..1000u64 {
            *t.entry(k) = k;
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity() >= 1024);
        for k in 0..1000u64 {
            assert_eq!(t.get(k), Some(&k), "key {k}");
        }
    }

    #[test]
    fn backward_shift_keeps_colliding_keys_reachable() {
        // Small table, many keys that collide in the low bits: every
        // cluster shape gets exercised.
        let mut t: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        let keys: Vec<u64> = (0..6).map(|i| i * 8).collect();
        for &k in &keys {
            *t.entry(k) = k + 1;
        }
        for (n, &k) in keys.iter().enumerate() {
            assert_eq!(t.remove(k), Some(k + 1), "key {k}");
            assert_eq!(t.remove(k), None);
            for &rest in &keys[n + 1..] {
                assert_eq!(t.get(rest), Some(&(rest + 1)), "key {rest}");
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn probes_accumulate_but_peek_does_not_count() {
        let mut t: FlatTable<u64, u64> = FlatTable::default();
        t.entry(9);
        let after_insert = t.probes();
        assert!(after_insert > 0);
        t.peek(9);
        t.peek(10);
        assert_eq!(t.probes(), after_insert, "peek must not count");
        t.get(9);
        assert!(t.probes() > after_insert);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut t: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        for k in 0..100u64 {
            t.entry(k);
        }
        let cap = t.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn iter_mut_edits_values_in_place() {
        let mut t: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        for k in 1..=5u64 {
            *t.entry(k) = k * 10;
        }
        for (k, v) in t.iter_mut() {
            *v += k;
        }
        let mut pairs: Vec<(u64, u64)> = t.iter().map(|(k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 11), (2, 22), (3, 33), (4, 44), (5, 55)]);
    }

    #[test]
    fn interner_assigns_first_touch_order() {
        let mut i = Interner::with_capacity(8);
        assert_eq!(i.intern(0x9000), (0, true));
        assert_eq!(i.intern(0x1000), (1, true));
        assert_eq!(i.intern(0x9000), (0, false), "stable on re-intern");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(0x1000), Some(1));
        assert_eq!(i.get(0x2000), None);
        assert_eq!(i.get(u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn interner_rejects_the_sentinel_key() {
        Interner::default().intern(u64::MAX);
    }

    #[test]
    fn interner_errors_at_the_id_limit_instead_of_wrapping() {
        // Synthetic 4-id space: the boundary behaviour of the real
        // u32::MAX limit without four billion inserts.
        let mut i = Interner::with_id_limit(8, 4);
        for k in 0..4u64 {
            assert_eq!(i.try_intern(0x100 + k), Ok((k as u32, true)));
        }
        // At the limit: existing keys still resolve to their ids...
        assert_eq!(i.try_intern(0x102), Ok((2, false)));
        assert_eq!(i.get(0x103), Some(3));
        // ...but a fifth distinct key gets the typed error, repeatably,
        // and never a wrapped or aliased id.
        assert_eq!(i.try_intern(0x999), Err(IdSpaceExhausted { limit: 4 }));
        assert_eq!(i.try_intern(0x999), Err(IdSpaceExhausted { limit: 4 }));
        assert_eq!(i.len(), 4);
        assert_eq!(i.get(0x999), None);
        // One id below the limit everything still works.
        let mut near = Interner::with_id_limit(8, 4);
        for k in 0..3u64 {
            near.try_intern(k).unwrap();
        }
        assert_eq!(near.try_intern(3), Ok((3, true)));
        let msg = IdSpaceExhausted { limit: 4 }.to_string();
        assert!(msg.contains("dense-id space exhausted"), "{msg}");
    }

    #[test]
    fn reserve_presizes_so_inserts_never_grow() {
        let mut t: FlatTable<u64, u64> = FlatTable::with_capacity(8);
        t.reserve(1000);
        let cap = t.capacity();
        assert!(cap >= 1024 + 512, "7/8 load headroom: {cap}");
        for k in 0..1000u64 {
            *t.entry(k) = k;
        }
        assert_eq!(t.capacity(), cap, "pre-sized inserts must not grow");
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(k), Some(&k));
        }
        assert_eq!(t.footprint_bytes(), (cap * 16) as u64);
    }

    #[test]
    fn slab_push_and_index() {
        let mut s: Slab<&str> = Slab::new();
        assert_eq!(s.push("a"), 0);
        assert_eq!(s.push("b"), 1);
        assert_eq!(s[1], "b");
        s[0] = "c";
        assert_eq!(s.get(0), Some(&"c"));
        assert_eq!(s.get(9), None);
        assert_eq!(s.iter().count(), 2);
    }
}
