//! A tiny, dependency-free, **deterministic** stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to a crates
//! registry, so the real `rand` cannot be fetched. This crate implements
//! exactly the API subset the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — on top of the SplitMix64 generator, which is more
//! than adequate for workload shaping (the simulator itself is fully
//! deterministic and never consumes entropy).
//!
//! The streams differ from the real `rand::rngs::StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on seed-determinism and on
//! rough distributional quality, both of which SplitMix64 provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (`f64` samples uniformly from `[0, 1)`, as in real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `bits`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a value in `[range.start, range.end)` from `bits`.
    fn from_range(range: Range<Self>, bits: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_range(range: Range<Self>, bits: u64) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let width = (range.end - range.start) as u64;
                range.start + (bits % width) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The `rand`-compatible generator trait (subset).
pub trait Rng {
    /// Returns the next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly over the type's domain (`[0, 1)` for
    /// `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from a half-open range. Panics if the range is
    /// empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::from_range(range, self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea &
    /// Flood), a 64-bit state generator that passes BigCrush when used at
    /// this scale and is trivially seedable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so that consecutive small seeds yield
            // unrelated streams from the very first draw.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            let _ = rng.next_u64();
            Self { state: rng.state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(4);
        let mut h = [0u64; 16];
        for _ in 0..16_000 {
            let v = r.gen_range(0u32..16);
            h[v as usize] += 1;
        }
        assert!(h.iter().all(|&c| c > 700 && c < 1300), "{h:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }
}
