//! A bounded single-producer / single-consumer ring.
//!
//! The migration fabric is a W×W mesh of these rings: `rings[src][dst]`
//! is written only by worker `src` and read only by worker `dst`, so each
//! ring sees exactly one producer and one consumer — the classic Lamport
//! queue, two atomics and no locks. Capacity is a power of two; a full
//! ring rejects the push (the runtime then executes the op locally and
//! counts the fallback instead of blocking the submitter).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded SPSC ring. `push` may only ever be called from one thread at
/// a time, `pop` from one (possibly different) thread — the mesh layout
/// enforces this by construction.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Written only by the producer.
    tail: AtomicUsize,
    /// High-water mark of the occupied depth, maintained by the producer.
    depth_hwm: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other thread, with the tail/head Release/Acquire pair ordering the slot
// write before the matching read. `T: Send` is exactly the bound that
// hand-off needs.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring with the given capacity (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            buf,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            depth_hwm: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Occupied depth at this instant (racy between threads, exact when
    /// called by the producer or consumer themselves).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the ring has ever been, as observed by the producer.
    pub fn depth_high_water(&self) -> usize {
        self.depth_hwm.load(Ordering::Relaxed)
    }

    /// Producer side: appends `value`, or returns it if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let depth = tail.wrapping_sub(head);
        if depth == self.buf.len() {
            return Err(value);
        }
        // SAFETY: slots in [head, tail) are owned by the consumer; slot
        // `tail` is outside that range and this thread is the only
        // producer, so no one else touches it until the Release store
        // below publishes it.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        if depth + 1 > self.depth_hwm.load(Ordering::Relaxed) {
            self.depth_hwm.store(depth + 1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Consumer side: removes the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the Acquire load of `tail` ordered the producer's slot
        // write before this read, and this thread is the only consumer,
        // so the slot holds an initialized value no one else will read.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop whatever is still queued; `&mut self` means no concurrent
        // producer or consumer exists any more.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SpscRing::<u32>::with_capacity(0).capacity(), 2);
        assert_eq!(SpscRing::<u32>::with_capacity(5).capacity(), 8);
        assert_eq!(SpscRing::<u32>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let r = SpscRing::with_capacity(4);
        for round in 0..10u32 {
            for i in 0..4 {
                r.push(round * 10 + i).unwrap();
            }
            assert_eq!(r.push(99), Err(99), "full ring must reject");
            for i in 0..4 {
                assert_eq!(r.pop(), Some(round * 10 + i));
            }
            assert_eq!(r.pop(), None);
        }
        assert_eq!(r.depth_high_water(), 4);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let r = SpscRing::with_capacity(8);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for step in 0..1000 {
            if step % 3 != 2 {
                if r.push(next_in).is_ok() {
                    next_in += 1;
                }
            } else if let Some(v) = r.pop() {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        while let Some(v) = r.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn values_cross_threads_intact() {
        let r = std::sync::Arc::new(SpscRing::with_capacity(16));
        let total = 20_000u64;
        let producer = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while v < total {
                    if r.push(v).is_ok() {
                        v += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sum = AtomicU64::new(0);
        let mut seen = 0u64;
        let mut expect = 0u64;
        while seen < total {
            if let Some(v) = r.pop() {
                assert_eq!(v, expect, "SPSC order violated");
                expect += 1;
                sum.fetch_add(v, Ordering::Relaxed);
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum.into_inner(), total * (total - 1) / 2);
    }

    #[test]
    fn drop_releases_queued_values() {
        let counted = std::sync::Arc::new(());
        {
            let r = SpscRing::with_capacity(8);
            for _ in 0..5 {
                r.push(std::sync::Arc::clone(&counted)).unwrap();
            }
            assert_eq!(std::sync::Arc::strong_count(&counted), 6);
        }
        assert_eq!(std::sync::Arc::strong_count(&counted), 1);
    }
}
