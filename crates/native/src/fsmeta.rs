//! The native fsmeta workload: metadata churn over per-directory slot
//! tables.
//!
//! The simulator's fsmeta tier exercises create/unlink/rename/lookup
//! churn against directory metadata. The native port keeps the same
//! shape — a mix of mutating and read-only operations against
//! per-directory state, with scan cost proportional to the slot index —
//! while honouring the crate's determinism contract: every mutation is
//! an XOR into a slot accumulator or a counter increment under the
//! directory's spin lock, so the final table is identical whatever
//! schedule the policy produces.

use o2_runtime::ObjectDescriptor;
use o2_sim::AccessKind;

use crate::workload::{
    fnv1a, ExecutedOp, NativeOp, NativeWorkload, OpBits, SpinGuarded, FNV_OFFSET,
};

/// Specification of the native fsmeta workload.
#[derive(Debug, Clone)]
pub struct NativeFsMetaSpec {
    /// Number of directories (objects).
    pub n_dirs: u32,
    /// Metadata slots per directory.
    pub slots_per_dir: u32,
    /// Stream seed.
    pub seed: u64,
}

impl NativeFsMetaSpec {
    /// A small spec for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            n_dirs: 8,
            slots_per_dir: 48,
            seed,
        }
    }
}

/// Operation classes of the churn mix (create 40%, unlink 30%,
/// rename 14%, lookup 14%, retire 2%), derived deterministically from
/// the op token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetaClass {
    Create,
    Unlink,
    Rename,
    Lookup,
    Retire,
}

impl MetaClass {
    fn of(token: u64) -> Self {
        match token % 100 {
            0..=39 => Self::Create,
            40..=69 => Self::Unlink,
            70..=83 => Self::Rename,
            84..=97 => Self::Lookup,
            _ => Self::Retire,
        }
    }

    fn is_read(self) -> bool {
        self == Self::Lookup
    }
}

/// One directory's metadata shard.
struct MetaShard {
    /// Slot accumulators; mutating classes XOR their token in.
    slots: Vec<u64>,
    /// Per-class op counters: create, unlink, rename, lookup, retire.
    class_counts: [u64; 5],
}

/// The native metadata-churn workload.
pub struct NativeFsMeta {
    spec: NativeFsMetaSpec,
    dirs: Vec<SpinGuarded<MetaShard>>,
}

impl NativeFsMeta {
    /// Allocates the slot tables.
    pub fn build(spec: &NativeFsMetaSpec) -> Self {
        let dirs = (0..spec.n_dirs.max(1))
            .map(|_| {
                SpinGuarded::new(MetaShard {
                    slots: vec![0; spec.slots_per_dir.max(1) as usize],
                    class_counts: [0; 5],
                })
            })
            .collect();
        Self {
            spec: spec.clone(),
            dirs,
        }
    }

    /// The spec this workload was built from.
    pub fn spec(&self) -> &NativeFsMetaSpec {
        &self.spec
    }
}

impl NativeWorkload for NativeFsMeta {
    fn name(&self) -> &'static str {
        "fsmeta"
    }

    fn n_objects(&self) -> u32 {
        self.dirs.len() as u32
    }

    fn descriptor(&self, object: u32) -> ObjectDescriptor {
        let size = u64::from(self.spec.slots_per_dir.max(1)) * 8;
        ObjectDescriptor::new(self.key_of(object), self.key_of(object), size)
            .read_mostly(false)
            .with_lock(object as usize)
    }

    fn op(&self, index: u64) -> NativeOp {
        // Salt the seed so a lookup and an fsmeta workload sharing a seed
        // still draw distinct streams.
        let mut bits = OpBits::new(self.spec.seed ^ 0xf5ee_7a65_9d2c_4b17, index);
        let object = (bits.next() % self.dirs.len() as u64) as u32;
        let entry = (bits.next() % u64::from(self.spec.slots_per_dir.max(1))) as u32;
        let token = bits.next();
        let kind = if MetaClass::of(token).is_read() {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        NativeOp {
            index,
            object,
            entry,
            kind,
            token,
        }
    }

    fn execute(&self, op: &NativeOp) -> ExecutedOp {
        let class = MetaClass::of(op.token);
        let scanned = u64::from(op.entry) + 1;
        self.dirs[op.object as usize].with(|dir| {
            // Scan up to the target slot — the directory walk whose cost
            // the simulator models as per-entry compare cycles.
            let mut acc = 0u64;
            for slot in &dir.slots[..op.entry as usize + 1] {
                acc = acc.wrapping_add(*slot);
            }
            std::hint::black_box(acc);
            if class != MetaClass::Lookup {
                // Commutative mutation: XOR keeps the final table
                // schedule-invariant (create/unlink pairs cancel exactly
                // as allocation and reclamation do).
                dir.slots[op.entry as usize] ^= op.token;
            }
            dir.class_counts[class as usize] += 1;
        });
        ExecutedOp {
            bytes_touched: scanned * 8,
            modeled_cycles: 150 + scanned * 6,
        }
    }

    fn fill(&self, object: u32) -> u64 {
        self.dirs[object as usize].with(|dir| {
            let mut acc = 0u64;
            for slot in &dir.slots {
                acc = acc.wrapping_add(*slot);
            }
            std::hint::black_box(acc);
            dir.slots.len() as u64 * 8
        })
    }

    fn state_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for dir in &self.dirs {
            dir.with(|d| {
                for count in d.class_counts {
                    h = fnv1a(h, &count.to_le_bytes());
                }
                for slot in &d.slots {
                    h = fnv1a(h, &slot.to_le_bytes());
                }
            });
        }
        h
    }

    fn lock_contention(&self) -> u64 {
        self.dirs.iter().map(SpinGuarded::contention).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stream_is_reproducible_and_in_range() {
        let wl = NativeFsMeta::build(&NativeFsMetaSpec::small(21));
        let a: Vec<NativeOp> = (0..300).map(|i| wl.op(i)).collect();
        let b: Vec<NativeOp> = (0..300).map(|i| wl.op(i)).collect();
        assert_eq!(a, b);
        for op in &a {
            assert!(op.object < 8);
            assert!(op.entry < 48);
        }
        let reads = a.iter().filter(|o| o.kind == AccessKind::Read).count();
        assert!(reads > 0 && reads < 150, "lookup share ~14%, got {reads}");
    }

    #[test]
    fn mutations_commute() {
        let spec = NativeFsMetaSpec::small(4);
        let ops: Vec<NativeOp> = {
            let wl = NativeFsMeta::build(&spec);
            (0..400).map(|i| wl.op(i)).collect()
        };
        let digest_for = |order: &[NativeOp]| {
            let wl = NativeFsMeta::build(&spec);
            for op in order {
                wl.execute(op);
            }
            wl.state_digest()
        };
        let forward = digest_for(&ops);
        let mut shuffled = ops.clone();
        shuffled.reverse();
        shuffled.rotate_left(7);
        assert_eq!(forward, digest_for(&shuffled));
    }

    #[test]
    fn class_mix_matches_the_token_buckets() {
        assert_eq!(MetaClass::of(0), MetaClass::Create);
        assert_eq!(MetaClass::of(39), MetaClass::Create);
        assert_eq!(MetaClass::of(40), MetaClass::Unlink);
        assert_eq!(MetaClass::of(83), MetaClass::Rename);
        assert_eq!(MetaClass::of(97), MetaClass::Lookup);
        assert_eq!(MetaClass::of(99), MetaClass::Retire);
    }

    #[test]
    fn descriptors_are_write_shared() {
        let wl = NativeFsMeta::build(&NativeFsMetaSpec::small(1));
        let d = wl.descriptor(2);
        assert!(!d.read_mostly);
        assert_eq!(d.size, 48 * 8);
        assert_eq!(d.lock, Some(2));
    }
}
