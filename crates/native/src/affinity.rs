//! Core pinning without `libc`.
//!
//! The paper's CoreTime runtime ties one pthread to each core with
//! `sched_setaffinity()`. The build must stay offline and std-only, so on
//! Linux we issue the raw syscall through inline assembly; on any other
//! platform (or if the kernel refuses) pinning degrades gracefully to
//! "not pinned" and the runtime reports how many workers actually stuck.

/// Number of CPUs the host exposes to this process (at least 1).
pub fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the *calling thread* to the given CPU. Returns `true` when the
/// kernel accepted the mask, `false` on any failure or on platforms
/// without a raw-syscall path — callers must treat pinning as a hint.
pub fn pin_to_cpu(cpu: usize) -> bool {
    // A classic cpu_set_t is 1024 bits.
    const CPU_SET_BITS: usize = 1024;
    if cpu >= CPU_SET_BITS {
        return false;
    }
    let mut mask = [0u64; CPU_SET_BITS / 64];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    sched_setaffinity_current(&mask)
}

/// `sched_setaffinity(0, sizeof(mask), &mask)` for the calling thread
/// (pid 0 names the caller). Returns whether the kernel accepted it.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_current(mask: &[u64; 16]) -> bool {
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    let ret: i64;
    // SAFETY: the syscall reads `mask` (valid for the given length) and
    // touches no other memory; rcx/r11 are declared clobbered as the
    // syscall ABI requires.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0i64,
            in("rsi") mask.len() * 8,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// `sched_setaffinity` via `svc 0` on aarch64 Linux.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_current(mask: &[u64; 16]) -> bool {
    const SYS_SCHED_SETAFFINITY: u64 = 122;
    let ret: i64;
    // SAFETY: as in the x86_64 path — the syscall only reads `mask`.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") SYS_SCHED_SETAFFINITY,
            inlateout("x0") 0i64 => ret,
            in("x1") mask.len() * 8,
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// No raw-syscall path on this platform: never pinned.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_current(_mask: &[u64; 16]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cpus_is_positive() {
        assert!(available_cpus() >= 1);
    }

    #[test]
    fn pinning_to_cpu_zero_does_not_crash() {
        // CPU 0 always exists; the call may still be refused (container
        // policies), so only the out-of-range case has a fixed answer.
        let _ = pin_to_cpu(0);
        assert!(!pin_to_cpu(100_000));
    }

    #[test]
    fn pinned_thread_keeps_running() {
        let handle = std::thread::spawn(|| {
            let pinned = pin_to_cpu(0);
            // Whether or not the mask stuck, the thread must still do work.
            let sum: u64 = (0..1000u64).sum();
            (pinned, sum)
        });
        let (_, sum) = handle.join().unwrap();
        assert_eq!(sum, 499_500);
    }
}
