//! Driving an unchanged [`SchedPolicy`] from real threads.
//!
//! The simulator's policies receive an [`OpContext`] carrying a read-only
//! `&Machine` view (used for topology: chip membership, hop counts,
//! per-core cache budgets). The native runtime owns a [`PolicyHost`] — a
//! policy plus a fresh [`Machine`] sized to the worker count — behind one
//! mutex, and funnels every `ct_start` / `ct_end` / epoch call through
//! it. The policy cannot tell it is placing operations on real threads:
//! the interface, the ids and the counter deltas all look exactly as they
//! do under the simulator. What differs is spelled out in `DESIGN.md`
//! ("The native runtime"): the machine view's cycle counters stay at
//! zero, and counter deltas are synthesized from the bytes an op really
//! touched rather than simulated per-line.

use o2_runtime::{
    CounterDelta, EpochView, Machine, ObjectDescriptor, OpContext, Placement, PolicyCommand,
    PolicyReplicationStats, SchedPolicy,
};
use o2_sim::{AccessKind, MachineConfig};

/// Identity of one native operation, as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct OpIdentity {
    /// Submitting worker (doubles as thread id and home core).
    pub worker: usize,
    /// Dense object id (the workload's object index).
    pub object: u32,
    /// External object key (the descriptor address).
    pub key: u64,
    /// Virtual clock value for this call.
    pub now: u64,
    /// Declared access kind.
    pub kind: AccessKind,
}

/// A scheduling policy plus the machine view its callbacks expect.
pub struct PolicyHost {
    policy: Box<dyn SchedPolicy + Send>,
    machine: Machine,
}

impl PolicyHost {
    /// Wraps a policy with a machine view built from `cfg` (one simulated
    /// core per native worker).
    pub fn new(policy: Box<dyn SchedPolicy + Send>, cfg: &MachineConfig) -> Self {
        Self {
            policy,
            machine: Machine::new(cfg.clone()),
        }
    }

    /// The policy's name.
    pub fn name(&self) -> &'static str {
        self.policy.name()
    }

    /// Registers an object with the policy under its dense id.
    pub fn register(&mut self, id: u32, descriptor: &ObjectDescriptor) {
        self.policy.register_object(id, descriptor);
    }

    /// Pre-sizes the policy's per-object tables.
    pub fn reserve(&mut self, n: usize) {
        self.policy.reserve_objects(n);
    }

    /// `ct_start`: where should this operation run? Placements outside
    /// the worker range are clamped to local (defensive: the machine view
    /// has exactly one core per worker, so a well-formed policy never
    /// produces one).
    pub fn place(&mut self, op: &OpIdentity, workers: usize) -> Placement {
        let placement = self.policy.on_ct_start(&ctx(&self.machine, op));
        match placement {
            Placement::On(core) if (core as usize) < workers => placement,
            Placement::On(_) => Placement::Local,
            Placement::Local => Placement::Local,
        }
    }

    /// `ct_end`: reports the counter delta observed on the core that
    /// executed the operation (`executed_on`, which differs from the
    /// submitter when the op migrated).
    pub fn ct_end(&mut self, op: &OpIdentity, executed_on: usize, delta: &CounterDelta) {
        let mut view = ctx(&self.machine, op);
        view.core = executed_on as u32;
        self.policy.on_ct_end(&view, delta);
    }

    /// Epoch boundary: hands the policy per-worker deltas and returns its
    /// commands.
    pub fn epoch(&mut self, now: u64, deltas: &[CounterDelta]) -> Vec<PolicyCommand> {
        self.policy.on_epoch(&EpochView {
            now,
            machine: &self.machine,
            deltas,
        })
    }

    /// The policy's replica-serving counters.
    pub fn replication_stats(&self) -> PolicyReplicationStats {
        self.policy.replication_stats()
    }
}

/// Builds the [`OpContext`] the policy sees for `op` (a free function so
/// the machine borrow stays disjoint from the `&mut` policy borrow).
fn ctx<'a>(machine: &'a Machine, op: &OpIdentity) -> OpContext<'a> {
    OpContext {
        thread: op.worker,
        core: op.worker as u32,
        home_core: op.worker as u32,
        object: op.object,
        object_key: op.key,
        now: op.now,
        kind: op.kind,
        machine,
    }
}

/// Synthesizes the counter delta for an executed native op.
///
/// The paper's monitor counts "the number of cache misses that occur
/// between a pair of CoreTime annotations"; natively we cannot read the
/// PMU portably, so the delta is derived from what the op *demonstrably*
/// did: one line-sized miss per 64 bytes actually scanned, and the
/// modeled compute cycles as busy time. This keeps the delta a pure
/// function of the op (deterministic across schedules) while still being
/// proportional to real work, so the policy's verdict machinery fires
/// exactly as it does under the simulator.
pub fn synthetic_delta(bytes_touched: u64, busy_cycles: u64) -> CounterDelta {
    let lines = bytes_touched.div_ceil(64);
    CounterDelta {
        busy_cycles,
        idle_cycles: 0,
        l1_misses: lines,
        l2_misses: lines,
        l2_hits: 0,
        l3_hits: 0,
        l3_misses: lines,
        remote_cache_loads: 0,
        dram_loads: lines,
        operations_completed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::NullPolicy;

    fn op(object: u32, worker: usize) -> OpIdentity {
        OpIdentity {
            worker,
            object,
            key: 0x1000 + u64::from(object) * 0x100,
            now: 0,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn null_policy_stays_local() {
        let cfg = crate::native_machine_config(4);
        let mut host = PolicyHost::new(Box::new(NullPolicy), &cfg);
        assert_eq!(host.name(), "thread-scheduler");
        assert_eq!(host.place(&op(0, 1), 4), Placement::Local);
        assert!(host.epoch(100, &[]).is_empty());
    }

    #[test]
    fn out_of_range_placements_are_clamped() {
        let cfg = crate::native_machine_config(2);
        let mut st = o2_runtime::StaticPolicy::new();
        st.assign(0x1000, 7); // points past the 2-worker machine
        let mut host = PolicyHost::new(Box::new(st), &cfg);
        assert_eq!(host.place(&op(0, 0), 2), Placement::Local);
    }

    #[test]
    fn synthetic_delta_is_proportional_to_bytes() {
        let d = synthetic_delta(4096, 500);
        assert_eq!(d.object_fetch_misses(), 64);
        assert_eq!(d.busy_cycles, 500);
        assert_eq!(d.operations_completed, 1);
        assert_eq!(synthetic_delta(1, 1).object_fetch_misses(), 1);
        assert_eq!(synthetic_delta(0, 1).object_fetch_misses(), 0);
    }
}
