//! The native runtime: pinned workers, migration rings, closed loop.
//!
//! `run_native` spawns one `std::thread` worker per configured core,
//! pins each to its CPU (best effort), and drives the workload's
//! deterministic op stream through the policy:
//!
//! 1. a worker claims the next global op index and asks the policy where
//!    to run it (`ct_start`);
//! 2. `Local` (or its own core) → it executes the op right here;
//! 3. `On(other)` → it enqueues an op descriptor on `rings[self][other]`
//!    and waits for the matching `Done` — **while serving any ops other
//!    workers migrated to it**, so the mesh can never deadlock;
//! 4. whoever executed the op reports the counter delta (`ct_end`) and
//!    the submitter advances the global completed count, firing an epoch
//!    callback at every `epoch_every_ops` boundary.
//!
//! Each worker keeps at most one op outstanding (the paper's synchronous
//! server loop), so `completed == limit` also proves no message is still
//! in flight — which is what lets the warmup and measured phases be
//! separated by plain barriers.
//!
//! Timing comes from `Instant` pairs recorded per worker inside the
//! measured phase; the reported wall time spans the earliest start to
//! the latest end. Timing and occupancy vary run to run and are
//! reported, never asserted — see the crate docs for the determinism
//! contract.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use o2_runtime::{CounterDelta, Placement, PolicyCommand, SchedPolicy};
use o2_sim::MachineConfig;

use crate::affinity::pin_to_cpu;
use crate::host::{synthetic_delta, OpIdentity, PolicyHost};
use crate::ring::SpscRing;
use crate::workload::NativeWorkload;

/// Virtual cycles the clock advances per completed operation (the
/// policies only need a monotonic epoch clock, not real time).
const CYCLES_PER_OP: u64 = 200;

/// Configuration of one native run.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Worker (and simulated-core) count, clamped to `1..=64`.
    pub workers: usize,
    /// Ops executed before measurement starts (cache and policy warmup).
    pub warmup_ops: u64,
    /// Ops executed inside the measured window.
    pub measure_ops: u64,
    /// Epoch callback period in completed measured ops (0 disables).
    pub epoch_every_ops: u64,
    /// Capacity of each migration ring (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Whether to attempt pinning workers to CPUs.
    pub pin: bool,
    /// Machine view handed to the policy (one core per worker).
    pub machine: MachineConfig,
}

impl NativeConfig {
    /// Defaults for `workers` workers: 1k warmup, 20k measured ops,
    /// epochs every 2k ops, 256-slot rings, pinning on.
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, 64);
        Self {
            workers,
            warmup_ops: 1_000,
            measure_ops: 20_000,
            epoch_every_ops: 2_000,
            ring_capacity: 256,
            pin: true,
            machine: native_machine_config(workers),
        }
    }
}

/// The machine view for a native run: one chip with one simulated core
/// per worker, otherwise the paper's AMD geometry. The policies read
/// only topology and cache budgets from it; its cycle counters stay at
/// zero.
pub fn native_machine_config(workers: usize) -> MachineConfig {
    let mut cfg = MachineConfig::amd16();
    cfg.chips = 1;
    cfg.cores_per_chip = workers.clamp(1, 64) as u32;
    cfg
}

/// What one native run measured. Wall-clock numbers vary run to run;
/// the op counts and the state digest do not.
#[derive(Debug, Clone)]
pub struct NativeMeasurement {
    /// Policy name.
    pub policy: String,
    /// Worker count.
    pub workers: usize,
    /// Workers whose affinity mask the kernel accepted.
    pub pinned_workers: usize,
    /// Measured ops completed (equals the configured `measure_ops`).
    pub ops: u64,
    /// Measured ops declared `AccessKind::Read`.
    pub reads: u64,
    /// Measured ops declared `AccessKind::Write`.
    pub writes: u64,
    /// Earliest worker start to latest worker end, in seconds.
    pub wall_seconds: f64,
    /// Measured ops that crossed a ring to another worker.
    pub migrations: u64,
    /// Measured migrations refused by a full ring and run locally.
    pub ring_full_local: u64,
    /// Ops *executed* by each worker during the measured phase
    /// (occupancy; sums to `ops`).
    pub per_worker_ops: Vec<u64>,
    /// Deepest any migration ring ever got.
    pub ring_depth_hwm: usize,
    /// Epoch callbacks delivered during the measured phase.
    pub epochs: u64,
    /// `RehomeThread` commands received (recorded only: workers stay
    /// pinned, the native analogue of rehoming is the migration itself).
    pub rehomes_recorded: u64,
    /// `FillReplica` commands executed by touching the object's bytes.
    pub fills_completed: u64,
    /// Order-independent digest of the final workload state.
    pub state_digest: u64,
    /// Spin-lock acquisitions that found a shard lock held.
    pub lock_contention: u64,
}

impl NativeMeasurement {
    /// Measured throughput in thousands of ops per second.
    pub fn kops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_seconds.max(1e-9) / 1e3
    }
}

/// A migration message. `Op` asks the receiver to execute stream index
/// `index` on behalf of `submitter`; `Done` releases the submitter.
enum Msg {
    Op { index: u64, submitter: usize },
    Done,
}

/// One phase's claim/completion counters. Op indices `base..base+limit`
/// belong to the phase; `issued` allocates them, `completed` counts ops
/// whose submitter has been released.
struct Phase {
    base: u64,
    limit: u64,
    clock_base: u64,
    issued: AtomicU64,
    completed: AtomicU64,
    measured: bool,
}

impl Phase {
    fn new(base: u64, limit: u64, measured: bool) -> Self {
        Self {
            base,
            limit,
            clock_base: base,
            issued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            measured,
        }
    }

    fn now(&self) -> u64 {
        (self.clock_base + self.completed.load(Ordering::Relaxed)) * CYCLES_PER_OP + 1
    }
}

/// Everything the workers share.
struct Shared<'a> {
    wl: &'a dyn NativeWorkload,
    cfg: &'a NativeConfig,
    host: Mutex<PolicyHost>,
    /// `rings[src][dst]`: written only by `src`, read only by `dst`.
    rings: Vec<Vec<SpscRing<Msg>>>,
    /// Per-worker counter-delta accumulators for the epoch view.
    deltas: Vec<Mutex<CounterDelta>>,
    /// Per-worker queues of `FillReplica` objects, drained when idle.
    fill_queues: Vec<Mutex<Vec<u32>>>,
    /// Measured start/end of each worker, as offsets from `origin`.
    spans: Vec<Mutex<(Duration, Duration)>>,
    origin: Instant,
    barrier: Barrier,
    pinned: AtomicUsize,
    reads: AtomicU64,
    writes: AtomicU64,
    migrations: AtomicU64,
    ring_full_local: AtomicU64,
    per_worker_ops: Vec<AtomicU64>,
    epochs: AtomicU64,
    rehomes: AtomicU64,
    fills: AtomicU64,
}

impl<'a> Shared<'a> {
    fn accumulate(&self, worker: usize, delta: &CounterDelta) {
        let mut acc = self.deltas[worker].lock().expect("delta accumulator");
        acc.busy_cycles += delta.busy_cycles;
        acc.idle_cycles += delta.idle_cycles;
        acc.l1_misses += delta.l1_misses;
        acc.l2_misses += delta.l2_misses;
        acc.l2_hits += delta.l2_hits;
        acc.l3_hits += delta.l3_hits;
        acc.l3_misses += delta.l3_misses;
        acc.remote_cache_loads += delta.remote_cache_loads;
        acc.dram_loads += delta.dram_loads;
        acc.operations_completed += delta.operations_completed;
    }

    /// Executes op `index` on `executor` for `submitter`: runs the real
    /// work, reports `ct_end`, and books the occupancy.
    fn execute(&self, phase: &Phase, index: u64, submitter: usize, executor: usize) {
        let op = self.wl.op(index);
        let done = self.wl.execute(&op);
        let delta = synthetic_delta(done.bytes_touched, done.modeled_cycles);
        self.accumulate(executor, &delta);
        let identity = OpIdentity {
            worker: submitter,
            object: op.object,
            key: self.wl.key_of(op.object),
            now: phase.now(),
            kind: op.kind,
        };
        self.host
            .lock()
            .expect("policy host")
            .ct_end(&identity, executor, &delta);
        if phase.measured {
            self.per_worker_ops[executor].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains every ring addressed to `me`: migrated ops are executed
    /// (their `Done` goes into `pending` if the return ring is full);
    /// returns whether a `Done` for `me` arrived.
    fn drain_incoming(&self, phase: &Phase, me: usize, pending: &mut Vec<usize>) -> bool {
        let mut got_done = false;
        for src in 0..self.cfg.workers {
            if src == me {
                continue;
            }
            while let Some(msg) = self.rings[src][me].pop() {
                match msg {
                    Msg::Op { index, submitter } => {
                        self.execute(phase, index, submitter, me);
                        if self.rings[me][submitter].push(Msg::Done).is_err() {
                            pending.push(submitter);
                        }
                    }
                    Msg::Done => got_done = true,
                }
            }
        }
        got_done
    }

    /// Retries `Done` pushes that found a full ring.
    fn flush_pending(&self, me: usize, pending: &mut Vec<usize>) {
        pending.retain(|&dst| self.rings[me][dst].push(Msg::Done).is_err());
    }

    /// Runs any queued replica fills for `me`.
    fn drain_fills(&self, me: usize) {
        let queued = {
            let mut q = self.fill_queues[me].lock().expect("fill queue");
            std::mem::take(&mut *q)
        };
        for object in queued {
            self.wl.fill(object);
            self.fills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Epoch boundary at completed-count `at`: snapshot-and-reset the
    /// per-worker deltas, let the policy speak, apply its commands.
    fn run_epoch(&self, phase: &Phase, at: u64) {
        let deltas: Vec<CounterDelta> = self
            .deltas
            .iter()
            .map(|m| std::mem::take(&mut *m.lock().expect("delta accumulator")))
            .collect();
        let now = (phase.clock_base + at) * CYCLES_PER_OP + 1;
        let commands = self.host.lock().expect("policy host").epoch(now, &deltas);
        self.epochs.fetch_add(1, Ordering::Relaxed);
        for command in commands {
            match command {
                PolicyCommand::RehomeThread { .. } => {
                    // Workers are pinned; rehoming is what the migration
                    // rings already do per-op. Recorded, not acted on.
                    self.rehomes.fetch_add(1, Ordering::Relaxed);
                }
                PolicyCommand::FillReplica { object, core } => {
                    let target = (core as usize).min(self.cfg.workers - 1);
                    self.fill_queues[target]
                        .lock()
                        .expect("fill queue")
                        .push(object);
                }
            }
        }
    }

    /// Submits op `index` from worker `me` and blocks (serving incoming
    /// work) until it completes somewhere.
    fn submit(&self, phase: &Phase, me: usize, index: u64, pending: &mut Vec<usize>) {
        let op = self.wl.op(index);
        if phase.measured {
            match op.kind {
                o2_sim::AccessKind::Read => self.reads.fetch_add(1, Ordering::Relaxed),
                o2_sim::AccessKind::Write => self.writes.fetch_add(1, Ordering::Relaxed),
            };
        }
        let identity = OpIdentity {
            worker: me,
            object: op.object,
            key: self.wl.key_of(op.object),
            now: phase.now(),
            kind: op.kind,
        };
        let placement = self
            .host
            .lock()
            .expect("policy host")
            .place(&identity, self.cfg.workers);
        let dest = match placement {
            Placement::On(core) if core as usize != me => Some(core as usize),
            _ => None,
        };
        match dest {
            None => self.execute(phase, index, me, me),
            Some(dst) => {
                if self.rings[me][dst]
                    .push(Msg::Op {
                        index,
                        submitter: me,
                    })
                    .is_ok()
                {
                    if phase.measured {
                        self.migrations.fetch_add(1, Ordering::Relaxed);
                    }
                    // Closed loop: wait for our Done while serving the
                    // mesh so no pair of waiting workers can deadlock.
                    loop {
                        let got = self.drain_incoming(phase, me, pending);
                        self.flush_pending(me, pending);
                        if got {
                            break;
                        }
                        std::thread::yield_now();
                    }
                } else {
                    // Full ring: run it here rather than block the loop.
                    if phase.measured {
                        self.ring_full_local.fetch_add(1, Ordering::Relaxed);
                    }
                    self.execute(phase, index, me, me);
                }
            }
        }
        let completed = phase.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if phase.measured
            && self.cfg.epoch_every_ops > 0
            && completed % self.cfg.epoch_every_ops == 0
        {
            self.run_epoch(phase, completed);
        }
    }

    /// One phase of worker `me`'s life: claim indices until the phase is
    /// exhausted, then keep serving the mesh until every op completed.
    fn run_phase(&self, phase: &Phase, me: usize, pending: &mut Vec<usize>) {
        loop {
            self.drain_fills(me);
            let got_done = self.drain_incoming(phase, me, pending);
            debug_assert!(!got_done, "Done with no outstanding op");
            self.flush_pending(me, pending);
            let claim = phase.issued.fetch_add(1, Ordering::Relaxed);
            if claim >= phase.limit {
                break;
            }
            self.submit(phase, me, phase.base + claim, pending);
        }
        // Out of ops to submit — but workers still in their loop may
        // migrate to us, so serve the mesh until the phase fully drains.
        while phase.completed.load(Ordering::Acquire) < phase.limit {
            self.drain_incoming(phase, me, pending);
            self.flush_pending(me, pending);
            std::thread::yield_now();
        }
        debug_assert!(pending.is_empty(), "Done in flight after phase drain");
    }

    fn worker_main(&self, me: usize, warmup: &Phase, measured: &Phase) {
        if self.cfg.pin && pin_to_cpu(me) {
            self.pinned.fetch_add(1, Ordering::Relaxed);
        }
        let mut pending: Vec<usize> = Vec::new();
        self.barrier.wait();
        self.run_phase(warmup, me, &mut pending);
        // All warmup ops completed ⇒ no message in flight; the barrier
        // makes the phase switch atomic across workers.
        self.barrier.wait();
        let start = self.origin.elapsed();
        self.run_phase(measured, me, &mut pending);
        let end = self.origin.elapsed();
        *self.spans[me].lock().expect("span slot") = (start, end);
    }
}

/// Runs `workload` under `policy` on real threads and reports what
/// happened. See the module docs for the protocol.
pub fn run_native(
    workload: &dyn NativeWorkload,
    policy: Box<dyn SchedPolicy + Send>,
    cfg: &NativeConfig,
) -> NativeMeasurement {
    let cfg = {
        let mut c = cfg.clone();
        c.workers = c.workers.clamp(1, 64);
        c
    };
    let mut host = PolicyHost::new(policy, &cfg.machine);
    let policy_name = host.name().to_string();
    host.reserve(workload.n_objects() as usize);
    for object in 0..workload.n_objects() {
        host.register(object, &workload.descriptor(object));
    }

    let w = cfg.workers;
    let shared = Shared {
        wl: workload,
        cfg: &cfg,
        host: Mutex::new(host),
        rings: (0..w)
            .map(|_| {
                (0..w)
                    .map(|_| SpscRing::with_capacity(cfg.ring_capacity))
                    .collect()
            })
            .collect(),
        deltas: (0..w)
            .map(|_| Mutex::new(CounterDelta::default()))
            .collect(),
        fill_queues: (0..w).map(|_| Mutex::new(Vec::new())).collect(),
        spans: (0..w)
            .map(|_| Mutex::new((Duration::ZERO, Duration::ZERO)))
            .collect(),
        origin: Instant::now(),
        barrier: Barrier::new(w),
        pinned: AtomicUsize::new(0),
        reads: AtomicU64::new(0),
        writes: AtomicU64::new(0),
        migrations: AtomicU64::new(0),
        ring_full_local: AtomicU64::new(0),
        per_worker_ops: (0..w).map(|_| AtomicU64::new(0)).collect(),
        epochs: AtomicU64::new(0),
        rehomes: AtomicU64::new(0),
        fills: AtomicU64::new(0),
    };
    let warmup = Phase::new(0, cfg.warmup_ops, false);
    let measured = Phase::new(cfg.warmup_ops, cfg.measure_ops, true);

    std::thread::scope(|scope| {
        for me in 0..w {
            let shared = &shared;
            let warmup = &warmup;
            let measured = &measured;
            scope.spawn(move || shared.worker_main(me, warmup, measured));
        }
    });

    let spans: Vec<(Duration, Duration)> = shared
        .spans
        .iter()
        .map(|m| *m.lock().expect("span slot"))
        .collect();
    let first_start = spans.iter().map(|s| s.0).min().unwrap_or(Duration::ZERO);
    let last_end = spans.iter().map(|s| s.1).max().unwrap_or(Duration::ZERO);
    let ring_depth_hwm = shared
        .rings
        .iter()
        .flatten()
        .map(SpscRing::depth_high_water)
        .max()
        .unwrap_or(0);

    NativeMeasurement {
        policy: policy_name,
        workers: w,
        pinned_workers: shared.pinned.load(Ordering::Relaxed),
        ops: measured.completed.load(Ordering::Relaxed),
        reads: shared.reads.load(Ordering::Relaxed),
        writes: shared.writes.load(Ordering::Relaxed),
        wall_seconds: last_end.saturating_sub(first_start).as_secs_f64(),
        migrations: shared.migrations.load(Ordering::Relaxed),
        ring_full_local: shared.ring_full_local.load(Ordering::Relaxed),
        per_worker_ops: shared
            .per_worker_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        ring_depth_hwm,
        epochs: shared.epochs.load(Ordering::Relaxed),
        rehomes_recorded: shared.rehomes.load(Ordering::Relaxed),
        fills_completed: shared.fills.load(Ordering::Relaxed),
        state_digest: workload.state_digest(),
        lock_contention: workload.lock_contention(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{NativeLookup, NativeLookupSpec};
    use o2_runtime::NullPolicy;

    fn quick_cfg(workers: usize) -> NativeConfig {
        let mut cfg = NativeConfig::new(workers);
        cfg.warmup_ops = 100;
        cfg.measure_ops = 2_000;
        cfg.epoch_every_ops = 500;
        cfg
    }

    #[test]
    fn completes_exactly_the_configured_ops() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(3));
        let m = run_native(&wl, Box::new(NullPolicy), &quick_cfg(2));
        assert_eq!(m.ops, 2_000);
        assert_eq!(m.reads + m.writes, 2_000);
        assert_eq!(m.per_worker_ops.iter().sum::<u64>(), 2_000);
        assert_eq!(m.workers, 2);
        assert_eq!(m.epochs, 4);
        assert_eq!(m.policy, "thread-scheduler");
        assert!(m.wall_seconds >= 0.0);
        assert!(m.kops_per_sec() > 0.0);
    }

    #[test]
    fn null_policy_never_migrates() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(3));
        let m = run_native(&wl, Box::new(NullPolicy), &quick_cfg(3));
        assert_eq!(m.migrations, 0);
        assert_eq!(m.ring_full_local, 0);
        assert_eq!(m.ring_depth_hwm, 0);
    }

    #[test]
    fn static_partition_migrates_and_stays_deterministic() {
        let spec = NativeLookupSpec::small(9);
        let run = |workers: usize| {
            let wl = NativeLookup::build(&spec);
            let mut st = o2_runtime::StaticPolicy::new();
            for object in 0..wl.spec().n_dirs {
                st.assign(o2_native_key(&wl, object), object % workers as u32);
            }
            run_native(&wl, Box::new(st), &quick_cfg(workers))
        };
        let a = run(2);
        let b = run(2);
        let c = run(3);
        // Timings differ; the work does not.
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.state_digest, c.state_digest);
        assert_eq!(a.ops, c.ops);
        assert_eq!(a.reads, c.reads);
        assert_eq!(a.writes, c.writes);
        // With 2+ workers and round-robin homes, some ops must migrate.
        assert!(a.migrations > 0);
    }

    fn o2_native_key(wl: &NativeLookup, object: u32) -> u64 {
        use crate::workload::NativeWorkload;
        wl.key_of(object)
    }

    #[test]
    fn single_worker_runs_degenerately_but_correctly() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(5));
        let m = run_native(&wl, Box::new(NullPolicy), &quick_cfg(1));
        assert_eq!(m.ops, 2_000);
        assert_eq!(m.per_worker_ops, vec![2_000]);
        assert_eq!(m.migrations, 0);
    }

    #[test]
    fn machine_config_has_one_core_per_worker() {
        let cfg = native_machine_config(6);
        assert_eq!(cfg.chips, 1);
        assert_eq!(cfg.cores_per_chip, 6);
        assert!(native_machine_config(500).cores_per_chip <= 64);
    }
}
