//! Native workloads: real memory, deterministic op streams.
//!
//! A native workload owns per-object shards of real application state
//! (for the lookup workload, each directory's slice of a real in-memory
//! FAT [`Volume`] image) behind per-object spin locks — exactly the
//! paper's "per-directory spin lock" — and exposes two things to the
//! runtime:
//!
//! * a deterministic **op stream**: op `i` is a pure function of
//!   `(seed, i)`, so the set of operations never depends on the worker
//!   count or the schedule;
//! * an **executor** whose state updates are commutative (XOR
//!   accumulators and counter increments under the shard lock), so the
//!   final state is identical no matter which worker ran which op in
//!   which order.
//!
//! Wall-clock cost is real: a lookup really scans the directory image
//! byte-for-byte up to the target entry, the same inner loop whose
//! *modeled* cost the simulator charges.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use o2_fs::{LookupCost, Volume, DIRENT_SIZE};
use o2_runtime::ObjectDescriptor;
use o2_sim::AccessKind;

/// Base of the synthetic object-key address space (native objects are
/// never mapped into simulated memory, but policies and descriptors
/// still key objects by address, as the paper does).
const KEY_BASE: u64 = 0x1_0000_0000;

/// One operation of the deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeOp {
    /// Global index in the op stream.
    pub index: u64,
    /// Dense object id (directory index).
    pub object: u32,
    /// Target entry (lookup) or slot (fsmeta) within the object.
    pub entry: u32,
    /// Declared access kind.
    pub kind: AccessKind,
    /// Per-op random token: the commutative payload XOR-ed into the
    /// shard state by mutating ops.
    pub token: u64,
}

/// What executing one op cost, in terms the policy's monitor understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedOp {
    /// Bytes of shard state the op actually touched.
    pub bytes_touched: u64,
    /// Modeled compute cycles (the simulator's cost model for the same
    /// op), reported to the policy as busy time.
    pub modeled_cycles: u64,
}

/// A workload the native runtime can drive.
pub trait NativeWorkload: Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Number of objects (shards).
    fn n_objects(&self) -> u32;
    /// Descriptor registered with the policy for `object`.
    fn descriptor(&self, object: u32) -> ObjectDescriptor;
    /// External key (address) of `object`.
    fn key_of(&self, object: u32) -> u64 {
        KEY_BASE + u64::from(object) * 0x1_0000
    }
    /// Op `index` of the deterministic stream.
    fn op(&self, index: u64) -> NativeOp;
    /// Executes the op against real shard state (under the shard lock).
    fn execute(&self, op: &NativeOp) -> ExecutedOp;
    /// Touches the object's bytes (the native analogue of a background
    /// replica fill streaming an object into a cache); returns the bytes
    /// read.
    fn fill(&self, object: u32) -> u64;
    /// Order-independent digest of the final shard state.
    fn state_digest(&self) -> u64;
    /// Spin-lock acquisitions that found the lock held.
    fn lock_contention(&self) -> u64;
}

// ---- shard locking ---------------------------------------------------

/// A spin lock guarding one shard of workload state — the native
/// counterpart of the per-directory spin-lock word the simulator maps
/// into its address space.
pub struct SpinGuarded<T> {
    locked: AtomicBool,
    contention: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only ever reached through `with`, which holds the
// spin lock for the duration of the borrow, so accesses are mutually
// exclusive; `T: Send` makes moving that access between threads sound.
unsafe impl<T: Send> Sync for SpinGuarded<T> {}

impl<T> SpinGuarded<T> {
    /// Wraps `data`.
    pub fn new(data: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            contention: AtomicU64::new(0),
            data: UnsafeCell::new(data),
        }
    }

    /// Runs `f` with exclusive access to the shard.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        while self.locked.swap(true, Ordering::Acquire) {
            self.contention.fetch_add(1, Ordering::Relaxed);
            // The host may be oversubscribed (more workers than CPUs):
            // yield instead of burning the holder's timeslice.
            std::thread::yield_now();
        }
        // SAFETY: the swap above left `locked` true, so this thread holds
        // the lock and is the only one reaching `data` until the store
        // below releases it.
        let result = f(unsafe { &mut *self.data.get() });
        self.locked.store(false, Ordering::Release);
        result
    }

    /// Acquisitions that found the lock held.
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

// ---- deterministic op randomness -------------------------------------

/// A splitmix64 stream seeded from `(seed, index)`: the op stream's
/// randomness is a pure function of the coordinates, never of thread
/// state, so any worker computes the same op `i`.
pub(crate) struct OpBits {
    state: u64,
}

impl OpBits {
    pub(crate) fn new(seed: u64, index: u64) -> Self {
        Self {
            state: seed ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform f64 in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a byte slice, for order-fixed state digests.
pub(crate) fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

// ---- the directory-lookup workload -----------------------------------

/// Specification of the native directory-lookup workload.
#[derive(Debug, Clone)]
pub struct NativeLookupSpec {
    /// Number of directories.
    pub n_dirs: u32,
    /// Entries per directory.
    pub entries_per_dir: u32,
    /// Fraction of lookups that also update the found entry.
    pub write_fraction: f64,
    /// Zipf exponent of directory popularity; `None` for uniform.
    pub zipf_exponent: Option<f64>,
    /// The simulator's cost model for the same inner loop (reported to
    /// the policy as modeled busy cycles).
    pub cost: LookupCost,
    /// Stream seed.
    pub seed: u64,
}

impl NativeLookupSpec {
    /// The paper-shaped default: uniform popularity over `n_dirs`
    /// directories of 1,000 entries, read-only.
    pub fn paper_default(n_dirs: u32, seed: u64) -> Self {
        Self {
            n_dirs: n_dirs.max(1),
            entries_per_dir: 1000,
            write_fraction: 0.0,
            zipf_exponent: None,
            cost: LookupCost::default(),
            seed,
        }
    }

    /// A small spec for tests and doctests.
    pub fn small(seed: u64) -> Self {
        Self {
            n_dirs: 8,
            entries_per_dir: 64,
            write_fraction: 0.1,
            zipf_exponent: None,
            cost: LookupCost::default(),
            seed,
        }
    }
}

/// One directory's shard: its slice of the real volume image plus the
/// commutative bookkeeping.
struct DirShard {
    /// The directory's raw FAT entry bytes, copied out of the built
    /// volume image (32 bytes per entry, 8.3 names at offset 0).
    image: Vec<u8>,
    /// Ops executed against this directory (commutative increment).
    op_counter: u64,
}

/// The directory-lookup workload over a real in-memory FAT volume.
///
/// Built from [`Volume::build_benchmark`]; each directory's image bytes
/// become one spin-locked shard. A lookup scans the image linearly,
/// comparing 11-byte 8.3 names exactly like the benchmark's inner loop;
/// a write-kind lookup additionally XORs its token into the found
/// entry's reserved bytes (commutative, so the final image is
/// schedule-invariant).
pub struct NativeLookup {
    spec: NativeLookupSpec,
    dirs: Vec<SpinGuarded<DirShard>>,
    /// 11-byte 8.3 name of each entry index (identical across dirs, as
    /// in the benchmark volume).
    names: Vec<[u8; 11]>,
    /// Zipf CDF over directories, empty for uniform popularity.
    zipf_cdf: Vec<f64>,
}

impl NativeLookup {
    /// Builds the volume and splits it into per-directory shards.
    pub fn build(spec: &NativeLookupSpec) -> Self {
        let volume = Volume::build_benchmark(spec.n_dirs, spec.entries_per_dir)
            .expect("benchmark volume construction failed");
        let mut dirs = Vec::with_capacity(spec.n_dirs as usize);
        let mut names = vec![[0u8; 11]; spec.entries_per_dir as usize];
        for d in volume.directories() {
            let mut image = vec![0u8; d.byte_len];
            for i in 0..d.entry_count {
                let entry = volume.read_entry(d.index, i).expect("entry in bounds");
                let off = i as usize * DIRENT_SIZE;
                image[off..off + DIRENT_SIZE].copy_from_slice(&entry.encode());
                if d.index == 0 {
                    names[i as usize].copy_from_slice(&image[off..off + 11]);
                }
            }
            dirs.push(SpinGuarded::new(DirShard {
                image,
                op_counter: 0,
            }));
        }
        let zipf_cdf = match spec.zipf_exponent {
            Some(exponent) => {
                let weights: Vec<f64> = (1..=spec.n_dirs)
                    .map(|k| 1.0 / f64::from(k).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        Self {
            spec: spec.clone(),
            dirs,
            names,
            zipf_cdf,
        }
    }

    /// The spec this workload was built from.
    pub fn spec(&self) -> &NativeLookupSpec {
        &self.spec
    }
}

impl NativeWorkload for NativeLookup {
    fn name(&self) -> &'static str {
        "lookup"
    }

    fn n_objects(&self) -> u32 {
        self.spec.n_dirs
    }

    fn descriptor(&self, object: u32) -> ObjectDescriptor {
        let size = u64::from(self.spec.entries_per_dir) * DIRENT_SIZE as u64;
        ObjectDescriptor::new(self.key_of(object), self.key_of(object), size)
            .read_mostly(self.spec.write_fraction < 0.5)
            .with_lock(object as usize)
    }

    fn op(&self, index: u64) -> NativeOp {
        let mut bits = OpBits::new(self.spec.seed, index);
        let object = if self.zipf_cdf.is_empty() {
            (bits.next() % u64::from(self.spec.n_dirs)) as u32
        } else {
            let u = bits.next_f64();
            self.zipf_cdf
                .partition_point(|&c| c < u)
                .min(self.spec.n_dirs as usize - 1) as u32
        };
        let entry = (bits.next() % u64::from(self.spec.entries_per_dir)) as u32;
        let kind = if self.spec.write_fraction > 0.0 && bits.next_f64() < self.spec.write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        NativeOp {
            index,
            object,
            entry,
            kind,
            token: bits.next(),
        }
    }

    fn execute(&self, op: &NativeOp) -> ExecutedOp {
        let target = &self.names[op.entry as usize];
        let examined = u64::from(op.entry) + 1;
        self.dirs[op.object as usize].with(|dir| {
            // The benchmark inner loop: scan entries from the front,
            // comparing 8.3 names, until the target matches.
            let mut found = false;
            for i in 0..=op.entry as usize {
                let off = i * DIRENT_SIZE;
                if &dir.image[off..off + 11] == target {
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "benchmark volumes always contain the target");
            if op.kind == AccessKind::Write {
                // Commutative update: XOR the op token into the entry's
                // reserved bytes (offsets 12..20 — the 8.3 name stays
                // intact, so future scans still match).
                let off = op.entry as usize * DIRENT_SIZE + 12;
                for (i, b) in op.token.to_le_bytes().iter().enumerate() {
                    dir.image[off + i] ^= b;
                }
            }
            dir.op_counter += 1;
        });
        ExecutedOp {
            bytes_touched: examined * DIRENT_SIZE as u64,
            modeled_cycles: self.spec.cost.fixed_overhead_cycles
                + examined * self.spec.cost.compare_cycles_per_entry,
        }
    }

    fn fill(&self, object: u32) -> u64 {
        self.dirs[object as usize].with(|dir| {
            let mut acc = 0u64;
            for &b in &dir.image {
                acc = acc.wrapping_add(u64::from(b));
            }
            // Keep the scan observable so it cannot be optimized out.
            std::hint::black_box(acc);
            dir.image.len() as u64
        })
    }

    fn state_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for dir in &self.dirs {
            dir.with(|d| {
                h = fnv1a(h, &d.op_counter.to_le_bytes());
                h = fnv1a(h, &d.image);
            });
        }
        h
    }

    fn lock_contention(&self) -> u64 {
        self.dirs.iter().map(SpinGuarded::contention).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stream_is_a_pure_function_of_seed_and_index() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(11));
        let a: Vec<NativeOp> = (0..200).map(|i| wl.op(i)).collect();
        let b: Vec<NativeOp> = (0..200).map(|i| wl.op(i)).collect();
        assert_eq!(a, b);
        let other = NativeLookup::build(&NativeLookupSpec::small(12));
        let c: Vec<NativeOp> = (0..200).map(|i| other.op(i)).collect();
        assert_ne!(a, c);
        for op in &a {
            assert!(op.object < 8);
            assert!(op.entry < 64);
        }
        // write_fraction 0.1: some but not all ops are writes.
        let writes = a.iter().filter(|o| o.kind == AccessKind::Write).count();
        assert!(writes > 0 && writes < 60, "writes = {writes}");
    }

    #[test]
    fn execute_touches_exactly_the_scanned_bytes() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(3));
        let op = NativeOp {
            index: 0,
            object: 2,
            entry: 9,
            kind: AccessKind::Read,
            token: 0xDEAD_BEEF,
        };
        let done = wl.execute(&op);
        assert_eq!(done.bytes_touched, 10 * 32);
        let cost = LookupCost::default();
        assert_eq!(
            done.modeled_cycles,
            cost.fixed_overhead_cycles + 10 * cost.compare_cycles_per_entry
        );
    }

    #[test]
    fn commutative_writes_make_state_order_invariant() {
        let spec = NativeLookupSpec::small(5);
        let ops: Vec<NativeOp> = {
            let wl = NativeLookup::build(&spec);
            (0..500).map(|i| wl.op(i)).collect()
        };
        let digest_for = |order: &[NativeOp]| {
            let wl = NativeLookup::build(&spec);
            for op in order {
                wl.execute(op);
            }
            wl.state_digest()
        };
        let forward = digest_for(&ops);
        let mut reversed = ops.clone();
        reversed.reverse();
        assert_eq!(forward, digest_for(&reversed));
        // And executing a different stream produces a different digest.
        let mut mutated = ops;
        mutated.truncate(499);
        assert_ne!(forward, digest_for(&mutated));
    }

    #[test]
    fn zipf_popularity_skews_to_low_directories() {
        let mut spec = NativeLookupSpec::small(9);
        spec.n_dirs = 32;
        spec.zipf_exponent = Some(1.2);
        let wl = NativeLookup::build(&spec);
        let mut hist = vec![0u64; 32];
        for i in 0..20_000 {
            hist[wl.op(i).object as usize] += 1;
        }
        assert!(hist[0] > hist[5] && hist[5] > hist[20]);
    }

    #[test]
    fn fill_reads_the_whole_directory() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(1));
        assert_eq!(wl.fill(0), 64 * 32);
    }

    #[test]
    fn descriptors_carry_the_object_key_and_size() {
        let wl = NativeLookup::build(&NativeLookupSpec::small(1));
        let d = wl.descriptor(3);
        assert_eq!(d.id, wl.key_of(3));
        assert_eq!(d.size, 64 * 32);
        assert_eq!(d.lock, Some(3));
        assert!(d.read_mostly);
    }
}
