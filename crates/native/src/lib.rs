//! # o2-native — the O2 scheduler on real cores
//!
//! Everything else in this workspace *predicts*: the simulator executes
//! the paper's workloads in deterministic virtual time. This crate
//! *executes*: `std::thread` workers pinned to host cores (via a raw
//! `sched_setaffinity` syscall on Linux, with a graceful no-pin fallback
//! elsewhere), each owning a shard of application state, exchanging
//! operation-migration messages over bounded SPSC rings — the
//! message-passing-server idiom, driven by the **same**
//! [`o2_runtime::SchedPolicy`] implementations the simulator uses.
//! CoreTime, the thread scheduler, static partitioning and clustering
//! place operations on real threads unchanged; "migrate" now means
//! enqueueing an op descriptor onto another core's ring instead of
//! simulating cache traffic.
//!
//! ## Determinism contract
//!
//! Real time is not virtual time: wall-clock durations, per-worker
//! occupancy, ring depths and migration counts all vary run to run and
//! with the worker count, and are **reported, never asserted**. What *is*
//! deterministic — asserted by tests and CI — is the work itself: the op
//! stream is a pure function of `(seed, op index)`, and every state
//! update an op performs is commutative (XOR accumulators, counter
//! increments under the object's spin lock), so op counts and the final
//! shard state are identical across reruns and across `--workers` values
//! no matter how the policy scatters the ops.
//!
//! ```
//! use o2_native::{run_native, NativeConfig, NativeLookup, NativeLookupSpec};
//! use o2_runtime::NullPolicy;
//!
//! let wl = NativeLookup::build(&NativeLookupSpec::small(7));
//! let mut cfg = NativeConfig::new(2);
//! cfg.warmup_ops = 200;
//! cfg.measure_ops = 1_000;
//! let m = run_native(&wl, Box::new(NullPolicy), &cfg);
//! assert_eq!(m.ops, 1_000);
//! ```

// The ring buffer and the raw affinity syscall need `unsafe`; everything
// else in the crate is safe code. Each unsafe block documents its
// invariant.
#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod fsmeta;
pub mod host;
pub mod ring;
pub mod runtime;
pub mod workload;

pub use affinity::{available_cpus, pin_to_cpu};
pub use fsmeta::{NativeFsMeta, NativeFsMetaSpec};
pub use host::{synthetic_delta, PolicyHost};
pub use ring::SpscRing;
pub use runtime::{native_machine_config, run_native, NativeConfig, NativeMeasurement};
pub use workload::{ExecutedOp, NativeLookup, NativeLookupSpec, NativeOp, NativeWorkload};
