//! Lockstep: the native driver does not distort the policy interface.
//!
//! The same recorded op trace is fed to two instances of the same
//! policy — one driven directly, exactly as the simulator's engine
//! calls it (`on_ct_start` / `on_ct_end` / `on_epoch` against a
//! `Machine` view), and one through the native runtime's [`PolicyHost`]
//! shim. Placement decisions must be identical call for call; anything
//! else would mean the native runtime feeds policies different contexts
//! than the simulator does.

use o2_core::CoreTime;
use o2_native::host::OpIdentity;
use o2_native::{synthetic_delta, NativeLookup, NativeLookupSpec, NativeWorkload, PolicyHost};
use o2_runtime::{CounterDelta, EpochView, Machine, OpContext, Placement, SchedPolicy};

const WORKERS: usize = 4;
const OPS: u64 = 2_000;
const EPOCH_EVERY: u64 = 250;

/// One recorded trace entry: who submitted which op when.
struct TraceOp {
    submitter: usize,
    object: u32,
    key: u64,
    now: u64,
    kind: o2_sim::AccessKind,
    bytes: u64,
    cycles: u64,
}

fn record_trace() -> Vec<TraceOp> {
    let mut spec = NativeLookupSpec::small(1234);
    spec.n_dirs = 12;
    spec.zipf_exponent = Some(1.2);
    let wl = NativeLookup::build(&spec);
    (0..OPS)
        .map(|index| {
            let op = wl.op(index);
            let done = wl.execute(&op);
            TraceOp {
                submitter: (index % WORKERS as u64) as usize,
                object: op.object,
                key: wl.key_of(op.object),
                now: index * 200 + 1,
                kind: op.kind,
                bytes: done.bytes_touched,
                cycles: done.modeled_cycles,
            }
        })
        .collect()
}

fn add(acc: &mut CounterDelta, d: &CounterDelta) {
    acc.busy_cycles += d.busy_cycles;
    acc.idle_cycles += d.idle_cycles;
    acc.l1_misses += d.l1_misses;
    acc.l2_misses += d.l2_misses;
    acc.l2_hits += d.l2_hits;
    acc.l3_hits += d.l3_hits;
    acc.l3_misses += d.l3_misses;
    acc.remote_cache_loads += d.remote_cache_loads;
    acc.dram_loads += d.dram_loads;
    acc.operations_completed += d.operations_completed;
}

/// Drives the policy the way the simulator's engine does.
fn drive_directly(mut policy: Box<dyn SchedPolicy + Send>, trace: &[TraceOp]) -> Vec<Placement> {
    let machine = Machine::new(o2_native::native_machine_config(WORKERS));
    let mut deltas = vec![CounterDelta::default(); WORKERS];
    let mut placements = Vec::with_capacity(trace.len());
    for (i, t) in trace.iter().enumerate() {
        let mut ctx = OpContext {
            thread: t.submitter,
            core: t.submitter as u32,
            home_core: t.submitter as u32,
            object: t.object,
            object_key: t.key,
            now: t.now,
            kind: t.kind,
            machine: &machine,
        };
        let placement = policy.on_ct_start(&ctx);
        placements.push(placement);
        let executed = match placement {
            Placement::On(core) if (core as usize) < WORKERS => core as usize,
            _ => t.submitter,
        };
        let delta = synthetic_delta(t.bytes, t.cycles);
        ctx.core = executed as u32;
        policy.on_ct_end(&ctx, &delta);
        add(&mut deltas[executed], &delta);
        if (i as u64 + 1) % EPOCH_EVERY == 0 {
            policy.on_epoch(&EpochView {
                now: t.now,
                machine: &machine,
                deltas: &deltas,
            });
            deltas = vec![CounterDelta::default(); WORKERS];
        }
    }
    placements
}

/// Drives an identical policy through the native runtime's shim.
fn drive_through_host(policy: Box<dyn SchedPolicy + Send>, trace: &[TraceOp]) -> Vec<Placement> {
    let cfg = o2_native::native_machine_config(WORKERS);
    let mut host = PolicyHost::new(policy, &cfg);
    let mut deltas = vec![CounterDelta::default(); WORKERS];
    let mut placements = Vec::with_capacity(trace.len());
    for (i, t) in trace.iter().enumerate() {
        let identity = OpIdentity {
            worker: t.submitter,
            object: t.object,
            key: t.key,
            now: t.now,
            kind: t.kind,
        };
        let placement = host.place(&identity, WORKERS);
        placements.push(placement);
        let executed = match placement {
            Placement::On(core) => core as usize,
            Placement::Local => t.submitter,
        };
        let delta = synthetic_delta(t.bytes, t.cycles);
        host.ct_end(&identity, executed, &delta);
        add(&mut deltas[executed], &delta);
        if (i as u64 + 1) % EPOCH_EVERY == 0 {
            host.epoch(t.now, &deltas);
            deltas = vec![CounterDelta::default(); WORKERS];
        }
    }
    placements
}

fn register_all(policy: &mut dyn SchedPolicy) {
    let mut spec = NativeLookupSpec::small(1234);
    spec.n_dirs = 12;
    spec.zipf_exponent = Some(1.2);
    let wl = NativeLookup::build(&spec);
    policy.reserve_objects(wl.n_objects() as usize);
    for object in 0..wl.n_objects() {
        policy.register_object(object, &wl.descriptor(object));
    }
}

fn lockstep_for(
    make: impl Fn() -> Box<dyn SchedPolicy + Send>,
) -> (Vec<Placement>, Vec<Placement>) {
    let trace = record_trace();
    let mut direct = make();
    register_all(direct.as_mut());
    let mut hosted = make();
    register_all(hosted.as_mut());
    (
        drive_directly(direct, &trace),
        drive_through_host(hosted, &trace),
    )
}

#[test]
fn coretime_places_identically_under_sim_and_native_drivers() {
    let machine = o2_native::native_machine_config(WORKERS);
    let (direct, hosted) = lockstep_for(|| CoreTime::policy(&machine));
    assert_eq!(direct.len(), hosted.len());
    assert_eq!(direct, hosted);
    // The trace must actually exercise migration for the test to mean
    // anything.
    assert!(
        direct.iter().any(|p| matches!(p, Placement::On(_))),
        "CoreTime never migrated on this trace"
    );
}

#[test]
fn coretime_extensions_place_identically_under_both_drivers() {
    let machine = o2_native::native_machine_config(WORKERS);
    let (direct, hosted) = lockstep_for(|| CoreTime::policy_with_extensions(&machine));
    assert_eq!(direct, hosted);
}

#[test]
fn static_partition_places_identically_under_both_drivers() {
    let machine = o2_native::native_machine_config(WORKERS);
    let (direct, hosted) =
        lockstep_for(|| Box::new(o2_baseline::StaticPartition::new(machine.total_cores())));
    assert_eq!(direct, hosted);
    assert!(direct.iter().any(|p| matches!(p, Placement::On(_))));
}
