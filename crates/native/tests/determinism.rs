//! The crate's determinism contract, end to end and under a real
//! policy: op counts and the final shard state are identical across
//! reruns and across worker counts, even though timings, migrations and
//! occupancy are free to vary.

use o2_core::CoreTime;
use o2_native::{
    run_native, NativeConfig, NativeFsMeta, NativeFsMetaSpec, NativeLookup, NativeLookupSpec,
    NativeMeasurement, NativeWorkload,
};

fn cfg(workers: usize) -> NativeConfig {
    let mut cfg = NativeConfig::new(workers);
    cfg.warmup_ops = 200;
    cfg.measure_ops = 4_000;
    cfg.epoch_every_ops = 1_000;
    cfg
}

fn run_lookup(workers: usize) -> NativeMeasurement {
    let mut spec = NativeLookupSpec::small(42);
    spec.n_dirs = 16;
    spec.zipf_exponent = Some(1.1);
    let wl = NativeLookup::build(&spec);
    let machine = o2_native::native_machine_config(workers);
    run_native(&wl, CoreTime::policy(&machine), &cfg(workers))
}

/// The invariants every run must satisfy regardless of schedule.
fn assert_counts(m: &NativeMeasurement, workers: usize) {
    assert_eq!(m.ops, 4_000);
    assert_eq!(m.reads + m.writes, m.ops);
    assert_eq!(m.per_worker_ops.len(), workers);
    assert_eq!(m.per_worker_ops.iter().sum::<u64>(), m.ops);
    assert_eq!(m.epochs, 4);
}

#[test]
fn lookup_under_coretime_is_deterministic_across_reruns() {
    let a = run_lookup(2);
    let b = run_lookup(2);
    assert_counts(&a, 2);
    assert_counts(&b, 2);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.writes, b.writes);
}

#[test]
fn lookup_under_coretime_is_deterministic_across_worker_counts() {
    let digests: Vec<u64> = [1, 2, 3]
        .into_iter()
        .map(|w| {
            let m = run_lookup(w);
            assert_counts(&m, w);
            m.state_digest
        })
        .collect();
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

#[test]
fn fsmeta_under_coretime_is_deterministic_across_worker_counts() {
    let run = |workers: usize| {
        let wl = NativeFsMeta::build(&NativeFsMetaSpec::small(7));
        let machine = o2_native::native_machine_config(workers);
        let m = run_native(&wl, CoreTime::policy(&machine), &cfg(workers));
        assert_counts(&m, workers);
        m.state_digest
    };
    let two = run(2);
    assert_eq!(two, run(1));
    assert_eq!(two, run(3));
}

#[test]
fn executed_state_matches_a_sequential_replay() {
    // The final digest of a threaded run equals replaying the same op
    // stream sequentially — the strongest form of "the schedule does not
    // change the work".
    let mut spec = NativeLookupSpec::small(42);
    spec.n_dirs = 16;
    spec.zipf_exponent = Some(1.1);

    let threaded = run_lookup(3);

    let wl = NativeLookup::build(&spec);
    for index in 0..(200 + 4_000) {
        let op = wl.op(index);
        wl.execute(&op);
    }
    assert_eq!(threaded.state_digest, wl.state_digest());
}
