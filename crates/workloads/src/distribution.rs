//! Directory-popularity distributions.

use rand::rngs::StdRng;
use rand::Rng;

use crate::spec::Popularity;

/// A stateful per-thread directory chooser.
#[derive(Debug, Clone)]
pub struct DirChooser {
    n_dirs: u32,
    popularity: Popularity,
    /// Precomputed CDF for Zipf distributions.
    zipf_cdf: Vec<f64>,
}

impl DirChooser {
    /// Creates a chooser over `n_dirs` directories.
    pub fn new(n_dirs: u32, popularity: Popularity) -> Self {
        let n_dirs = n_dirs.max(1);
        let zipf_cdf = match popularity {
            Popularity::Zipf { exponent } => {
                let weights: Vec<f64> = (1..=n_dirs)
                    .map(|k| 1.0 / (k as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        Self {
            n_dirs,
            popularity,
            zipf_cdf,
        }
    }

    /// Number of directories covered.
    pub fn n_dirs(&self) -> u32 {
        self.n_dirs
    }

    /// The set of directories that can be chosen at the given per-thread
    /// operation count (only the oscillating distribution varies over time).
    pub fn active_range(&self, ops_completed: u64) -> (u32, u32) {
        match self.popularity {
            Popularity::Oscillating {
                period_ops,
                shrink_factor,
            } => {
                let phase = ops_completed / period_ops.max(1);
                if phase % 2 == 0 {
                    (0, self.n_dirs)
                } else {
                    // Low phase: a rotating window of n/shrink directories,
                    // so the scheduler has to follow the active set.
                    let width = (self.n_dirs / shrink_factor.max(1)).max(1);
                    let start = ((phase / 2) * u64::from(width)) % u64::from(self.n_dirs);
                    (start as u32, width)
                }
            }
            _ => (0, self.n_dirs),
        }
    }

    /// Chooses a directory index for an operation.
    pub fn choose(&self, rng: &mut StdRng, ops_completed: u64) -> u32 {
        match self.popularity {
            Popularity::Uniform => rng.gen_range(0..self.n_dirs),
            Popularity::Oscillating { .. } => {
                let (start, width) = self.active_range(ops_completed);
                (start + rng.gen_range(0..width)) % self.n_dirs
            }
            Popularity::Zipf { .. } => {
                let u: f64 = rng.gen();
                match self.zipf_cdf.iter().position(|&c| u <= c) {
                    Some(i) => i as u32,
                    None => self.n_dirs - 1,
                }
            }
            Popularity::Hotspot {
                hot_dirs,
                hot_fraction,
            } => {
                let hot = hot_dirs.min(self.n_dirs).max(1);
                if rng.gen::<f64>() < hot_fraction {
                    rng.gen_range(0..hot)
                } else if hot < self.n_dirs {
                    rng.gen_range(hot..self.n_dirs)
                } else {
                    rng.gen_range(0..self.n_dirs)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn histogram(chooser: &DirChooser, samples: u64, ops: u64) -> Vec<u64> {
        let mut rng = rng();
        let mut h = vec![0u64; chooser.n_dirs() as usize];
        for _ in 0..samples {
            h[chooser.choose(&mut rng, ops) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_all_directories_evenly() {
        let c = DirChooser::new(16, Popularity::Uniform);
        let h = histogram(&c, 16_000, 0);
        assert!(h.iter().all(|&count| count > 600 && count < 1400));
    }

    #[test]
    fn oscillating_shrinks_the_active_set_in_odd_phases() {
        let c = DirChooser::new(
            64,
            Popularity::Oscillating {
                period_ops: 100,
                shrink_factor: 16,
            },
        );
        // Phase 0 (ops 0..100): full range.
        assert_eq!(c.active_range(50), (0, 64));
        // Phase 1 (ops 100..200): 4 directories.
        let (start, width) = c.active_range(150);
        assert_eq!(width, 4);
        assert_eq!(start, 0);
        // The next low phase uses a different window.
        let (start2, width2) = c.active_range(350);
        assert_eq!(width2, 4);
        assert_ne!(start2, start);
        // Samples during a low phase stay inside the window.
        let h = histogram(&c, 4_000, 150);
        let inside: u64 = h[0..4].iter().sum();
        assert_eq!(inside, 4_000);
    }

    #[test]
    fn zipf_is_heavily_skewed_towards_low_indices() {
        let c = DirChooser::new(100, Popularity::Zipf { exponent: 1.2 });
        let h = histogram(&c, 50_000, 0);
        assert!(h[0] > h[10] && h[10] > h[50]);
        // The head captures a large share of the traffic.
        let head: u64 = h[0..10].iter().sum();
        assert!(head > 25_000, "zipf head too small: {head}");
    }

    #[test]
    fn hotspot_sends_the_requested_fraction_to_hot_dirs() {
        let c = DirChooser::new(
            50,
            Popularity::Hotspot {
                hot_dirs: 2,
                hot_fraction: 0.8,
            },
        );
        let h = histogram(&c, 20_000, 0);
        let hot: u64 = h[0..2].iter().sum();
        assert!(hot > 15_000 && hot < 17_500, "hot share {hot}");
    }

    #[test]
    fn single_directory_never_panics() {
        let mut r = rng();
        let c = DirChooser::new(1, Popularity::Uniform);
        for ops in 0..100 {
            assert_eq!(c.choose(&mut r, ops), 0);
        }
        let c = DirChooser::new(
            1,
            Popularity::Oscillating {
                period_ops: 10,
                shrink_factor: 16,
            },
        );
        for ops in 0..100 {
            assert_eq!(c.choose(&mut r, ops), 0);
        }
        let c = DirChooser::new(
            1,
            Popularity::Hotspot {
                hot_dirs: 5,
                hot_fraction: 0.9,
            },
        );
        assert_eq!(c.choose(&mut r, 0), 0);
    }

    #[test]
    fn choices_are_deterministic_for_a_fixed_seed() {
        let c = DirChooser::new(32, Popularity::Uniform);
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|i| c.choose(&mut rng, i)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }
}
