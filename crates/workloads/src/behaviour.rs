//! The directory-lookup thread behaviour: the Rust equivalent of the
//! pseudo-code in Figures 1 and 3 of the paper.
//!
//! Each thread loops forever (or for a bounded number of operations):
//! pick a random directory, pick a random file name, and search the
//! directory for the file inside a `ct_start`/`ct_end` annotated,
//! spin-lock protected operation.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_fs::{lookup_actions, DirectoryHandle, LookupCost, DIRENT_SIZE};
use o2_runtime::{Action, BehaviourCtx, LockId, OpGenerator};

use crate::distribution::DirChooser;

/// Shared, immutable description of the benchmark directories.
#[derive(Debug)]
pub struct DirectorySet {
    /// The mapped directory handles.
    pub dirs: Vec<DirectoryHandle>,
    /// The runtime lock id guarding each directory.
    pub locks: Vec<LockId>,
}

impl DirectorySet {
    /// Number of directories.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }
}

/// The per-thread lookup generator.
pub struct DirectoryLookupGen {
    dirs: Rc<DirectorySet>,
    chooser: DirChooser,
    cost: LookupCost,
    write_fraction: f64,
    rng: StdRng,
    ops_generated: u64,
    max_ops: Option<u64>,
}

impl DirectoryLookupGen {
    /// Creates a generator over a directory set.
    ///
    /// `max_ops` bounds the number of operations (use `None` for the
    /// paper's endless loop, terminated by the measurement window).
    pub fn new(
        dirs: Rc<DirectorySet>,
        chooser: DirChooser,
        cost: LookupCost,
        write_fraction: f64,
        seed: u64,
        max_ops: Option<u64>,
    ) -> Self {
        Self {
            dirs,
            chooser,
            cost,
            write_fraction,
            rng: StdRng::seed_from_u64(seed),
            ops_generated: 0,
            max_ops,
        }
    }

    /// Operations generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }
}

impl OpGenerator for DirectoryLookupGen {
    fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
        if let Some(max) = self.max_ops {
            if self.ops_generated >= max {
                return Vec::new();
            }
        }
        if self.dirs.is_empty() {
            return Vec::new();
        }
        let dir_idx = self.chooser.choose(&mut self.rng, self.ops_generated) as usize;
        let dir = &self.dirs.dirs[dir_idx];
        let lock = self.dirs.locks[dir_idx];
        // dir = random_dir(); file = random_file();
        let entry = self.rng.gen_range(0..dir.entry_count);
        let mut actions = lookup_actions(dir, lock, entry, &self.cost);
        // Optionally update the entry that was found (a read-write variant
        // of the benchmark used to exercise coherence traffic).
        if self.write_fraction > 0.0 && self.rng.gen::<f64>() < self.write_fraction {
            let write = Action::Write {
                addr: dir.entry_addr(entry),
                len: DIRENT_SIZE as u64,
            };
            // Insert the write just before the unlock (second-to-last slot
            // is the unlock, last is ct_end).
            let insert_at = actions.len().saturating_sub(2);
            actions.insert(insert_at, write);
        }
        self.ops_generated += 1;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Popularity;
    use o2_fs::Volume;
    use o2_sim::SimMemory;

    fn directory_set(n_dirs: u32) -> Rc<DirectorySet> {
        let mut v = Volume::build_benchmark(n_dirs, 100).unwrap();
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        Rc::new(DirectorySet {
            dirs: v.directories().cloned().collect(),
            locks: (0..n_dirs as usize).collect(),
        })
    }

    fn ctx() -> BehaviourCtx {
        BehaviourCtx {
            thread: 0,
            core: 0,
            home_core: 0,
            now: 0,
            ops_completed: 0,
        }
    }

    #[test]
    fn generates_annotated_lock_protected_lookups() {
        let dirs = directory_set(4);
        let mut gen = DirectoryLookupGen::new(
            dirs,
            DirChooser::new(4, Popularity::Uniform),
            LookupCost::default(),
            0.0,
            1,
            Some(10),
        );
        for _ in 0..10 {
            let op = gen.next_op(&ctx());
            assert!(matches!(op.first(), Some(Action::CtStart(..))));
            assert!(matches!(op.last(), Some(Action::CtEnd)));
            assert!(op.iter().any(|a| matches!(a, Action::Lock(_))));
            assert!(op.iter().any(|a| matches!(a, Action::Unlock(_))));
            assert!(op.iter().any(|a| matches!(a, Action::Read { .. })));
            assert!(!op.iter().any(|a| matches!(a, Action::Write { .. })));
        }
        // Bounded generator terminates.
        assert!(gen.next_op(&ctx()).is_empty());
        assert_eq!(gen.ops_generated(), 10);
    }

    #[test]
    fn write_fraction_one_always_updates_the_entry() {
        let dirs = directory_set(2);
        let mut gen = DirectoryLookupGen::new(
            dirs,
            DirChooser::new(2, Popularity::Uniform),
            LookupCost::default(),
            1.0,
            2,
            Some(5),
        );
        for _ in 0..5 {
            let op = gen.next_op(&ctx());
            let write_pos = op
                .iter()
                .position(|a| matches!(a, Action::Write { .. }))
                .expect("write present");
            let unlock_pos = op
                .iter()
                .position(|a| matches!(a, Action::Unlock(_)))
                .unwrap();
            assert!(write_pos < unlock_pos, "write must happen under the lock");
        }
    }

    #[test]
    fn object_ids_match_the_chosen_directory() {
        let dirs = directory_set(8);
        let valid_ids: Vec<u64> = dirs.dirs.iter().map(|d| d.object_id()).collect();
        let mut gen = DirectoryLookupGen::new(
            dirs,
            DirChooser::new(8, Popularity::Uniform),
            LookupCost::default(),
            0.0,
            3,
            Some(50),
        );
        for _ in 0..50 {
            let op = gen.next_op(&ctx());
            match op[0] {
                Action::CtStart(obj, _) => assert!(valid_ids.contains(&obj)),
                ref other => panic!("expected ct_start, got {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_generates_identical_streams() {
        let make = |seed| {
            let dirs = directory_set(4);
            let mut gen = DirectoryLookupGen::new(
                dirs,
                DirChooser::new(4, Popularity::Uniform),
                LookupCost::default(),
                0.0,
                seed,
                Some(20),
            );
            (0..20).map(|_| gen.next_op(&ctx())).collect::<Vec<_>>()
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }
}
