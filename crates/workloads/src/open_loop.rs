//! Open-loop request arrivals.
//!
//! The closed-loop benchmark threads issue the next operation the moment
//! the previous one completes, so measured "latency" is pure service time
//! and the system can never build a queue. An open-loop workload decouples
//! the two: requests arrive on their own schedule (here a Poisson process
//! — i.i.d. exponential gaps from a seeded generator), and when the system
//! falls behind, the backlog and therefore the *queueing delay* become
//! visible in the latency distribution.
//!
//! [`OpenLoopGen`] wraps any [`OpGenerator`]:
//!
//! * each wrapped operation is stamped with its *arrival* time, drawn from
//!   the arrival process — never re-synchronised to the completion clock,
//!   which is exactly what makes the loop open;
//! * if the arrival is still in the future the operation is prefixed with
//!   an [`Action::IdleUntil`], putting the thread to sleep (releasing the
//!   core) until the request "exists";
//! * if the arrival is already in the past the operation starts
//!   immediately — it was queued, and the time it spent waiting is part of
//!   its latency;
//! * when an operation completes, `arrival → completion` is recorded into
//!   a shared constant-memory [`LatencyRecorder`], so the experiment can
//!   report p50/p99/p999 without storing a sample per request.
//!
//! The wrapper is purely additive: workloads that do not opt in never
//! construct it, and no existing generator changes behaviour.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_metrics::LatencyRecorder;
use o2_runtime::{Action, BehaviourCtx, Cycles, OpGenerator};

/// Wraps a generator with a Poisson arrival process and arrival-stamped
/// latency recording.
pub struct OpenLoopGen<G> {
    inner: G,
    rng: StdRng,
    mean_gap: f64,
    /// Arrival time of the next operation to issue; `None` until the
    /// first call anchors the stream at the thread's start time.
    next_arrival: Option<Cycles>,
    /// Arrival stamp of the operation currently in flight, recorded
    /// against the completion clock on the next call.
    in_flight: Option<Cycles>,
    latency: Rc<RefCell<LatencyRecorder>>,
}

impl<G: OpGenerator> OpenLoopGen<G> {
    /// Wraps `inner` with exponential inter-arrival gaps of
    /// `mean_gap_cycles`, recording arrival→completion latencies into
    /// `latency` (shared, so many threads can feed one distribution).
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_cycles` is not finite and positive.
    pub fn new(
        inner: G,
        mean_gap_cycles: f64,
        seed: u64,
        latency: Rc<RefCell<LatencyRecorder>>,
    ) -> Self {
        assert!(
            mean_gap_cycles.is_finite() && mean_gap_cycles > 0.0,
            "open-loop mean gap must be a positive number of cycles"
        );
        Self {
            inner,
            rng: StdRng::seed_from_u64(seed),
            mean_gap: mean_gap_cycles,
            next_arrival: None,
            in_flight: None,
            latency,
        }
    }

    /// A fresh shared recorder for one experiment's latency distribution.
    pub fn recorder(seed: u64) -> Rc<RefCell<LatencyRecorder>> {
        Rc::new(RefCell::new(LatencyRecorder::new(seed)))
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Exponential inter-arrival gap, at least one cycle so consecutive
    /// arrivals stay distinct in the integer cycle domain.
    fn draw_gap(&mut self) -> Cycles {
        let u: f64 = self.rng.gen();
        let gap = -(1.0 - u).ln() * self.mean_gap;
        (gap.round() as Cycles).max(1)
    }
}

impl<G: OpGenerator> OpGenerator for OpenLoopGen<G> {
    fn next_op(&mut self, ctx: &BehaviourCtx) -> Vec<Action> {
        // The previous operation completed at `ctx.now`; its latency runs
        // from arrival, so queueing delay is included.
        if let Some(arrived) = self.in_flight.take() {
            self.latency
                .borrow_mut()
                .record(ctx.now.saturating_sub(arrived));
        }
        let arrival = match self.next_arrival {
            Some(a) => a,
            // Anchor the arrival stream at the thread's first activation.
            None => ctx.now + self.draw_gap(),
        };
        let ops = self.inner.next_op(ctx);
        if ops.is_empty() {
            return ops;
        }
        // The next arrival advances from this one, never from `ctx.now`:
        // a slow server does not slow the offered load down.
        self.next_arrival = Some(arrival + self.draw_gap());
        self.in_flight = Some(arrival);
        if arrival > ctx.now {
            let mut with_wait = Vec::with_capacity(ops.len() + 1);
            with_wait.push(Action::IdleUntil(arrival));
            with_wait.extend(ops);
            with_wait
        } else {
            ops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::OpBuilder;

    /// A trivial inner generator: fixed-cost compute ops on one object.
    struct ComputeGen {
        remaining: u64,
        cost: u64,
    }

    impl OpGenerator for ComputeGen {
        fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
            if self.remaining == 0 {
                return Vec::new();
            }
            self.remaining -= 1;
            OpBuilder::annotated(0x1000).compute(self.cost).finish()
        }
    }

    fn ctx_at(now: Cycles) -> BehaviourCtx {
        BehaviourCtx {
            thread: 0,
            core: 0,
            home_core: 0,
            now,
            ops_completed: 0,
        }
    }

    #[test]
    fn future_arrivals_sleep_and_backlogged_arrivals_do_not() {
        let rec = OpenLoopGen::<ComputeGen>::recorder(1);
        let mut g = OpenLoopGen::new(
            ComputeGen {
                remaining: 100,
                cost: 10,
            },
            1_000.0,
            7,
            Rc::clone(&rec),
        );
        // First op: arrival strictly after now=0, so it must sleep first.
        let op = g.next_op(&ctx_at(0));
        let Some(Action::IdleUntil(at)) = op.first() else {
            panic!("expected a leading IdleUntil, got {:?}", op.first());
        };
        assert!(*at > 0);
        // Pretend the server is extremely slow: by `now`, many arrivals
        // are queued, so ops start immediately with no sleep.
        let op = g.next_op(&ctx_at(1_000_000));
        assert!(
            matches!(op.first(), Some(Action::CtStart(..))),
            "backlogged arrival must not sleep"
        );
    }

    #[test]
    fn latency_includes_queueing_delay() {
        let rec = OpenLoopGen::<ComputeGen>::recorder(1);
        let mut g = OpenLoopGen::new(
            ComputeGen {
                remaining: 100,
                cost: 10,
            },
            100.0,
            7,
            Rc::clone(&rec),
        );
        let _ = g.next_op(&ctx_at(0));
        // The first arrival happened within a few hundred cycles of 0; if
        // completion is only observed much later, the recorded latency
        // carries the whole wait.
        let _ = g.next_op(&ctx_at(50_000));
        let sketch_max = rec.borrow().summary().max;
        assert!(
            sketch_max > 40_000,
            "queueing delay missing from latency: max {sketch_max}"
        );
        assert_eq!(rec.borrow().count(), 1);
    }

    #[test]
    fn arrival_stream_is_deterministic_and_open() {
        let arrivals = |seed| {
            let rec = OpenLoopGen::<ComputeGen>::recorder(1);
            let mut g = OpenLoopGen::new(
                ComputeGen {
                    remaining: 50,
                    cost: 10,
                },
                500.0,
                seed,
                rec,
            );
            // Completion times do not influence arrivals: feed an
            // arbitrary completion clock and collect the sleep targets.
            (0..50u64)
                .filter_map(|i| match g.next_op(&ctx_at(i)).first() {
                    Some(Action::IdleUntil(at)) => Some(*at),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let a = arrivals(3);
        assert_eq!(a, arrivals(3));
        assert_ne!(a, arrivals(4));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals must advance");
    }

    #[test]
    fn gap_mean_is_close_to_the_configured_mean() {
        let rec = OpenLoopGen::<ComputeGen>::recorder(1);
        let mut g = OpenLoopGen::new(
            ComputeGen {
                remaining: 0,
                cost: 0,
            },
            1_000.0,
            11,
            rec,
        );
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| g.draw_gap()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1_000.0).abs() < 50.0,
            "exponential gap mean off: {mean}"
        );
    }

    #[test]
    fn inner_exhaustion_ends_the_stream() {
        let rec = OpenLoopGen::<ComputeGen>::recorder(1);
        let mut g = OpenLoopGen::new(
            ComputeGen {
                remaining: 1,
                cost: 10,
            },
            100.0,
            5,
            rec,
        );
        assert!(!g.next_op(&ctx_at(0)).is_empty());
        assert!(g.next_op(&ctx_at(100)).is_empty());
        assert!(g.next_op(&ctx_at(200)).is_empty());
    }
}
