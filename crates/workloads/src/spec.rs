//! Workload specifications.

use o2_fs::LookupCost;
use o2_runtime::RuntimeConfig;
use o2_sim::{FaultPlan, MachineConfig};

/// How threads choose which directory to look up in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every directory is equally likely (Figure 4a).
    Uniform,
    /// The set of accessed directories oscillates between all `n` and
    /// `n / shrink_factor` of them, switching every `period_ops`
    /// operations per thread; the active subset rotates each low phase so
    /// the scheduler must follow it (Figure 4b).
    Oscillating {
        /// Operations per thread between phase switches.
        period_ops: u64,
        /// Shrink factor of the low phase (16 in the paper).
        shrink_factor: u32,
    },
    /// Zipfian popularity with the given exponent (skewed workloads,
    /// Section 6.2 replacement ablation).
    Zipf {
        /// The Zipf exponent (larger = more skew).
        exponent: f64,
    },
    /// A fixed fraction of lookups goes to a small set of hot directories
    /// (used by the replication ablation).
    Hotspot {
        /// Number of hot directories.
        hot_dirs: u32,
        /// Fraction of operations that target the hot set (0.0–1.0).
        hot_fraction: f64,
    },
}

/// A complete description of one benchmark run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Runtime (migration/locking/epoch) parameters.
    pub runtime: RuntimeConfig,
    /// Number of directories.
    pub n_dirs: u32,
    /// Entries per directory (1,000 in the paper).
    pub entries_per_dir: u32,
    /// Threads spawned per core (1 in the paper).
    pub threads_per_core: u32,
    /// Directory popularity distribution.
    pub popularity: Popularity,
    /// Cost model of the lookup inner loop.
    pub lookup_cost: LookupCost,
    /// Fraction of operations that also update the found entry (0.0 for the
    /// paper's read-only lookup benchmark).
    pub write_fraction: f64,
    /// RNG seed; every thread derives its own stream from it.
    pub seed: u64,
    /// Operations to run before measuring (lets caches warm up and lets
    /// CoreTime's monitoring assign objects).
    pub warmup_ops: u64,
    /// Length of the measurement window, in cycles.
    pub measure_cycles: u64,
    /// Deterministic fault schedule injected during the run. The default
    /// (empty) plan is guaranteed not to perturb the simulation — runs
    /// stay bit-identical to a build without the fault plane.
    pub fault_plan: FaultPlan,
}

impl WorkloadSpec {
    /// The paper's file-system benchmark on the default 16-core machine:
    /// one thread per core repeatedly looking up a random file in a random
    /// directory of 1,000 32-byte entries.
    pub fn paper_default(n_dirs: u32) -> Self {
        Self {
            machine: MachineConfig::amd16(),
            runtime: RuntimeConfig::default(),
            n_dirs: n_dirs.max(1),
            entries_per_dir: 1000,
            threads_per_core: 1,
            popularity: Popularity::Uniform,
            lookup_cost: LookupCost::default(),
            write_fraction: 0.0,
            seed: 42,
            warmup_ops: (6 * n_dirs as u64).max(2_000),
            measure_cycles: 3_000_000,
            fault_plan: FaultPlan::empty(),
        }
    }

    /// Installs a fault schedule for the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Derives the directory count from a target total data size in
    /// kilobytes (the x-axis of Figure 4), given 32-byte entries.
    pub fn for_total_kb(total_kb: u64) -> Self {
        let bytes_per_dir = 1000u64 * 32;
        let n_dirs = ((total_kb * 1024) / bytes_per_dir).max(1) as u32;
        Self::paper_default(n_dirs)
    }

    /// Total directory bytes this spec will create.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.n_dirs) * u64::from(self.entries_per_dir) * 32
    }

    /// Total directory data in kilobytes.
    pub fn total_kb(&self) -> u64 {
        self.total_bytes() / 1024
    }

    /// Total number of workload threads.
    pub fn total_threads(&self) -> u32 {
        self.machine.total_cores() * self.threads_per_core
    }

    /// Switches the popularity distribution.
    pub fn with_popularity(mut self, popularity: Popularity) -> Self {
        self.popularity = popularity;
        self
    }

    /// Uses the oscillating distribution of Figure 4(b) with the paper's
    /// 16x shrink factor. The period is short enough that several full
    /// oscillations happen inside one measurement window.
    pub fn oscillating(mut self) -> Self {
        self.popularity = Popularity::Oscillating {
            period_ops: 120,
            shrink_factor: 16,
        };
        self
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        self.runtime.validate()?;
        if self.n_dirs == 0 || self.entries_per_dir == 0 {
            return Err("need at least one directory with at least one entry".into());
        }
        if self.threads_per_core == 0 {
            return Err("need at least one thread per core".into());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err("write_fraction must be in [0, 1]".into());
        }
        if self.measure_cycles == 0 {
            return Err("measure_cycles must be positive".into());
        }
        match self.popularity {
            Popularity::Oscillating {
                period_ops,
                shrink_factor,
            } => {
                if period_ops == 0 || shrink_factor == 0 {
                    return Err("oscillation parameters must be positive".into());
                }
            }
            Popularity::Zipf { exponent } => {
                if exponent <= 0.0 {
                    return Err("zipf exponent must be positive".into());
                }
            }
            Popularity::Hotspot {
                hot_dirs,
                hot_fraction,
            } => {
                if hot_dirs == 0 || !(0.0..=1.0).contains(&hot_fraction) {
                    return Err("invalid hotspot parameters".into());
                }
            }
            Popularity::Uniform => {}
        }
        self.fault_plan.validate(self.machine.total_cores())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let s = WorkloadSpec::paper_default(64);
        assert_eq!(s.entries_per_dir, 1000);
        assert_eq!(s.threads_per_core, 1);
        assert_eq!(s.machine.total_cores(), 16);
        assert_eq!(s.total_threads(), 16);
        assert_eq!(s.total_bytes(), 64 * 32_000);
        s.validate().unwrap();
    }

    #[test]
    fn for_total_kb_computes_directory_count() {
        let s = WorkloadSpec::for_total_kb(2_048); // 2 MB
        assert_eq!(s.n_dirs, 65); // 2 MiB / 32,000 B
        assert!(s.total_kb() >= 2_000 && s.total_kb() <= 2_100);
        // Tiny sizes still get one directory.
        assert_eq!(WorkloadSpec::for_total_kb(1).n_dirs, 1);
    }

    #[test]
    fn oscillating_builder_uses_the_papers_shrink_factor() {
        let s = WorkloadSpec::paper_default(64).oscillating();
        match s.popularity {
            Popularity::Oscillating { shrink_factor, .. } => assert_eq!(shrink_factor, 16),
            other => panic!("unexpected popularity {other:?}"),
        }
        s.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut s = WorkloadSpec::paper_default(8);
        s.write_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_default(8);
        s.threads_per_core = 0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_default(8);
        s.popularity = Popularity::Zipf { exponent: -1.0 };
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_default(8);
        s.popularity = Popularity::Hotspot {
            hot_dirs: 0,
            hot_fraction: 0.5,
        };
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper_default(8);
        s.measure_cycles = 0;
        assert!(s.validate().is_err());
    }
}
